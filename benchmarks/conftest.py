"""Shared fixtures for the benchmark harness.

Each ``bench_*.py`` file regenerates one table or figure of the paper: it
runs the corresponding experiment from :mod:`repro.harness`, prints the
rendered table (rows per benchmark, columns per sweep point — the same
series the paper reports), and asserts the paper's qualitative shape.

Environment knobs:

* ``REPRO_BENCHMARKS=quick`` — run on the four-program subset (fast);
* ``REPRO_BENCHMARKS=<names>`` — explicit comma-separated list;
* ``REPRO_SCALE=<float>`` — scale benchmark dynamic length.
"""

from __future__ import annotations

import pytest

from repro.harness import ExperimentContext


@pytest.fixture(scope="session")
def ctx():
    """One shared experiment context: programs/compilations/workloads are
    prepared once and reused by every sweep point."""
    return ExperimentContext()


@pytest.fixture
def run_experiment(benchmark, ctx):
    """Run an experiment exactly once under pytest-benchmark and print it."""

    def runner(experiment, *args, **kwargs):
        result = benchmark.pedantic(
            lambda: experiment(ctx, *args, **kwargs), rounds=1, iterations=1
        )
        print()
        print(result.render())
        return result

    return runner
