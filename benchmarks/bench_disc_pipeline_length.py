"""Section 5.1 discussion — gain from the braid pipeline being four stages
shorter (19- vs 23-cycle minimum misprediction penalty).

Paper: the shorter pipeline contributes about 2.19% on average.
"""

from repro.harness import disc_pipeline_length


def test_disc_pipeline_length(run_experiment):
    result = run_experiment(disc_pipeline_length)
    assert 1.0 <= result.averages["gain"] < 1.15
