"""Figure 8 — braid performance vs bypass paths per cycle.

Paper: supporting 2 bypass values per cycle is within 1% of a full bypass
network, because internal values never touch the network.
"""

from repro.harness import fig8_braid_bypass


def test_fig8_braid_bypass(run_experiment):
    result = run_experiment(fig8_braid_bypass)
    assert result.averages["2"] > 0.97
    assert result.averages["1"] <= result.averages["8"] + 1e-9
