"""Ablation A1 — one braid per BEU (paper policy) vs queueing braids behind
each other in the BEU FIFO.

Queueing suffers head-of-line blocking: a braid stuck behind a long-latency
braid cannot issue even when its operands are ready.
"""

from repro.harness import abl_beu_occupancy


def test_abl_beu_occupancy(run_experiment):
    result = run_experiment(abl_beu_occupancy)
    assert result.averages["queued"] < result.averages["single"]
