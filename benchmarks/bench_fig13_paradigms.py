"""Figure 13 — in-order, dependence-steering, braid, and out-of-order
microarchitectures at 4-, 8-, and 16-wide (normalized to 8-wide
out-of-order).

Paper: (1) significant performance remains at wider widths; (2) braid lands
within ~9% of the aggressive 8-wide out-of-order design; (3) the braid/
out-of-order gap narrows as width grows.
"""

from repro.harness import fig13_paradigms


def test_fig13_paradigms(run_experiment):
    result = run_experiment(fig13_paradigms)
    assert result.averages["ooo-8"] == 1.0
    # ordering at 8-wide: in-order clearly below everything else
    assert result.averages["io-8"] < 0.6
    # braid close to the aggressive out-of-order design
    assert result.averages["braid-8"] > 0.75
    # wider machines still gain
    assert result.averages["ooo-16"] > result.averages["ooo-8"]
