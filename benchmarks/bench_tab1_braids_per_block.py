"""Table 1 — braids per basic block.

Paper: integer programs average 2.8 braids per block (1.1 excluding
single-instruction braids); floating point averages 3.8 (1.5 excluding).
"""

from repro.harness import tab1_braids_per_block


def test_tab1_braids_per_block(run_experiment):
    result = run_experiment(tab1_braids_per_block)
    assert 1.5 <= result.averages["braids/bb"] <= 6.0
    assert result.averages["excl-single"] < result.averages["braids/bb"]
    assert 0.8 <= result.averages["excl-single"] <= 2.5
