"""Figure 5 — out-of-order performance vs register file entries.

Paper: 64 entries lose little, 32 cost ~8%, 16 cost ~21%.  In this
reproduction (staging-file model, see DESIGN.md) the knee sits at 8 entries;
the qualitative claim — performance degrades only below the in-flight value
working set — is preserved.
"""

from repro.harness import fig5_ooo_registers


def test_fig5_ooo_registers(run_experiment):
    result = run_experiment(fig5_ooo_registers)
    assert result.averages["256"] == 1.0
    assert result.averages["64"] >= 0.95
    assert result.averages["8"] < result.averages["64"]
