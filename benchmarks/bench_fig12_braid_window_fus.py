"""Figure 12 — braid performance vs window size and functional units varied
together.

Paper: the same plateau as Figure 11 — braid instruction-level parallelism
is about 2, so more than 2 functional units per BEU buys little.
"""

from repro.harness import fig12_braid_window_fus


def test_fig12_braid_window_fus(run_experiment):
    result = run_experiment(fig12_braid_window_fus)
    assert result.averages["1"] <= result.averages["2"] + 1e-9
    assert result.averages["8"] <= result.averages["2"] * 1.15
