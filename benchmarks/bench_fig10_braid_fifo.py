"""Figure 10 — braid performance vs FIFO entries per BEU.

Paper: 32 entries capture almost all performance because 99% of braids have
32 instructions or fewer; smaller FIFOs stall braid distribution.
"""

from repro.harness import fig10_braid_fifo


def test_fig10_braid_fifo(run_experiment):
    result = run_experiment(fig10_braid_fifo)
    assert result.averages["4"] < result.averages["32"]
    assert result.averages["64"] <= result.averages["32"] * 1.03
