"""Figure 11 — braid performance vs FIFO scheduling window size.

Paper: steep rise from 1 to 2, then a plateau — ready instructions sit at
the head of the FIFO.
"""

from repro.harness import fig11_braid_window


def test_fig11_braid_window(run_experiment):
    result = run_experiment(fig11_braid_window)
    assert result.averages["1"] <= result.averages["2"] + 1e-9
    assert result.averages["8"] <= result.averages["2"] * 1.15
