"""Ablation A2 — the internal register working-set limit.

Paper: 8 internal registers suffice (breaking affects ~2% of braids).  The
sweep shows performance at limits 4/8/16 and how many braids each limit
breaks.
"""

from repro.harness import abl_internal_reg_limit


def test_abl_internal_reg_limit(run_experiment):
    result = run_experiment(abl_internal_reg_limit)
    assert result.averages["ipc-8"] == 1.0
    assert result.averages["ipc-16"] <= 1.1
    assert result.averages["ipc-4"] <= 1.05
    assert result.averages["splits-16"] <= result.averages["splits-4"]
