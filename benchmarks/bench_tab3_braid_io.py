"""Table 3 — braid internal values and external inputs/outputs.

Paper: integer braids carry ~1.7 internal values with 1.7 external inputs
and 0.7 external outputs; floating point 3.0 / 2.2 / 0.8.  External traffic
per braid resembles a two-source compute instruction.
"""

from repro.harness import tab3_braid_io


def test_tab3_braid_io(run_experiment):
    result = run_experiment(tab3_braid_io)
    assert result.averages["ext-out"] < 1.5
    assert result.averages["ext-in"] < 3.5
    assert result.averages["internal"] > result.averages["ext-out"]
