"""Figure 6 — braid performance vs external register file entries.

Paper: an 8-entry external register file performs like a 256-entry one
because most values live in the internal files; degradation appears only
around 4 entries.
"""

from repro.harness import fig6_braid_ext_registers


def test_fig6_braid_ext_registers(run_experiment):
    result = run_experiment(fig6_braid_ext_registers)
    assert result.averages["8"] > 0.97
    # Degradation appears only when the file shrinks below the in-flight
    # external working set (this reproduction's knee sits at 1-2 entries).
    assert result.averages["1"] <= result.averages["8"] + 0.01
