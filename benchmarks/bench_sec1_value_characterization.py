"""Section 1.1 — value fanout and lifetime characterization.

Paper: over 70% of values are used only once, ~90% at most twice, ~4% are
never used, and ~80% live 32 instructions or fewer.
"""

from repro.harness import sec1_value_characterization


def test_sec1_value_characterization(run_experiment):
    result = run_experiment(sec1_value_characterization)
    assert result.averages["single"] > 0.60
    assert result.averages["le2"] > 0.85
    assert result.averages["unused"] < 0.10
    assert result.averages["life32"] > 0.75
