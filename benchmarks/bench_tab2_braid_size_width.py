"""Table 2 — braid size and width.

Paper: integer braids average 2.5 instructions (4.7 excluding singles),
floating point 3.6 (7.6); width stays near 1.1 for both.
"""

from repro.harness import tab2_braid_size_width


def test_tab2_braid_size_width(run_experiment):
    result = run_experiment(tab2_braid_size_width)
    assert 2.0 <= result.averages["size"] <= 5.5
    assert result.averages["size*"] > result.averages["size"]
    assert 1.0 <= result.averages["width"] <= 1.4
