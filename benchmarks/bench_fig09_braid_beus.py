"""Figure 9 — braid performance vs number of BEUs (normalized to the 8-wide
out-of-order baseline).

Paper: performance rises steadily with BEU count — there are more ready
braids than BEUs, and extra BEUs let ready braids slip past stalled ones.
"""

from repro.harness import fig9_braid_beus


def test_fig9_braid_beus(run_experiment):
    result = run_experiment(fig9_braid_beus)
    assert result.averages["1"] < result.averages["2"]
    assert result.averages["2"] < result.averages["4"]
    assert result.averages["4"] < result.averages["8"]
    assert result.averages["16"] >= result.averages["8"] * 0.98
