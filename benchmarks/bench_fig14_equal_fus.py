"""Figure 14 — braid configurations with equal functional unit budgets.

Paper: with 8 total FUs, 8 BEUs x 1 FU beats 4 BEUs x 2 FUs — braid-level
parallelism matters more than intra-braid width.
"""

from repro.harness import fig14_equal_fus


def test_fig14_equal_fus(run_experiment):
    result = run_experiment(fig14_equal_fus)
    assert result.averages["8x1"] > result.averages["4x2"]
    assert result.averages["8x2"] == 1.0
