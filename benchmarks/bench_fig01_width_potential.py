"""Figure 1 — potential performance of 8- and 16-wide out-of-order designs
over a 4-wide design, with perfect branch prediction and perfect caches.

Paper: average speedup of 44% at 8-wide and 83% at 16-wide; crafty, vpr and
mgrid approach 3x at 16-wide.
"""

from repro.harness import fig1_width_potential


def test_fig1_width_potential(run_experiment):
    result = run_experiment(fig1_width_potential)
    assert result.averages["4w"] == 1.0
    # Shape: substantial speedup at 8-wide, more at 16-wide.
    assert result.averages["8w"] > 1.15
    assert result.averages["16w"] > result.averages["8w"]
