"""Figure 7 — braid performance vs external register file ports.

Paper: 6 read / 3 write ports stay within 0.5% of a full 16/8 port set.
"""

from repro.harness import fig7_braid_rf_ports


def test_fig7_braid_rf_ports(run_experiment):
    result = run_experiment(fig7_braid_rf_ports)
    assert result.averages["6,3"] > 0.98
    assert result.averages["4,2"] <= result.averages["16,8"] + 1e-9
