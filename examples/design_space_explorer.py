#!/usr/bin/env python
"""Design-space explorer: sweep the braid execution core's parameters.

Reproduces the paper's section 4.3 methodology on one benchmark: start from
the default braid machine (8 BEUs, 32-entry FIFOs, 2-entry windows, 2 FUs
per BEU) and vary one parameter at a time, reporting IPC normalized to the
8-wide out-of-order baseline.

Run with::

    python examples/design_space_explorer.py [benchmark] [scale]
"""

import sys
from dataclasses import replace

from repro.core import braidify
from repro.sim import braid_config, ooo_config, prepare_workload, simulate
from repro.workloads import ALL_BENCHMARKS, build_program


def sweep(title, baseline_ipc, workload, configs):
    print(f"\n--- {title} ---")
    for label, config in configs:
        result = simulate(workload, config)
        bar = "#" * int(40 * result.ipc / baseline_ipc)
        print(f"  {label:>10s}  {result.ipc / baseline_ipc:5.2f}  {bar}")


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "gcc"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 1.0
    if benchmark not in ALL_BENCHMARKS:
        raise SystemExit(
            f"unknown benchmark {benchmark!r}; choose from {ALL_BENCHMARKS}"
        )

    print(f"exploring the braid design space on '{benchmark}' (scale {scale})")
    program = build_program(benchmark, scale=scale)
    compilation = braidify(program)
    plain = prepare_workload(program)
    braided = prepare_workload(compilation.translated)

    baseline = simulate(plain, ooo_config(8))
    print(f"baseline: {baseline.summary()}")

    base = braid_config(8)
    sweep(
        "number of BEUs (paper Figure 9)",
        baseline.ipc,
        braided,
        [(f"{n} BEUs", replace(base, clusters=n, name=f"braid-{n}beu"))
         for n in (1, 2, 4, 8, 16)],
    )
    sweep(
        "FIFO entries per BEU (paper Figure 10)",
        baseline.ipc,
        braided,
        [(f"{n} deep", replace(base, cluster_entries=n, name=f"braid-f{n}"))
         for n in (4, 8, 16, 32, 64)],
    )
    sweep(
        "scheduling window (paper Figure 11)",
        baseline.ipc,
        braided,
        [(f"window {n}", replace(base, beu_window=n, name=f"braid-w{n}"))
         for n in (1, 2, 4, 8)],
    )
    sweep(
        "window == FUs per BEU (paper Figure 12)",
        baseline.ipc,
        braided,
        [(f"{n}x{n}", replace(base, beu_window=n, beu_functional_units=n,
                              name=f"braid-wf{n}"))
         for n in (1, 2, 4, 8)],
    )
    sweep(
        "equal FU budget (paper Figure 14)",
        baseline.ipc,
        braided,
        [
            ("4 BEU x 2", replace(base, clusters=4, name="braid-4x2")),
            ("8 BEU x 1", replace(base, beu_functional_units=1,
                                  name="braid-8x1")),
            ("8 BEU x 2", base),
        ],
    )


if __name__ == "__main__":
    main()
