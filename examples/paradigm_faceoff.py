#!/usr/bin/env python
"""Paradigm face-off: in-order vs dependence-steering vs braid vs
out-of-order on a selection of benchmarks (paper Figure 13, one width).

Run with::

    python examples/paradigm_faceoff.py [width] [benchmark ...]
"""

import sys

from repro.core import braidify
from repro.sim import (
    braid_config,
    depsteer_config,
    inorder_config,
    ooo_config,
    prepare_workload,
    simulate,
)
from repro.workloads import ALL_BENCHMARKS, build_program

DEFAULT_BENCHMARKS = ("gcc", "mcf", "crafty", "swim", "equake", "mgrid")


def main() -> None:
    width = int(sys.argv[1]) if len(sys.argv) > 1 else 8
    names = tuple(sys.argv[2:]) or DEFAULT_BENCHMARKS
    unknown = [n for n in names if n not in ALL_BENCHMARKS]
    if unknown:
        raise SystemExit(f"unknown benchmarks: {unknown}")

    print(f"four paradigms at {width}-wide, normalized to {width}-wide "
          f"out-of-order per benchmark\n")
    header = f"{'benchmark':10s} {'in-order':>9s} {'dep-steer':>10s} " \
             f"{'braid':>7s} {'ooo':>6s}   misp%  L1D-miss%"
    print(header)
    print("-" * len(header))

    totals = {"inorder": 0.0, "depsteer": 0.0, "braid": 0.0}
    for name in names:
        program = build_program(name)
        compilation = braidify(program)
        plain = prepare_workload(program)
        braided = prepare_workload(compilation.translated)

        ooo = simulate(plain, ooo_config(width))
        rows = {
            "inorder": simulate(plain, inorder_config(width)),
            "depsteer": simulate(plain, depsteer_config(width)),
            "braid": simulate(braided, braid_config(width)),
        }
        for key, result in rows.items():
            totals[key] += result.ipc / ooo.ipc
        print(
            f"{name:10s} {rows['inorder'].ipc / ooo.ipc:9.2f} "
            f"{rows['depsteer'].ipc / ooo.ipc:10.2f} "
            f"{rows['braid'].ipc / ooo.ipc:7.2f} {1.0:6.2f}   "
            f"{ooo.mispredict_rate:5.1%}  {plain.stats.l1d_miss_rate:8.1%}"
        )

    count = len(names)
    print("-" * len(header))
    print(
        f"{'average':10s} {totals['inorder'] / count:9.2f} "
        f"{totals['depsteer'] / count:10.2f} "
        f"{totals['braid'] / count:7.2f} {1.0:6.2f}"
    )
    print("\npaper: braid within ~9% of the aggressive out-of-order design, "
          "at almost in-order complexity")


if __name__ == "__main__":
    main()
