#!/usr/bin/env python
"""Braid inspector: dissect the paper's Figure 2 example.

Shows, for the gcc life-analysis loop:

* the dataflow partition of each basic block into braids;
* each braid's size, width, and internal/external value classification
  (paper Tables 2 and 3);
* the braid-annotated machine code with S/T/I/E bits and the 64-bit
  encoded instruction words (paper Figure 3);
* the program's value fanout/lifetime profile (paper section 1.1).

Run with::

    python examples/braid_inspector.py [kernel-name]
"""

import sys

from repro.analysis import characterize_values
from repro.core import braidify, classify_braid_io
from repro.dataflow import BlockGraph, LivenessAnalysis
from repro.isa import encode
from repro.workloads import KERNEL_NAMES, kernel


def inspect(name: str) -> None:
    program = kernel(name)
    compilation = braidify(program)
    liveness = LivenessAnalysis(program)

    print(f"=== {name}: {program.static_size} static instructions, "
          f"{len(program.blocks)} basic blocks ===")

    for translation in compilation.report.blocks:
        block = translation.original
        graph = BlockGraph(block)
        escaping = set(liveness.escaping_defs(block))
        print(f"\n--- block {block.name}: {len(translation.braids)} braids ---")
        for braid_id, braid in enumerate(translation.braids):
            io = classify_braid_io(braid, graph, escaping)
            kind = "single" if braid.is_single else f"size {braid.size}"
            print(
                f"  braid {braid_id} ({kind}, width {braid.width(graph):.2f}): "
                f"{io.num_internal} internal, "
                f"{io.num_external_inputs} ext-in, "
                f"{io.num_external_outputs} ext-out"
            )
            for position in braid.positions:
                print(f"      {block.instructions[position].render()}")

    print("\n=== braid-annotated code with encoded words ===")
    for block in compilation.translated.blocks:
        print(f"{block.name}:")
        for inst in block.instructions:
            word = encode(inst)
            print(f"    {word:016x}  {inst.render()}")

    chars = characterize_values(program)
    print("\n=== value characterization (paper section 1.1) ===")
    print(f"  values produced:        {chars.total_values}")
    print(f"  used exactly once:      {chars.fraction_single_use:.1%}  "
          f"(paper: >70%)")
    print(f"  used at most twice:     {chars.fraction_at_most_two_uses:.1%}  "
          f"(paper: ~90%)")
    print(f"  never used:             {chars.fraction_unused:.1%}  "
          f"(paper: ~4%)")
    print(f"  lifetime <= 32 instrs:  {chars.fraction_short_lived:.1%}  "
          f"(paper: ~80%)")


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "gcc_life"
    if name not in KERNEL_NAMES:
        raise SystemExit(f"unknown kernel {name!r}; choose from {KERNEL_NAMES}")
    inspect(name)


if __name__ == "__main__":
    main()
