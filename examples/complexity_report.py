#!/usr/bin/env python
"""Complexity report: quantify the paper's section 5.1 argument.

Compares the execution-core structures of the braid machine against the
aggressive out-of-order baseline (and the in-order floor), then pairs the
hardware-cost ratios with measured performance so the paper's headline —
out-of-order performance at almost in-order complexity — appears on one
screen.

Run with::

    python examples/complexity_report.py [benchmark ...]
"""

import sys

from repro.analysis import compare_complexity, structure_cost
from repro.core import braidify
from repro.sim import (
    braid_config,
    inorder_config,
    ooo_config,
    prepare_workload,
    simulate,
)
from repro.workloads import ALL_BENCHMARKS, build_program

DEFAULT_BENCHMARKS = ("gcc", "twolf", "swim", "equake")


def main() -> None:
    names = tuple(sys.argv[1:]) or DEFAULT_BENCHMARKS
    unknown = [n for n in names if n not in ALL_BENCHMARKS]
    if unknown:
        raise SystemExit(f"unknown benchmarks: {unknown}")

    print("=== structure costs (section 5.1 models) ===\n")
    print(compare_complexity(braid_config(8), ooo_config(8)).render())
    print()
    inorder = structure_cost(inorder_config(8))
    braid = structure_cost(braid_config(8))
    print(
        f"braid vs in-order: scheduler comparators "
        f"{braid.scheduler_comparators} vs {inorder.scheduler_comparators} "
        f"(both broadcast-free: 'almost in-order complexity')"
    )

    print("\n=== performance delivered at that complexity ===\n")
    total = 0.0
    for name in names:
        program = build_program(name)
        compilation = braidify(program)
        ooo = simulate(prepare_workload(program), ooo_config(8))
        result = simulate(
            prepare_workload(compilation.translated), braid_config(8)
        )
        ratio = result.ipc / ooo.ipc
        total += ratio
        print(f"  {name:10s} braid/ooo IPC = {ratio:5.2f}")
    print(f"  {'average':10s} braid/ooo IPC = {total / len(names):5.2f}")
    print("\npaper: within ~9% of the aggressive out-of-order design")


if __name__ == "__main__":
    main()
