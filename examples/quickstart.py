#!/usr/bin/env python
"""Quickstart: compile a program into braids and race it against a
conventional out-of-order core.

Run with::

    python examples/quickstart.py
"""

from repro.core import braidify
from repro.isa import assemble
from repro.sim import (
    braid_config,
    ooo_config,
    prepare_workload,
    simulate,
)

SOURCE = """
.program saxpy_int
.block ENTRY
    addq r31, #32768, r1     ; x[]
    addq r31, #65536, r2     ; y[]
    addq r31, #0,     r4     ; i
    addq r31, #64,    r5     ; n
    addq r31, #3,     r6     ; a
.block LOOP
    slli r4, #3, r7          ; &x[i], &y[i]
    addq r1, r7, r8
    addq r2, r7, r9
    ldq  r10, 0(r8)
    ldq  r11, 0(r9)
    mulq r10, r6, r10        ; a*x[i]
    addq r10, r11, r11
    stq  r11, 0(r9)          ; y[i] += a*x[i]
    addqi r4, #1, r4
    cmplt r4, r5, r12
    bne  r12, LOOP
.block DONE
    nop
"""


def main() -> None:
    # 1. Assemble and braid-compile: the paper's profiling + binary
    #    translation flow in one call.
    program = assemble(SOURCE)
    compilation = braidify(program)

    print("=== braided program ===")
    print(compilation.translated.render())
    print()
    print(f"braids formed: {compilation.total_braids}")
    print(f"braids broken by ordering rules: "
          f"{compilation.report.splits.ordering_splits}")

    # 2. Prepare the execution-driven workload (functional trace + branch
    #    predictor + cache oracles) for each binary.
    plain = prepare_workload(program)
    braided = prepare_workload(compilation.translated)

    # 3. Simulate the paper's two 8-wide machines.
    ooo = simulate(plain, ooo_config(8))
    braid = simulate(braided, braid_config(8))

    print()
    print("=== 8-wide machines (paper Table 4 configurations) ===")
    print(ooo.summary())
    print(braid.summary())
    print()
    ratio = braid.ipc / ooo.ipc
    print(f"braid achieves {ratio:.0%} of the aggressive out-of-order IPC")
    print(f"(the paper reports ~91% on average across SPEC CPU2000)")


if __name__ == "__main__":
    main()
