#!/usr/bin/env python
"""Pipeline trace: watch instructions move through both machines.

Renders a gem5-style pipeview for the same code on the braid machine and
the conventional out-of-order machine, plus a where-does-the-time-go stage
summary.  Great for *seeing* the braid mechanisms: braids distribute to
BEUs together, internal values never wait on external ports, mispredicted
branches open fetch bubbles of 19 vs 23 cycles.

Run with::

    python examples/pipeline_trace.py [kernel-name] [count]
"""

import sys

from repro.core import braidify
from repro.sim import (
    braid_config,
    ooo_config,
    prepare_workload,
    render_pipeview,
    stage_latencies,
)
from repro.sim.run import build_core
from repro.workloads import KERNEL_NAMES, kernel


def trace(label, workload, config, count):
    core = build_core(workload, config)
    core.trace_log = []
    result = core.run()
    print(f"--- {label}: IPC {result.ipc:.2f} ---")
    # Start mid-trace: the first iterations are dominated by cold cache
    # misses, the steady state is the interesting part.
    start = max(0, len(core.trace_log) // 2)
    print(render_pipeview(core.trace_log, start=start, limit=count, width=90))
    summary = stage_latencies(core.trace_log)
    print(
        "    avg cycles: "
        + "  ".join(f"{stage}={value:.1f}" for stage, value in summary.items())
    )
    print()


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "dot_product"
    count = int(sys.argv[2]) if len(sys.argv) > 2 else 24
    if name not in KERNEL_NAMES:
        raise SystemExit(f"unknown kernel {name!r}; choose from {KERNEL_NAMES}")

    program = kernel(name)
    compilation = braidify(program)

    trace(
        "out-of-order 8-wide",
        prepare_workload(program),
        ooo_config(8),
        count,
    )
    trace(
        "braid 8-wide (braided binary)",
        prepare_workload(compilation.translated),
        braid_config(8),
        count,
    )


if __name__ == "__main__":
    main()
