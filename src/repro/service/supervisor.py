"""Supervisor: schedules durable jobs onto the hardened worker fleet.

One loop: recover, then repeatedly claim a fair-share batch of queued
jobs and dispatch it through
:func:`~repro.harness.parallel.run_tasks_hardened` — the same
crash-hardened runner the fault campaigns use, now driven by the shared
:class:`~repro.service.retry.RetryPolicy` so worker deaths and watchdog
timeouts retry with capped deterministic backoff while permanent task
errors fail fast.

Durability protocol per job (each step is one fsynced journal event):

1. ``start`` is journaled *before* the job reaches a worker — a
   supervisor killed mid-dispatch leaves the job ``running``, and
   :meth:`~repro.service.jobstore.JobStore.recover` requeues it on the
   next start;
2. on success the result payload is published atomically *before*
   ``done`` is journaled — a journaled result always exists on disk;
3. failures journal ``failed`` with the classified permanence, or
   ``requeue`` when the result-store write itself failed transiently
   (simulated disk-quota exhaustion in the chaos harness).

SIGTERM/SIGINT request a graceful drain: the in-flight batch settles,
the queue is left untouched, a ``drain`` event and a fresh ``state.json``
snapshot are written, and the exit is clean.  SIGKILL needs no protocol
at all — that is the point of the journal.
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..harness.parallel import run_tasks_hardened
from ..obs.metrics import MetricsRegistry
from .chaos import FAIL_WRITE, KILL_SUPERVISOR, chaos_point
from .jobstore import JobRecord, JobStore
from .jobs import execute_job, prepare
from .journal import write_text_atomic
from .retry import RETRYABLE, RetryPolicy
from .telemetry import (
    ENV_PROGRESS_DIR,
    ENV_PROGRESS_INTERVAL,
    latency_histograms,
    progress_probe,
    write_health,
)


@dataclass
class ServiceConfig:
    """Operator knobs for one supervisor."""

    #: hardened worker processes (1 = serial in-process, no watchdog)
    jobs: int = 1
    #: max jobs claimed per dispatch round (drain granularity)
    batch: int = 8
    #: idle poll interval in seconds when watching for new submissions
    poll: float = 0.5
    #: exit when the queue is empty instead of watching (batch mode)
    drain_when_idle: bool = False
    #: shared retry policy (classification, backoff, per-job deadline)
    policy: RetryPolicy = field(default_factory=RetryPolicy)
    #: seconds between worker progress heartbeats (0 disables heartbeats,
    #: metrics/health publishing stays on)
    heartbeat: float = 0.25
    #: heartbeat age (seconds) past which a deadline miss counts as hung
    #: rather than slow-but-progressing; None derives 8x the heartbeat
    hang_grace: Optional[float] = None

    def effective_hang_grace(self) -> float:
        if self.hang_grace is not None:
            return self.hang_grace
        return max(2.0, 8.0 * self.heartbeat)


class Supervisor:
    """Drives one :class:`JobStore` until drained or told to stop."""

    def __init__(self, store: JobStore, config: ServiceConfig) -> None:
        self.store = store
        self.config = config
        self.telemetry = MetricsRegistry()
        self._drain_requested = False
        #: settled-job count, continued across restarts so the chaos
        #: kill-supervisor threshold is a property of the *store*, not
        #: of one process's lifetime
        counters = store.counters()
        self._settled = counters["completed"] + counters["failed"]
        self._base_attempts: Dict[str, int] = {}
        self._started = time.monotonic()
        self._rounds = 0

    # --------------------------------------------------------------- signals
    def install_signal_handlers(self) -> None:
        """SIGTERM/SIGINT → graceful drain (main thread only)."""
        signal.signal(signal.SIGTERM, self._handle_signal)
        signal.signal(signal.SIGINT, self._handle_signal)

    def _handle_signal(self, signum, frame) -> None:
        self.request_drain()

    def request_drain(self) -> None:
        self._drain_requested = True

    # ------------------------------------------------------------- main loop
    def run(self) -> Dict[str, Any]:
        """Serve until drained (or, in batch mode, until the queue dries)."""
        recovery = self.store.recover()
        for name in ("interrupted", "lost_results"):
            self.telemetry.counter(
                f"service.recovered_{name}", len(recovery[name])
            )
        probe = None
        if self.config.heartbeat > 0:
            probe = progress_probe(self.store.progress_dir)
        saved_env = self._arm_progress()
        self.publish_observability()
        try:
            while not self._drain_requested:
                batch = self._claim_batch()
                if not batch:
                    if self.config.drain_when_idle:
                        break
                    time.sleep(self.config.poll)
                    # Idle rounds still refresh metrics + the health
                    # heartbeat, so liveness is observable while waiting.
                    self.publish_observability()
                    continue
                self._rounds += 1
                prepare(batch)
                run_tasks_hardened(
                    execute_job,
                    [
                        (job.job_id,
                         (job.job_id, job.kind, dict(job.params)))
                        for job in batch
                    ],
                    jobs=self.config.jobs,
                    policy=self.config.policy,
                    on_result=self._settle,
                    progress_probe=probe,
                    hang_grace=self.config.effective_hang_grace(),
                )
                self.publish_observability()
        finally:
            self._disarm_progress(saved_env)
        drained = self._drain_requested
        self.store.drain(graceful=True)
        self.store.write_state()
        self.publish_observability(draining=True)
        # Fold the final store counters into the supervisor's own
        # registry for the in-process caller — after the exposition
        # above, which derives them fresh and must not see them twice.
        self.store.publish_metrics(self.telemetry)
        counters = self.store.counters()
        return {
            "rounds": self._rounds,
            "drained": drained,
            "recovery": recovery,
            "counters": counters,
        }

    # ----------------------------------------------------------- telemetry
    def _arm_progress(self) -> Dict[str, Optional[str]]:
        """Point workers' heartbeat publishers at the store's progress dir.

        Workers fork from this process (or run inside it when
        ``jobs=1``), so the environment is the one channel that reaches
        both without a task-payload change.  Returns the prior values so
        the caller can restore them (in-process tests, nested serves).
        """
        saved = {
            ENV_PROGRESS_DIR: os.environ.get(ENV_PROGRESS_DIR),
            ENV_PROGRESS_INTERVAL: os.environ.get(ENV_PROGRESS_INTERVAL),
        }
        if self.config.heartbeat > 0:
            self.store.progress_dir.mkdir(parents=True, exist_ok=True)
            os.environ[ENV_PROGRESS_DIR] = str(self.store.progress_dir)
            os.environ[ENV_PROGRESS_INTERVAL] = str(self.config.heartbeat)
        else:
            os.environ.pop(ENV_PROGRESS_DIR, None)
        return saved

    @staticmethod
    def _disarm_progress(saved: Dict[str, Optional[str]]) -> None:
        for name, value in saved.items():
            if value is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = value

    def metrics_registry(self) -> MetricsRegistry:
        """A fresh registry: store + cache counters, supervisor event
        counts, and the journal-derived latency histograms."""
        registry = MetricsRegistry()
        self.store.publish_metrics(registry)
        for name, value in self.telemetry.counters.items():
            registry.counter(name, value)
        registry.counter("service.supervisor_rounds", self._rounds)
        registry.histograms.update(
            latency_histograms(self.store.journal.records)
        )
        return registry

    def publish_observability(self, draining: bool = False) -> None:
        """Atomically refresh ``metrics.prom`` and ``health.json``.

        Telemetry publication must never take the supervisor down: a
        full disk here degrades observability, not durability.
        """
        try:
            write_text_atomic(
                self.store.metrics_path,
                self.metrics_registry().render_prometheus(),
            )
            write_health(
                self.store.health_path,
                round_number=self._rounds,
                started=self._started,
                counters=self.store.counters(),
                draining=draining,
            )
        except OSError:
            pass

    # -------------------------------------------------------------- dispatch
    def _claim_batch(self) -> List[JobRecord]:
        """Claim up to ``batch`` runnable jobs, retiring exhausted ones.

        A queued job whose accumulated attempts already exhaust the
        retry budget (it kept getting requeued by transient settle
        failures) is failed here, non-permanently, instead of looping
        forever.
        """
        policy = self.config.policy
        batch: List[JobRecord] = []
        for job in self.store.runnable():
            if len(batch) >= self.config.batch:
                break
            if job.attempts >= policy.max_attempts:
                self.store.fail(
                    job.job_id,
                    error=(
                        f"retry budget exhausted after {job.attempts} "
                        f"attempt(s): {job.error or 'transient failures'}"
                    ),
                    permanent=False,
                    attempts=job.attempts,
                )
                self._count_settled()
                continue
            self._base_attempts[job.job_id] = job.attempts
            self.store.claim(job.job_id)
            batch.append(job)
        return batch

    def _settle(self, outcome) -> None:
        """Journal one settled task (the hardened runner's on_result)."""
        job_id = outcome.task_id
        attempts = self._base_attempts.pop(job_id, 0) + outcome.attempts
        policy = self.config.policy
        if outcome.ok:
            try:
                chaos_point(FAIL_WRITE, job_id)
                self.store.complete(job_id, outcome.result, attempts)
                self.telemetry.counter("service.jobs_completed")
                self._count_settled()
            except OSError as error:
                message = f"result store write failed: {error}"
                if (
                    policy.classify(message) == RETRYABLE
                    and attempts < policy.max_attempts
                ):
                    # Not settled: the job goes back in the queue.
                    self.store.requeue(job_id, message, attempts)
                    self.telemetry.counter("service.jobs_requeued")
                else:
                    self.store.fail(
                        job_id, message, permanent=False, attempts=attempts
                    )
                    self.telemetry.counter("service.jobs_failed")
                    self._count_settled()
        else:
            self.store.fail(
                job_id,
                outcome.error or "unknown failure",
                permanent=outcome.permanent,
                attempts=attempts,
            )
            self.telemetry.counter("service.jobs_failed")
            self._count_settled()

    def _count_settled(self) -> None:
        self._settled += 1
        # Chaos kill-supervisor point: fires (once) when the settled
        # count reaches the configured threshold — between journal
        # appends, never inside one, which is exactly the crash window
        # the journal protocol must (and does) survive.
        chaos_point(KILL_SUPERVISOR, str(self._settled))


def serve(
    store: JobStore,
    config: Optional[ServiceConfig] = None,
    handle_signals: bool = False,
) -> Dict[str, Any]:
    """Convenience wrapper: build a supervisor, run it, return the summary."""
    supervisor = Supervisor(store, config or ServiceConfig())
    if handle_signals:
        supervisor.install_signal_handlers()
    return supervisor.run()
