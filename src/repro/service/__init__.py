"""Durable simulation service: job store, supervisor, chaos harness.

The harness can already sweep, sample, validate, and inject faults; this
package turns it into something you can *operate*: a crash-safe on-disk
job queue (:mod:`~repro.service.jobstore`), a supervisor that schedules
queued jobs onto the hardened worker fleet with classified retries,
fair-share quotas, and graceful drain (:mod:`~repro.service.supervisor`),
and a deterministic infrastructure-fault injector that proves the
recovery invariants hold (:mod:`~repro.service.chaos`).

The design mirrors the paper's own argument: resilience comes from
small, independently recoverable units over simple in-order state — an
append-only fsynced journal and atomic-rename files — rather than one
monolithic process that must never die.  SIGKILL the supervisor
mid-campaign, restart it, and the service resumes from the journal with
no lost or duplicated results, bit-identical to an uninterrupted run.

Observability (:mod:`~repro.service.telemetry`) rides the same
primitives: every journal event carries wall + monotonic timestamps the
state fold ignores, workers publish atomic heartbeat files the watchdog
and the live ``status --follow`` table read back, and the supervisor
exports Prometheus metrics and a health file each round.

Light modules (:mod:`~repro.service.retry`, :mod:`~repro.service.journal`,
:mod:`~repro.service.jobstore`, :mod:`~repro.service.chaos`) are imported
eagerly; the supervisor and executors — which pull in the whole harness —
load lazily on first attribute access so that
``repro.harness.parallel`` can import :class:`RetryPolicy` without a
cycle.
"""

from __future__ import annotations

from .chaos import ChaosSpec
from .journal import JournalError, JournalFollower, JsonlJournal
from .jobstore import (
    JobRecord,
    JobRequest,
    JobStore,
    QuotaExceeded,
    ServiceError,
    request_key,
)
from .retry import RetryPolicy
from .telemetry import (
    ProgressPublisher,
    job_timeline,
    read_health,
    read_progress,
)

__all__ = [
    "ChaosSpec",
    "JournalError",
    "JournalFollower",
    "JsonlJournal",
    "JobRecord",
    "JobRequest",
    "JobStore",
    "ProgressPublisher",
    "QuotaExceeded",
    "RetryPolicy",
    "ServiceError",
    "Supervisor",
    "ServiceConfig",
    "job_timeline",
    "read_health",
    "read_progress",
    "request_key",
]

_LAZY = {
    "Supervisor": ("supervisor", "Supervisor"),
    "ServiceConfig": ("supervisor", "ServiceConfig"),
}


def __getattr__(name: str):
    try:
        module_name, attribute = _LAZY[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    import importlib

    module = importlib.import_module(f".{module_name}", __name__)
    return getattr(module, attribute)
