"""Crash-safe append-only JSONL journal, shared by campaign and job store.

One durability idiom, used everywhere a record must survive SIGKILL:

* every append is ``write + flush + fsync`` of one complete JSON line, so
  a kill point leaves either the whole record or a torn final line — never
  a half-applied state;
* line 1 is a header naming the journal kind, format version, and an
  optional content digest; resuming against a journal written by a
  different producer is refused loudly instead of silently mixing records;
* loading tolerates a torn tail: an unparseable line is skipped and
  counted, and because every record is one idempotent event, the worst a
  torn tail costs is redoing the work the lost record described.

:class:`~repro.faults.campaign.CampaignJournal` and
:class:`~repro.service.jobstore.JobStore` are both thin layers over this
class; the torn-tail property test in ``tests/test_service_jobstore.py``
truncates a journal at every byte offset of its final record and proves
clean resume.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, List, Optional


class JournalError(RuntimeError):
    """An unusable journal: missing/mismatched header or a dead handle."""


class JsonlJournal:
    """Append-only fsynced JSONL file with a digest-guarded header."""

    def __init__(
        self,
        path: Path,
        kind: str,
        version: int,
        digest: Optional[str] = None,
        resume: bool = True,
        readonly: bool = False,
    ) -> None:
        self.path = Path(path)
        self.kind = kind
        self.version = version
        self.digest = digest
        self.readonly = readonly
        #: records restored from disk (header excluded), journal order
        self.records: List[Dict[str, Any]] = []
        #: unparseable lines skipped during load (torn tail / bad disk)
        self.skipped = 0
        self._handle = None
        existing = self.path.exists() and self.path.stat().st_size > 0
        if existing and (resume or readonly):
            self._load()
        if readonly:
            return
        self.path.parent.mkdir(parents=True, exist_ok=True)
        mode = "a" if (existing and resume) else "w"
        self._handle = open(self.path, mode, encoding="utf-8")
        if mode == "w":
            header = {"kind": self.kind, "version": self.version}
            if self.digest is not None:
                header["digest"] = self.digest
            self._write_line(header)
        self._fsync_parent()

    def _fsync_parent(self) -> None:
        """Make the journal's directory entry itself durable."""
        try:
            fd = os.open(str(self.path.parent), os.O_RDONLY)
        except OSError:
            return
        try:
            os.fsync(fd)
        except OSError:
            pass
        finally:
            os.close(fd)

    def _load(self) -> None:
        # errors="replace": a line of damaged bytes must cost that one
        # record (it fails the JSON parse below and is counted), never
        # the whole journal.
        with open(self.path, "r", encoding="utf-8",
                  errors="replace") as handle:
            lines = handle.read().splitlines()
        if not lines:
            return
        try:
            header = json.loads(lines[0])
        except json.JSONDecodeError:
            raise JournalError(
                f"journal {self.path} has no readable header; "
                f"delete it to start over"
            ) from None
        if header.get("kind") != self.kind:
            raise JournalError(
                f"journal {self.path} was written by {header.get('kind')!r}, "
                f"not {self.kind!r}; refusing to mix records"
            )
        if header.get("version") != self.version:
            raise JournalError(
                f"journal {self.path} uses format version "
                f"{header.get('version')!r}, this build writes "
                f"{self.version!r}; delete it to start over"
            )
        if self.digest is not None and header.get("digest") != self.digest:
            raise JournalError(
                f"journal {self.path} belongs to a different producer "
                f"(digest {header.get('digest')!r} != {self.digest!r}); "
                f"delete it or rerun with the original parameters"
            )
        for line in lines[1:]:
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                # Torn tail from a mid-write kill (or a damaged line): the
                # event is lost, the work it described simply reruns.
                self.skipped += 1
                continue
            if isinstance(record, dict):
                self.records.append(record)
            else:
                self.skipped += 1

    def _write_line(self, record: Dict[str, Any]) -> None:
        if self._handle is None:
            raise JournalError(
                f"journal {self.path} was opened read-only"
            )
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def append(self, record: Dict[str, Any]) -> None:
        """Durably append one record (complete before this call returns)."""
        self._write_line(record)
        self.records.append(record)

    def follow(self) -> "JournalFollower":
        """An incremental tail reader over this journal's file."""
        return JournalFollower(self.path, kind=self.kind,
                               version=self.version)

    def close(self) -> None:
        if self._handle is None:
            return
        try:
            self._handle.close()
        except OSError:
            pass
        self._handle = None


class JournalFollower:
    """Incremental ``tail -f`` reader for a :class:`JsonlJournal` file.

    Each :meth:`poll` returns the complete records appended since the
    last poll, never blocking and never raising on in-flight writes:

    * a **torn tail** (bytes after the last newline — the writer is
      mid-``write`` or was killed inside one) is left unconsumed; the
      offset only ever advances past complete lines, so the record is
      delivered whole on a later poll or never;
    * a complete-but-unparseable line (damaged middle) is consumed,
      counted in :attr:`skipped`, and skipped;
    * **rotation/truncation** (the file shrank, or its header line
      changed — someone deleted and recreated the store) is detected by
      re-reading the header each poll; the follower resets to the new
      file's beginning and counts it in :attr:`rotations` rather than
      serving records from a stale offset.

    ``kind``/``version`` mismatches in a header raise
    :class:`JournalError` loudly, same as :class:`JsonlJournal` resume —
    following the wrong journal is an operator error, not a tail state.
    """

    def __init__(
        self,
        path: Path,
        kind: Optional[str] = None,
        version: Optional[int] = None,
    ) -> None:
        self.path = Path(path)
        self.kind = kind
        self.version = version
        #: byte offset of the first unconsumed byte (past the header)
        self.offset = 0
        #: complete-but-unparseable lines consumed and dropped
        self.skipped = 0
        #: times the file was detected replaced or truncated
        self.rotations = 0
        self._header_line: Optional[bytes] = None
        self._inode: Optional[int] = None

    def _check_header(self, line: bytes) -> None:
        try:
            header = json.loads(line.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError):
            raise JournalError(
                f"journal {self.path} has no readable header"
            ) from None
        if not isinstance(header, dict):
            raise JournalError(f"journal {self.path} has no readable header")
        if self.kind is not None and header.get("kind") != self.kind:
            raise JournalError(
                f"journal {self.path} was written by "
                f"{header.get('kind')!r}, not {self.kind!r}; "
                f"refusing to follow"
            )
        if self.version is not None and header.get("version") != self.version:
            raise JournalError(
                f"journal {self.path} uses format version "
                f"{header.get('version')!r}, this build reads "
                f"{self.version!r}; refusing to follow"
            )

    def poll(self) -> List[Dict[str, Any]]:
        """Complete records appended since the last poll (possibly [])."""
        try:
            with open(self.path, "rb") as handle:
                head = handle.readline()
                if not head.endswith(b"\n"):
                    # The header itself is still being written (or the
                    # file is empty): nothing is consumable yet.
                    return []
                stat = os.fstat(handle.fileno())
                rotated = (
                    head != self._header_line
                    or stat.st_ino != self._inode  # replaced, same header
                    or stat.st_size < self.offset  # truncated in place
                )
                if rotated:
                    if self._header_line is not None:
                        self.rotations += 1
                    self._check_header(head)
                    self._header_line = head
                    self._inode = stat.st_ino
                    self.offset = len(head)
                handle.seek(self.offset)
                chunk = handle.read()
        except OSError:
            return []
        records: List[Dict[str, Any]] = []
        consumed = 0
        while True:
            newline = chunk.find(b"\n", consumed)
            if newline < 0:
                break  # torn tail (if any) stays unconsumed
            line = chunk[consumed:newline]
            consumed = newline + 1
            if not line.strip():
                continue
            try:
                record = json.loads(line.decode("utf-8"))
            except (json.JSONDecodeError, UnicodeDecodeError):
                self.skipped += 1
                continue
            if isinstance(record, dict):
                records.append(record)
            else:
                self.skipped += 1
        self.offset += consumed
        return records


def write_json_atomic(path: Path, payload: Any) -> None:
    """Publish a JSON file via temp-file + fsync + atomic rename.

    Any kill point leaves either the previous file or the complete new
    one — the state-snapshot half of the journal/snapshot durability
    pair.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + f".{os.getpid()}.tmp")
    try:
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, sort_keys=True, indent=1)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def write_text_atomic(path: Path, text: str) -> None:
    """Publish a text file via temp-file + fsync + atomic rename.

    Same kill-safety contract as :func:`write_json_atomic`; used for the
    supervisor's Prometheus exposition file.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + f".{os.getpid()}.tmp")
    try:
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def read_json(path: Path) -> Optional[Any]:
    """Load a JSON file; None when missing or unreadable (caller decides)."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)
    except (OSError, json.JSONDecodeError):
        return None
