"""Unified retry policy: classified errors, capped deterministic backoff.

Both the fault-campaign dispatcher (:func:`~repro.harness.parallel.
run_tasks_hardened`) and the service supervisor face the same question
after a failed attempt: *was that the infrastructure or the task?*  A
worker SIGKILLed by the OOM killer deserves a retry; a ``ValueError``
raised deterministically by the task function will raise again forever
and deserves immediate quarantine.  This module is the one place that
answer lives, so campaign and service behavior match.

Backoff is exponential with a per-(task, attempt) *deterministic* jitter:
the fraction comes from a SHA-256 digest, not ``random``, so two
same-seed campaigns schedule their retries identically (process-salted
``hash()`` and wall-clock randomness would both break the bit-identical
reproducibility contract the rest of the repo keeps).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

#: exception type names whose escape from a task function indicates the
#: *infrastructure* failed (transient: disk, memory, pipes), not the task
RETRYABLE_EXCEPTION_NAMES = frozenset(
    {
        "OSError",
        "IOError",
        "EOFError",
        "MemoryError",
        "TimeoutError",
        "BrokenPipeError",
        "ConnectionError",
        "ConnectionResetError",
        "ConnectionRefusedError",
        "InterruptedError",
        "BlockingIOError",
        "BrokenProcessPool",
    }
)

#: failure-message prefixes produced by the hardened runner itself for
#: events that are infrastructure by construction
_INFRA_MARKERS = (
    "worker died",
    "wall-clock timeout",
    "result delivery failed",
    "result store write failed",
)

RETRYABLE = "retryable"
PERMANENT = "permanent"


def classify_failure(message: str) -> str:
    """``"retryable"`` (infra) or ``"permanent"`` (task) for one failure.

    ``message`` is a failure description in the hardened runner's shape:
    either one of its own infrastructure reports (worker death, watchdog
    timeout, delivery failure) or ``"ExcType: detail"`` for an exception
    that escaped the task function.
    """
    text = (message or "").strip()
    lowered = text.lower()
    for marker in _INFRA_MARKERS:
        if marker in lowered:
            return RETRYABLE
    # "ExcType: detail" — classify by the exception type name.
    name = text.split(":", 1)[0].strip()
    if name in RETRYABLE_EXCEPTION_NAMES:
        return RETRYABLE
    return PERMANENT


def classify_exception(error: BaseException) -> str:
    """Classification for a live exception (serial in-process path)."""
    for klass in type(error).__mro__:
        if klass.__name__ in RETRYABLE_EXCEPTION_NAMES:
            return RETRYABLE
    return PERMANENT


@dataclass(frozen=True)
class RetryPolicy:
    """How failed attempts are classified, delayed, and bounded.

    * ``max_attempts`` — total tries per task (1 = no retries);
    * ``backoff`` — base delay in seconds; attempt *n*'s delay is
      ``backoff * 2**(n-1)``, jittered to ``[0.5x, 1.5x)`` and capped at
      ``backoff_cap``;
    * ``deadline`` — per-attempt wall-clock budget in seconds; the
      hardened runner's watchdog kills the worker past it (classified
      retryable);
    * ``seed`` — identity of the jitter stream (same seed + task id +
      attempt → same delay, always).
    """

    max_attempts: int = 3
    backoff: float = 0.5
    backoff_cap: float = 30.0
    deadline: float = 120.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff < 0 or self.backoff_cap < 0:
            raise ValueError("backoff and backoff_cap must be >= 0")
        if self.deadline <= 0:
            raise ValueError("deadline must be > 0")

    # -------------------------------------------------------- classification
    def classify(self, message: str) -> str:
        return classify_failure(message)

    def classify_error(self, error: BaseException) -> str:
        return classify_exception(error)

    def should_retry(self, message: str, attempt: int) -> bool:
        """Retry after ``attempt`` failed with ``message``?"""
        if attempt >= self.max_attempts:
            return False
        return self.classify(message) == RETRYABLE

    # --------------------------------------------------------------- backoff
    def jitter_fraction(self, task_id: str, attempt: int) -> float:
        """Deterministic uniform-ish fraction in ``[0, 1)`` for one retry."""
        digest = hashlib.sha256(
            f"{self.seed}:{task_id}:{attempt}".encode("utf-8")
        ).digest()
        return int.from_bytes(digest[:8], "big") / 2**64

    def delay(self, task_id: str, attempt: int) -> float:
        """Seconds to wait before re-dispatching after failed ``attempt``."""
        base = self.backoff * (2 ** max(0, attempt - 1))
        jittered = base * (0.5 + self.jitter_fraction(task_id, attempt))
        return min(self.backoff_cap, jittered)
