"""Service observability: event timestamps, progress heartbeats, latency.

Three layers, all riding the durability primitives the store already
has (:func:`~repro.service.journal.write_json_atomic`, the fsynced
journal) so that telemetry inherits the same crash-safety the state it
describes does:

* **event timestamps** — :func:`event_stamp` is merged into every
  journaled job event by :meth:`JobStore._append`.  The stamp carries a
  wall clock (``ts``, comparable across processes), a monotonic clock
  (``mono``, immune to NTP steps but only meaningful within one
  process), and the writing ``pid`` (which says when ``mono`` deltas
  are trustworthy).  The state fold never reads any of these fields —
  pinned by a property test — so dedup keys, recovery semantics, and
  chaos bit-identity are untouched;
* **progress heartbeats** — a :class:`ProgressPublisher` in the worker
  writes one atomic JSON file per job under ``store/progress/``,
  throttled to the configured interval; the supervisor arms it through
  ``REPRO_PROGRESS_DIR``/``REPRO_PROGRESS_INTERVAL`` and the watchdog
  reads the files back (:func:`read_progress`, :func:`heartbeat_age`)
  to tell *hung* from *slow but progressing*;
* **derived latency** — :func:`job_timeline` and
  :func:`latency_histograms` fold the timestamped journal into per-job
  timelines and queue-wait / run-time / retry-latency
  :class:`~repro.obs.metrics.BoundedHistogram` digests, which the
  supervisor exports in Prometheus text format every round.

When nothing arms the environment variables every hook here is one
``dict.get`` away from a no-op — the same zero-cost-when-off discipline
``obs_overhead`` pins for the core's per-cycle hooks.
"""

from __future__ import annotations

import os
import time
from pathlib import Path
from typing import Any, Callable, Dict, List, Mapping, Optional

from ..obs.metrics import BoundedHistogram
from .journal import read_json, write_json_atomic

ENV_PROGRESS_DIR = "REPRO_PROGRESS_DIR"
ENV_PROGRESS_INTERVAL = "REPRO_PROGRESS_INTERVAL"

#: default seconds between heartbeat publications
DEFAULT_INTERVAL = 0.25

#: histogram resolution: one bucket per millisecond up to 10 s, then the
#: overflow bucket (mean/max still track the true extremes)
LATENCY_BOUND_MS = 10_000

#: terminal events that end one run attempt
_SETTLING = ("done", "failed", "requeue")


def event_stamp() -> Dict[str, Any]:
    """Timestamp fields merged into one journal event at append time."""
    return {
        "ts": round(time.time(), 6),
        "mono": round(time.monotonic(), 6),
        "pid": os.getpid(),
    }


def strip_stamp(record: Mapping[str, Any]) -> Dict[str, Any]:
    """The record without its timestamp fields (fold-equivalence tests)."""
    return {
        key: value for key, value in record.items()
        if key not in ("ts", "mono", "pid")
    }


def _delta(earlier: Mapping[str, Any], later: Mapping[str, Any]) -> Optional[float]:
    """Seconds between two stamped events, or None when unstamped.

    Uses the monotonic clock when both stamps came from the same
    process (immune to wall-clock steps); falls back to wall time
    across processes, clamped at zero so a stepped clock cannot
    produce a negative latency.
    """
    if "ts" not in earlier or "ts" not in later:
        return None
    if (
        "mono" in earlier and "mono" in later
        and earlier.get("pid") == later.get("pid")
    ):
        return max(0.0, later["mono"] - earlier["mono"])
    return max(0.0, later["ts"] - earlier["ts"])


# ---------------------------------------------------------------- timelines
def job_timeline(
    records: List[Mapping[str, Any]], job_id: str
) -> Dict[str, Any]:
    """One job's journal events plus the durations they imply.

    Returns ``{"events": [...], "queue_wait": s|None, "run_time": s|None,
    "retry_latencies": [s, ...]}``: queue wait is submit→first start,
    run time is last start→terminal settle, and each retry latency is a
    requeue/failed→next start gap.
    """
    events = [
        record for record in records
        if record.get("job") == job_id and "event" in record
    ]
    submit = None
    first_start = None
    last_start = None
    settle = None
    retry_latencies: List[float] = []
    pending_retry: Optional[Mapping[str, Any]] = None
    for record in events:
        name = record["event"]
        if name == "submit":
            submit = record
        elif name == "start":
            if first_start is None:
                first_start = record
            last_start = record
            if pending_retry is not None:
                gap = _delta(pending_retry, record)
                if gap is not None:
                    retry_latencies.append(gap)
                pending_retry = None
        elif name in _SETTLING:
            settle = record
            if name == "requeue":
                pending_retry = record
        elif name == "recover":
            pending_retry = record
    queue_wait = (
        _delta(submit, first_start)
        if submit is not None and first_start is not None else None
    )
    run_time = (
        _delta(last_start, settle)
        if last_start is not None and settle is not None
        and settle["event"] in ("done", "failed") else None
    )
    return {
        "events": events,
        "queue_wait": queue_wait,
        "run_time": run_time,
        "retry_latencies": retry_latencies,
    }


def latency_histograms(
    records: List[Mapping[str, Any]]
) -> Dict[str, BoundedHistogram]:
    """Store-wide latency digests from the timestamped journal.

    ``queue_wait_ms`` (submit→first start), ``run_ms`` (start→done or
    failed), ``retry_ms`` (requeue/recover→restart), each one
    millisecond-bucketed up to :data:`LATENCY_BOUND_MS`.
    """
    histograms = {
        "queue_wait_ms": BoundedHistogram(LATENCY_BOUND_MS),
        "run_ms": BoundedHistogram(LATENCY_BOUND_MS),
        "retry_ms": BoundedHistogram(LATENCY_BOUND_MS),
    }
    job_ids = []
    seen = set()
    for record in records:
        job_id = record.get("job")
        if job_id and record.get("event") == "submit" and job_id not in seen:
            seen.add(job_id)
            job_ids.append(job_id)
    for job_id in job_ids:
        timeline = job_timeline(records, job_id)
        if timeline["queue_wait"] is not None:
            histograms["queue_wait_ms"].add(
                int(timeline["queue_wait"] * 1000)
            )
        if timeline["run_time"] is not None:
            histograms["run_ms"].add(int(timeline["run_time"] * 1000))
        for gap in timeline["retry_latencies"]:
            histograms["retry_ms"].add(int(gap * 1000))
    return histograms


# --------------------------------------------------------------- heartbeats
def interval_from_env() -> float:
    """Heartbeat interval in seconds from ``REPRO_PROGRESS_INTERVAL``."""
    raw = os.environ.get(ENV_PROGRESS_INTERVAL, "").strip()
    if not raw:
        return DEFAULT_INTERVAL
    try:
        value = float(raw)
    except ValueError:
        return DEFAULT_INTERVAL
    return value if value > 0 else DEFAULT_INTERVAL


def progress_path(directory: Path, job_id: str) -> Path:
    return Path(directory) / f"{job_id}.json"


class ProgressPublisher:
    """Worker-side heartbeat writer for one job attempt.

    Callable with the :meth:`TimingCore.run <repro.sim.core.TimingCore.run>`
    progress protocol — ``publisher(retired, total, cycle)`` — and
    carries multi-cell context (sweep jobs) via :meth:`start_cell`.
    Every publication is one atomic-rename JSON file, so a reader (or a
    SIGKILL) can never observe a torn heartbeat; publications are
    throttled to ``interval`` except when ``force=True``.
    """

    #: instructions simulated between progress callbacks (the chunk the
    #: resumable ``_run_until`` seam is re-entered at; re-entry is cheap,
    #: the throttle below keeps actual file writes at the interval)
    chunk = 2048

    def __init__(
        self,
        directory: Path,
        job_id: str,
        attempt: int = 0,
        interval: float = DEFAULT_INTERVAL,
    ) -> None:
        self.directory = Path(directory)
        self.job_id = job_id
        self.attempt = attempt
        self.interval = max(0.0, float(interval))
        self.published = 0
        self.cell: Optional[str] = None
        self.cells_done = 0
        self.cells_total = 1
        self._last_publish: Optional[float] = None
        self._started = time.monotonic()
        self._last_state: Optional[Dict[str, Any]] = None

    @classmethod
    def from_env(
        cls, job_id: str, attempt: Optional[int] = None
    ) -> Optional["ProgressPublisher"]:
        """The armed publisher, or None when heartbeats are off."""
        directory = os.environ.get(ENV_PROGRESS_DIR, "").strip()
        if not directory:
            return None
        if attempt is None:
            try:
                attempt = int(os.environ.get("REPRO_TASK_ATTEMPT", "0"))
            except ValueError:
                attempt = 0
        return cls(
            Path(directory), job_id, attempt=attempt,
            interval=interval_from_env(),
        )

    def start_cell(self, cell: str, done: int, total: int) -> None:
        """Name the sweep cell subsequent heartbeats belong to."""
        self.cell = cell
        self.cells_done = done
        self.cells_total = max(1, total)

    def __call__(self, retired: int, total: int, cycle: int) -> None:
        self.publish(retired, total, cycle)

    def publish(
        self, retired: int, total: int, cycle: int, force: bool = False
    ) -> None:
        now = time.monotonic()
        if (
            not force
            and self._last_publish is not None
            and now - self._last_publish < self.interval
        ):
            return
        elapsed = now - self._started
        rate = retired / elapsed if elapsed > 0 else 0.0
        remaining_here = max(0, total - retired)
        eta = None
        if rate > 0:
            # Remaining whole cells are estimated at the current cell's
            # instruction count — coarse, but monotone and cheap.
            remaining_cells = max(
                0, self.cells_total - self.cells_done - 1
            )
            eta = round(
                (remaining_here + remaining_cells * total) / rate, 3
            )
        state = {
            "job": self.job_id,
            "attempt": self.attempt,
            "pid": os.getpid(),
            "ts": round(time.time(), 6),
            "mono": round(now, 6),
            "instructions": int(retired),
            "instructions_total": int(total),
            "cycles": int(cycle),
            "eta_seconds": eta,
            "cell": self.cell,
            "cells_done": self.cells_done,
            "cells_total": self.cells_total,
        }
        try:
            write_json_atomic(
                progress_path(self.directory, self.job_id), state
            )
        except OSError:
            return  # heartbeats are telemetry: never fail the job
        self._last_publish = now
        self._last_state = state
        self.published += 1


def read_progress(
    directory: Optional[Path], job_id: str
) -> Optional[Dict[str, Any]]:
    """The last published heartbeat for a job, or None."""
    if directory is None:
        return None
    state = read_json(progress_path(directory, job_id))
    return state if isinstance(state, dict) else None


def heartbeat_age(
    snapshot: Optional[Mapping[str, Any]], now: Optional[float] = None
) -> Optional[float]:
    """Seconds since a heartbeat was published (wall clock), or None."""
    if snapshot is None or "ts" not in snapshot:
        return None
    reference = time.time() if now is None else now
    return max(0.0, reference - float(snapshot["ts"]))


def progress_probe(directory: Path) -> Callable[[str], Optional[Dict]]:
    """A ``task_id -> heartbeat snapshot`` probe for the watchdog."""
    root = Path(directory)

    def probe(task_id: str) -> Optional[Dict[str, Any]]:
        return read_progress(root, task_id)

    return probe


def describe_progress(snapshot: Optional[Mapping[str, Any]]) -> str:
    """One human line for error messages and ``status`` output."""
    if snapshot is None:
        return "no heartbeat ever published"
    age = heartbeat_age(snapshot)
    parts = [
        f"last heartbeat {age:.1f}s ago" if age is not None
        else "last heartbeat unstamped",
        f"retired {snapshot.get('instructions', 0)}"
        f"/{snapshot.get('instructions_total', '?')} instructions",
        f"{snapshot.get('cycles', 0)} cycles",
    ]
    cell = snapshot.get("cell")
    if cell:
        parts.append(
            f"cell {cell} ({snapshot.get('cells_done', 0) + 1}"
            f"/{snapshot.get('cells_total', 1)})"
        )
    return ", ".join(parts)


# ------------------------------------------------------------------- health
def write_health(
    path: Path,
    round_number: int,
    started: float,
    counters: Mapping[str, int],
    draining: bool = False,
) -> None:
    """Atomic supervisor heartbeat: pid, round, uptime, store counters."""
    write_json_atomic(Path(path), {
        "pid": os.getpid(),
        "ts": round(time.time(), 6),
        "round": int(round_number),
        "uptime_seconds": round(max(0.0, time.monotonic() - started), 3),
        "draining": bool(draining),
        "counters": dict(counters),
    })


def read_health(path: Path) -> Optional[Dict[str, Any]]:
    state = read_json(Path(path))
    return state if isinstance(state, dict) else None
