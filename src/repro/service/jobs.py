"""Job executors: how each job kind turns params into a JSON result.

Three kinds, mirroring the harness's own entry points:

* ``simulate`` — one benchmark on one registered core;
* ``sweep`` — a benchmarks x cores grid of simulations;
* ``faults`` — a small transient-fault campaign (serial inside the
  worker; the *service* supplies the process-level hardening).

Params are normalized and validated at submit time
(:func:`normalize_params`), so the content-addressed request key treats
``{"benchmark": "gcc"}`` and ``{"benchmark": "gcc", "scale": 0.2}`` as
the same request, and a typo'd core name is rejected at the API edge
instead of poisoning a worker.

Result payloads contain only deterministic fields (no wall-clock, no
host state): re-running a job after any crash reproduces the identical
payload, which is the property the chaos harness pins bit-for-bit.

Execution follows the campaign pattern: the supervisor prewarms
phase-one artifacts into a module-global state before the hardened
workers fork, so workers inherit warm caches copy-on-write; a worker
that finds no state (or a different job mix) builds its own lazily from
the persistent artifact cache.
"""

from __future__ import annotations

import hashlib
import tempfile
from typing import Any, Dict, List, Mapping, Optional, Tuple

from .chaos import KILL_WORKER, chaos_point
from .jobstore import JOB_KINDS, ServiceError
from .telemetry import ProgressPublisher

#: service-job defaults: small enough that a mixed batch settles in
#: seconds, large enough to exercise every pipeline structure
DEFAULT_SCALE = 0.2
DEFAULT_MAX_INSTRUCTIONS = 60_000
DEFAULT_WIDTH = 8
DEFAULT_FAULT_RUNS = 4


def _core_table():
    from ..validate.runner import CORE_FACTORIES

    return CORE_FACTORIES


def _known_benchmarks() -> Tuple[str, ...]:
    from ..workloads.profiles import ALL_BENCHMARKS

    return ALL_BENCHMARKS


def _as_name_list(value: Any, field: str) -> List[str]:
    if isinstance(value, str):
        names = [part.strip() for part in value.split(",") if part.strip()]
    elif isinstance(value, (list, tuple)):
        names = [str(part).strip() for part in value if str(part).strip()]
    else:
        raise ServiceError(
            f"{field} must be a name list (or comma-separated string), "
            f"got {value!r}"
        )
    if not names:
        raise ServiceError(f"{field} must name at least one entry")
    return names


def _check_benchmarks(names: List[str]) -> List[str]:
    known = _known_benchmarks()
    unknown = [name for name in names if name not in known]
    if unknown:
        raise ServiceError(
            f"unknown benchmark(s) {unknown}; choose from {sorted(known)}"
        )
    return names


def _check_cores(names: List[str]) -> List[str]:
    table = _core_table()
    unknown = [name for name in names if name not in table]
    if unknown:
        raise ServiceError(
            f"unknown core(s) {unknown}; choose from {sorted(table)}"
        )
    return names


def _number(params: Mapping, field: str, default, kind=float):
    value = params.get(field, default)
    try:
        value = kind(value)
    except (TypeError, ValueError):
        raise ServiceError(
            f"{field} must be a {kind.__name__}, got {value!r}"
        ) from None
    if value <= 0:
        raise ServiceError(f"{field} must be positive, got {value!r}")
    return value


def normalize_params(kind: str, params: Mapping[str, Any]) -> Dict[str, Any]:
    """Validated canonical params with defaults applied.

    Normalizing *before* hashing is what makes dedup semantic: requests
    that mean the same run coalesce even when one spells out a default
    the other omitted.
    """
    if kind not in JOB_KINDS:
        raise ServiceError(
            f"unknown job kind {kind!r}; choose from {', '.join(JOB_KINDS)}"
        )
    params = dict(params)
    known = {
        "simulate": {"benchmark", "core", "scale", "width",
                     "max_instructions"},
        "sweep": {"benchmarks", "cores", "scale", "width",
                  "max_instructions"},
        "faults": {"benchmarks", "cores", "structures", "runs", "seed",
                   "scale"},
    }[kind]
    unknown = sorted(set(params) - known)
    if unknown:
        raise ServiceError(
            f"unknown {kind} param(s) {unknown}; known: {sorted(known)}"
        )
    out: Dict[str, Any] = {}
    if kind == "simulate":
        if "benchmark" not in params or "core" not in params:
            raise ServiceError(
                "simulate needs 'benchmark' and 'core' params"
            )
        out["benchmark"] = _check_benchmarks([str(params["benchmark"])])[0]
        out["core"] = _check_cores([str(params["core"])])[0]
        out["scale"] = _number(params, "scale", DEFAULT_SCALE)
        out["width"] = _number(params, "width", DEFAULT_WIDTH, int)
        out["max_instructions"] = _number(
            params, "max_instructions", DEFAULT_MAX_INSTRUCTIONS, int
        )
    elif kind == "sweep":
        if "benchmarks" not in params:
            raise ServiceError("sweep needs a 'benchmarks' param")
        out["benchmarks"] = _check_benchmarks(
            _as_name_list(params["benchmarks"], "benchmarks")
        )
        cores = params.get("cores")
        if cores is None:
            out["cores"] = sorted(_core_table())
        else:
            out["cores"] = _check_cores(_as_name_list(cores, "cores"))
        out["scale"] = _number(params, "scale", DEFAULT_SCALE)
        out["width"] = _number(params, "width", DEFAULT_WIDTH, int)
        out["max_instructions"] = _number(
            params, "max_instructions", DEFAULT_MAX_INSTRUCTIONS, int
        )
    else:  # faults
        if "benchmarks" not in params:
            raise ServiceError("faults needs a 'benchmarks' param")
        out["benchmarks"] = _check_benchmarks(
            _as_name_list(params["benchmarks"], "benchmarks")
        )
        cores = params.get("cores", ["braid", "ooo"])
        out["cores"] = _check_cores(_as_name_list(cores, "cores"))
        structures = params.get("structures")
        if structures is not None:
            out["structures"] = _as_name_list(structures, "structures")
        out["runs"] = _number(params, "runs", DEFAULT_FAULT_RUNS, int)
        seed = params.get("seed", 0)
        try:
            out["seed"] = int(seed)
        except (TypeError, ValueError):
            raise ServiceError(f"seed must be an integer, got {seed!r}")
        out["scale"] = _number(params, "scale", DEFAULT_SCALE)
    return out


# ----------------------------------------------------------------- execution
#: per-process executor state: contexts keyed by (scale, max_instructions);
#: forked hardened workers inherit the parent's warm copy
_EXEC_STATE: Optional[Dict] = None


def _context_for(scale: float, max_instructions: int):
    """A warm ExperimentContext for one (scale, cap) pair, cached."""
    global _EXEC_STATE
    if _EXEC_STATE is None:
        _EXEC_STATE = {"contexts": {}}
    key = (scale, max_instructions)
    context = _EXEC_STATE["contexts"].get(key)
    if context is None:
        from ..harness.context import ExperimentContext
        from ..workloads.profiles import ALL_BENCHMARKS

        context = ExperimentContext(
            benchmarks=ALL_BENCHMARKS,
            scale=scale,
            max_instructions=max_instructions,
            jobs=1,
        )
        _EXEC_STATE["contexts"][key] = context
    return context


def prepare(records) -> None:
    """Parent-side prewarm: materialize every workload a batch needs.

    Run before the hardened workers fork so they inherit the prepared
    programs/compilations copy-on-write, exactly like the campaign
    runner's ``_CAMPAIGN_STATE``.

    Prewarm is advisory: a record it cannot warm (malformed params that
    slipped past submit-time validation) is skipped here and produces
    its real, classified error inside the hardened worker — a bad job
    must fail *as a job*, never take the supervisor down.
    """
    table = _core_table()
    for record in records:
        try:
            params = record.params
            if record.kind == "simulate":
                cells = [(params["benchmark"], params["core"])]
                scale = params["scale"]
                cap = params["max_instructions"]
            elif record.kind == "sweep":
                cells = [
                    (bench, core)
                    for bench in params["benchmarks"]
                    for core in params["cores"]
                ]
                scale = params["scale"]
                cap = params["max_instructions"]
            else:  # faults: the campaign warms through the same context
                cells = [
                    (bench, core)
                    for bench in params["benchmarks"]
                    for core in params["cores"]
                ]
                scale = params["scale"]
                cap = DEFAULT_MAX_INSTRUCTIONS
            context = _context_for(scale, cap)
            for bench, core in cells:
                _, braided = table[core]
                context.workload(bench, braided=braided)
        except Exception:
            continue


def _simulate_cell(
    context, benchmark: str, core: str, width: int, progress=None
) -> Dict[str, Any]:
    factory, braided = _core_table()[core]
    config = factory(width=width)
    result = context.run(benchmark, config, braided=braided,
                         progress=progress)
    if progress is not None:
        # Cache hits skip the simulation loop entirely; force one final
        # heartbeat either way so the cell always reports completion.
        progress.publish(
            result.instructions, result.instructions, result.cycles,
            force=True,
        )
    return {
        "benchmark": benchmark,
        "core": core,
        "machine": config.name,
        "width": width,
        "instructions": result.instructions,
        "cycles": result.cycles,
        "ipc": round(result.ipc, 6),
        "fidelity": result.fidelity,
    }


def _run_faults(params: Mapping[str, Any]) -> Dict[str, Any]:
    from ..faults import CampaignSpec, run_campaign
    from pathlib import Path

    context = _context_for(params["scale"], DEFAULT_MAX_INSTRUCTIONS)
    spec = CampaignSpec(
        benchmarks=tuple(params["benchmarks"]),
        cores=tuple(params["cores"]),
        structures=(
            tuple(params["structures"]) if "structures" in params else None
        ),
        runs=params["runs"],
        seed=params["seed"],
        scale=params["scale"],
        jobs=1,
    )
    # The campaign journals into a throwaway dir: the *service* journal
    # is the durability layer here, and a retried job must not resume
    # from a half-written inner journal.
    with tempfile.TemporaryDirectory(prefix="repro-service-faults-") as tmp:
        report = run_campaign(
            context, spec, journal_path=Path(tmp) / "journal.jsonl",
        )
    outcomes: Dict[str, int] = {}
    for result in report.results:
        name = result.outcome.value
        outcomes[name] = outcomes.get(name, 0) + 1
    rendered = report.render()
    return {
        "classified": len(report.results),
        "quarantined": len(report.quarantined),
        "outcomes": dict(sorted(outcomes.items())),
        "report_sha256": hashlib.sha256(
            rendered.encode("utf-8")
        ).hexdigest(),
    }


def execute_job(payload: Tuple[str, str, Mapping[str, Any]]) -> Any:
    """Worker-side entry: one job, start to JSON result.

    ``payload`` is ``(job_id, kind, params)``; the chaos kill-worker
    point fires first, so an injected worker death looks exactly like an
    OOM kill landing before any work happened.

    When the supervisor has armed ``REPRO_PROGRESS_DIR``, simulation
    instructions stream per-job heartbeats through the resumable run
    seam; heartbeats never change the result payload (pure telemetry,
    written to a side file), so chaos bit-identity is unaffected.
    """
    job_id, kind, params = payload
    chaos_point(KILL_WORKER, job_id)
    progress = ProgressPublisher.from_env(job_id)
    if kind == "simulate":
        context = _context_for(params["scale"], params["max_instructions"])
        if progress is not None:
            progress.start_cell(
                f"{params['benchmark']}/{params['core']}", 0, 1
            )
        return _simulate_cell(
            context, params["benchmark"], params["core"], params["width"],
            progress=progress,
        )
    if kind == "sweep":
        context = _context_for(params["scale"], params["max_instructions"])
        cells = [
            (bench, core)
            for bench in params["benchmarks"]
            for core in params["cores"]
        ]
        results = []
        for done, (bench, core) in enumerate(cells):
            if progress is not None:
                progress.start_cell(f"{bench}/{core}", done, len(cells))
            results.append(
                _simulate_cell(context, bench, core, params["width"],
                               progress=progress)
            )
        return {"cells": results}
    if kind == "faults":
        if progress is not None:
            # Fault campaigns run many tiny inner sims; heartbeat once at
            # start so the watchdog can at least date the attempt.
            progress.start_cell("campaign", 0, 1)
            progress.publish(0, 0, 0, force=True)
        return _run_faults(params)
    raise ServiceError(f"unknown job kind {kind!r}")
