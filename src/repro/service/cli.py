"""Service command line: ``serve``, ``submit``, ``status``.

Routed from ``python -m repro.harness`` so operators keep one entry
point::

    python -m repro.harness submit simulate benchmark=gcc core=braid
    python -m repro.harness submit sweep benchmarks=gcc,mcf --client ci
    python -m repro.harness serve --jobs 4 --drain-when-idle
    python -m repro.harness status
    python -m repro.harness status --job j000001-1a2b3c4d

``submit`` normalizes and validates params at the edge, then durably
journals the request; an identical request coalesces onto the existing
job and the CLI says so.  ``serve`` runs a supervisor against the store
(SIGTERM drains gracefully; SIGKILL is recovered from the journal on the
next start).  ``status`` opens the store read-only — safe to run while a
supervisor is live.

Param values on the ``submit`` line are parsed as JSON when they look
like it (``runs=8``, ``scale=0.1``) and kept as strings otherwise
(``benchmark=gcc``); comma-separated strings are the list syntax for
``benchmarks=``/``cores=``/``structures=``.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional

from .jobstore import (
    JobRequest,
    JobStore,
    QuotaExceeded,
    ServiceError,
    default_store_dir,
    quota_from_env,
)
from .retry import RetryPolicy


def _parse_params(pairs: List[str], parser) -> Dict[str, Any]:
    params: Dict[str, Any] = {}
    for pair in pairs:
        if "=" not in pair:
            parser.error(
                f"params must be key=value pairs, got {pair!r}"
            )
        key, _, raw = pair.partition("=")
        key = key.strip()
        if not key:
            parser.error(f"params must be key=value pairs, got {pair!r}")
        try:
            value: Any = json.loads(raw)
        except json.JSONDecodeError:
            value = raw
        params[key] = value
    return params


def _store(args, readonly: bool = False) -> JobStore:
    root = Path(args.store) if args.store else default_store_dir()
    quota = args.quota if getattr(args, "quota", None) else quota_from_env()
    return JobStore(root, quota=quota, readonly=readonly)


def _cmd_submit(args, parser) -> int:
    from .jobs import normalize_params

    params = _parse_params(args.params, parser)
    try:
        params = normalize_params(args.kind, params)
        store = _store(args)
    except ServiceError as error:
        parser.error(str(error))
    try:
        job_id, coalesced = store.submit(
            JobRequest(kind=args.kind, params=params, client=args.client)
        )
    except QuotaExceeded as error:
        print(f"rejected: {error}", file=sys.stderr)
        return 1
    except ServiceError as error:
        parser.error(str(error))
    finally:
        store.close()
    verb = "coalesced onto" if coalesced else "queued as"
    print(f"{verb} {job_id}")
    return 0


def _cmd_serve(args, parser) -> int:
    from .supervisor import ServiceConfig, serve

    policy = RetryPolicy(
        max_attempts=args.max_attempts,
        backoff=args.backoff,
        deadline=args.timeout,
    )
    config = ServiceConfig(
        jobs=args.jobs,
        batch=args.batch,
        poll=args.poll,
        drain_when_idle=args.drain_when_idle,
        policy=policy,
    )
    try:
        store = _store(args)
    except ServiceError as error:
        parser.error(str(error))
    try:
        summary = serve(store, config, handle_signals=True)
    finally:
        store.close()
    counters = summary["counters"]
    print(
        f"served {summary['rounds']} round(s): "
        f"{counters['completed']} done, {counters['failed']} failed, "
        f"{counters['coalesced']} coalesced, {counters['active']} pending"
    )
    recovery = summary["recovery"]
    if recovery["interrupted"] or recovery["lost_results"]:
        print(
            f"recovered {len(recovery['interrupted'])} interrupted job(s), "
            f"healed {len(recovery['lost_results'])} lost result(s)"
        )
    return 0


def _cmd_status(args, parser) -> int:
    try:
        store = _store(args, readonly=True)
    except ServiceError as error:
        parser.error(str(error))
    try:
        if args.job:
            try:
                job = store.job(args.job)
            except ServiceError as error:
                parser.error(str(error))
            print(json.dumps(job.summary(), indent=1, sort_keys=True))
            if job.status == "done":
                result = store.result(args.job)
                if result is None:
                    print("result: unreadable (will heal on next serve)",
                          file=sys.stderr)
                else:
                    print(json.dumps(result, indent=1, sort_keys=True))
            return 0
        counters = store.counters()
        print(f"store: {store.root}")
        for name in sorted(counters):
            print(f"  {name:16s} {counters[name]}")
        for job in sorted(store.jobs.values(), key=lambda j: j.seq):
            line = (
                f"  {job.job_id}  {job.status:8s} {job.kind:9s} "
                f"client={job.client}"
            )
            if job.coalesced:
                line += f" coalesced={job.coalesced}"
            if job.error:
                line += f"  [{job.error}]"
            print(line)
        return 0
    finally:
        store.close()


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness",
        description="Durable simulation service: submit, serve, inspect.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_store(p):
        p.add_argument(
            "--store", default=None, metavar="DIR",
            help="job-store directory (default: REPRO_SERVICE_DIR or "
                 "~/.cache/repro/service)",
        )

    submit = sub.add_parser(
        "submit", help="durably enqueue one job (dedups identical requests)",
    )
    add_store(submit)
    submit.add_argument(
        "kind", choices=("simulate", "sweep", "faults"),
        help="what to run",
    )
    submit.add_argument(
        "params", nargs="*", metavar="KEY=VALUE",
        help="job params, e.g. benchmark=gcc core=braid scale=0.2",
    )
    submit.add_argument(
        "--client", default="default", metavar="NAME",
        help="submitting client (quotas and fair-share are per client)",
    )
    submit.add_argument(
        "--quota", type=int, default=None, metavar="N",
        help="per-client active-job quota (overrides REPRO_SERVICE_QUOTA)",
    )

    serve = sub.add_parser(
        "serve", help="run a supervisor against the store",
    )
    add_store(serve)
    serve.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="hardened worker processes (default 1: serial in-process)",
    )
    serve.add_argument(
        "--batch", type=int, default=8, metavar="N",
        help="jobs claimed per dispatch round (default 8)",
    )
    serve.add_argument(
        "--poll", type=float, default=0.5, metavar="SECONDS",
        help="idle poll interval while watching for submissions",
    )
    serve.add_argument(
        "--drain-when-idle", action="store_true",
        help="exit when the queue is empty instead of watching (batch mode)",
    )
    serve.add_argument(
        "--timeout", type=float, default=120.0, metavar="SECONDS",
        help="per-job wall-clock deadline before the watchdog kills the "
             "worker (default 120)",
    )
    serve.add_argument(
        "--max-attempts", type=int, default=3, metavar="N",
        help="attempts per job before it is retired (default 3)",
    )
    serve.add_argument(
        "--backoff", type=float, default=0.5, metavar="SECONDS",
        help="base retry backoff, doubled per attempt with deterministic "
             "jitter (default 0.5)",
    )

    status = sub.add_parser(
        "status", help="inspect the store read-only (safe while serving)",
    )
    add_store(status)
    status.add_argument(
        "--job", default=None, metavar="ID",
        help="show one job's record (and its result when done)",
    )

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    handler = {
        "submit": _cmd_submit,
        "serve": _cmd_serve,
        "status": _cmd_status,
    }[args.command]
    return handler(args, parser)


if __name__ == "__main__":
    sys.exit(main())
