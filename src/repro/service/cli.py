"""Service command line: ``serve``, ``submit``, ``status``, ``events``,
``metrics``.

Routed from ``python -m repro.harness`` so operators keep one entry
point::

    python -m repro.harness submit simulate benchmark=gcc core=braid
    python -m repro.harness submit sweep benchmarks=gcc,mcf --client ci
    python -m repro.harness serve --jobs 4 --drain-when-idle
    python -m repro.harness status
    python -m repro.harness status --job j000001-1a2b3c4d --json
    python -m repro.harness status --follow
    python -m repro.harness events j000001-1a2b3c4d
    python -m repro.harness metrics --json

``submit`` normalizes and validates params at the edge, then durably
journals the request; an identical request coalesces onto the existing
job and the CLI says so.  ``serve`` runs a supervisor against the store
(SIGTERM drains gracefully; SIGKILL is recovered from the journal on the
next start).  ``status`` opens the store read-only — safe to run while a
supervisor is live; ``--follow`` tails the journal incrementally (a
:class:`~repro.service.journal.JournalFollower`, not a full re-read per
tick) and renders a live job table with worker progress bars.
``events`` prints a job's timestamped timeline and the durations it
implies; ``metrics`` prints the supervisor's Prometheus exposition (or
renders one on the fly from the store when no supervisor has published).

Param values on the ``submit`` line are parsed as JSON when they look
like it (``runs=8``, ``scale=0.1``) and kept as strings otherwise
(``benchmark=gcc``); comma-separated strings are the list syntax for
``benchmarks=``/``cores=``/``structures=``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Any, Dict, List, Optional

from .jobstore import (
    RUNNING,
    JobRecord,
    JobRequest,
    JobStore,
    QuotaExceeded,
    ServiceError,
    default_store_dir,
    quota_from_env,
)
from .retry import RetryPolicy
from .telemetry import describe_progress, read_health, read_progress


def _parse_params(pairs: List[str], parser) -> Dict[str, Any]:
    params: Dict[str, Any] = {}
    for pair in pairs:
        if "=" not in pair:
            parser.error(
                f"params must be key=value pairs, got {pair!r}"
            )
        key, _, raw = pair.partition("=")
        key = key.strip()
        if not key:
            parser.error(f"params must be key=value pairs, got {pair!r}")
        try:
            value: Any = json.loads(raw)
        except json.JSONDecodeError:
            value = raw
        params[key] = value
    return params


def _store(args, readonly: bool = False) -> JobStore:
    root = Path(args.store) if args.store else default_store_dir()
    quota = args.quota if getattr(args, "quota", None) else quota_from_env()
    return JobStore(root, quota=quota, readonly=readonly)


def _cmd_submit(args, parser) -> int:
    from .jobs import normalize_params

    params = _parse_params(args.params, parser)
    try:
        params = normalize_params(args.kind, params)
        store = _store(args)
    except ServiceError as error:
        parser.error(str(error))
    try:
        job_id, coalesced = store.submit(
            JobRequest(kind=args.kind, params=params, client=args.client)
        )
    except QuotaExceeded as error:
        print(f"rejected: {error}", file=sys.stderr)
        return 1
    except ServiceError as error:
        parser.error(str(error))
    finally:
        store.close()
    verb = "coalesced onto" if coalesced else "queued as"
    print(f"{verb} {job_id}")
    return 0


def _cmd_serve(args, parser) -> int:
    from .supervisor import ServiceConfig, serve

    policy = RetryPolicy(
        max_attempts=args.max_attempts,
        backoff=args.backoff,
        deadline=args.timeout,
    )
    config = ServiceConfig(
        jobs=args.jobs,
        batch=args.batch,
        poll=args.poll,
        drain_when_idle=args.drain_when_idle,
        policy=policy,
        heartbeat=args.heartbeat,
        hang_grace=args.hang_grace,
    )
    try:
        store = _store(args)
    except ServiceError as error:
        parser.error(str(error))
    try:
        summary = serve(store, config, handle_signals=True)
    finally:
        store.close()
    counters = summary["counters"]
    print(
        f"served {summary['rounds']} round(s): "
        f"{counters['completed']} done, {counters['failed']} failed, "
        f"{counters['coalesced']} coalesced, {counters['active']} pending"
    )
    recovery = summary["recovery"]
    if recovery["interrupted"] or recovery["lost_results"]:
        print(
            f"recovered {len(recovery['interrupted'])} interrupted job(s), "
            f"healed {len(recovery['lost_results'])} lost result(s)"
        )
    return 0


def _job_line(job: JobRecord, progress_dir: Optional[Path] = None) -> str:
    line = (
        f"  {job.job_id}  {job.status:8s} {job.kind:9s} "
        f"client={job.client}"
    )
    if job.coalesced:
        line += f" coalesced={job.coalesced}"
    if job.status == RUNNING and progress_dir is not None:
        beat = read_progress(progress_dir, job.job_id)
        if beat is not None:
            line += f"  {_progress_bar(beat)}"
    if job.error:
        line += f"  [{job.error}]"
    return line


def _progress_bar(beat: Dict[str, Any], width: int = 20) -> str:
    """``[#####...............]  23% eta 4s`` from one heartbeat."""
    total = int(beat.get("instructions_total") or 0)
    done = int(beat.get("instructions") or 0)
    cells_total = max(1, int(beat.get("cells_total") or 1))
    cells_done = int(beat.get("cells_done") or 0)
    cell_frac = (done / total) if total > 0 else 0.0
    frac = max(0.0, min(1.0, (cells_done + cell_frac) / cells_total))
    filled = int(round(frac * width))
    bar = "#" * filled + "." * (width - filled)
    out = f"[{bar}] {frac * 100:3.0f}%"
    eta = beat.get("eta_seconds")
    if isinstance(eta, (int, float)):
        out += f" eta {eta:.0f}s"
    return out


def _status_document(store: JobStore) -> Dict[str, Any]:
    """The machine-readable ``status --json`` payload."""
    jobs = {}
    for job in sorted(store.jobs.values(), key=lambda j: j.seq):
        summary = job.summary()
        if job.status == RUNNING:
            summary["progress"] = store.progress(job.job_id)
        jobs[job.job_id] = summary
    return {
        "store": str(store.root),
        "counters": store.counters(),
        "jobs": jobs,
        "health": read_health(store.health_path),
    }


def _cmd_status(args, parser) -> int:
    try:
        store = _store(args, readonly=True)
    except ServiceError as error:
        parser.error(str(error))
    try:
        if args.follow:
            return _follow_status(args, store)
        if args.job:
            try:
                job = store.job(args.job)
            except ServiceError as error:
                parser.error(str(error))
            doc = job.summary()
            if job.status == RUNNING:
                doc["progress"] = store.progress(job.job_id)
            result = store.result(args.job) if job.status == "done" else None
            if args.json:
                doc["timeline"] = {
                    key: value
                    for key, value in store.timeline(args.job).items()
                    if key != "events"
                }
                doc["result"] = result
                print(json.dumps(doc, indent=1, sort_keys=True))
                return 0
            print(json.dumps(doc, indent=1, sort_keys=True))
            if job.status == "done":
                if result is None:
                    print("result: unreadable (will heal on next serve)",
                          file=sys.stderr)
                else:
                    print(json.dumps(result, indent=1, sort_keys=True))
            return 0
        if args.json:
            print(json.dumps(_status_document(store), indent=1,
                             sort_keys=True))
            return 0
        counters = store.counters()
        print(f"store: {store.root}")
        for name in sorted(counters):
            print(f"  {name:16s} {counters[name]}")
        for job in sorted(store.jobs.values(), key=lambda j: j.seq):
            print(_job_line(job, store.progress_dir))
        return 0
    finally:
        store.close()


class _JournalView:
    """Incremental fold over followed journal events.

    Borrows :meth:`JobStore._apply` verbatim — the one fold in the
    codebase — so the live ``--follow`` table cannot drift from store
    semantics, while each refresh costs only the *new* bytes the
    :class:`~repro.service.journal.JournalFollower` delivers.
    """

    _apply = JobStore._apply

    def __init__(self) -> None:
        self.jobs: Dict[str, JobRecord] = {}
        self._by_key: Dict[str, str] = {}
        self._clients: List[str] = []
        self._counters: Dict[str, int] = {
            "submitted": 0,
            "coalesced": 0,
            "completed": 0,
            "failed": 0,
            "requeued": 0,
            "recovered": 0,
            "orphaned_events": 0,
        }
        self._seq = 0


def _render_follow(view: _JournalView, progress_dir: Path,
                   health_path: Path) -> str:
    lines = []
    health = read_health(health_path)
    if health is None:
        lines.append("supervisor: no health file yet")
    else:
        state = "draining" if health.get("draining") else "serving"
        lines.append(
            f"supervisor: pid {health.get('pid')} {state}, "
            f"round {health.get('round')}, "
            f"up {health.get('uptime_seconds', 0):.1f}s"
        )
    by_status: Dict[str, int] = {}
    for job in view.jobs.values():
        by_status[job.status] = by_status.get(job.status, 0) + 1
    lines.append(
        "jobs: " + ", ".join(
            f"{by_status.get(name, 0)} {name}"
            for name in ("queued", "running", "done", "failed")
        )
    )
    for job in sorted(view.jobs.values(), key=lambda j: j.seq):
        lines.append(_job_line(job, progress_dir))
    return "\n".join(lines)


def _follow_status(args, store: JobStore) -> int:
    """Live job table: incremental journal tail + heartbeat files."""
    follower = store.journal.follow()
    progress_dir = store.progress_dir
    health_path = store.health_path
    store.close()
    view = _JournalView()
    deadline = (
        time.monotonic() + args.follow_for
        if args.follow_for is not None else None
    )
    tty = sys.stdout.isatty()
    try:
        while True:
            for record in follower.poll():
                view._apply(record)
            frame = _render_follow(view, progress_dir, health_path)
            if tty:
                sys.stdout.write("\x1b[2J\x1b[H")
            else:
                frame += "\n---"
            print(frame)
            sys.stdout.flush()
            if deadline is not None and time.monotonic() >= deadline:
                return 0
            time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0


def _format_event(record: Dict[str, Any]) -> str:
    ts = record.get("ts")
    if isinstance(ts, (int, float)):
        stamp = time.strftime("%H:%M:%S", time.localtime(ts))
        stamp += f".{int((ts % 1) * 1000):03d}"
    else:
        stamp = "--:--:--.---"
    name = record.get("event", "?")
    detail = ""
    if name == "submit":
        detail = f"kind={record.get('kind')} client={record.get('client')}"
    elif name == "start":
        detail = f"attempt={record.get('attempt')}"
    elif name == "done":
        detail = f"attempts={record.get('attempts')}"
    elif name in ("failed", "requeue"):
        detail = record.get("error") or ""
    elif name == "recover":
        detail = record.get("reason") or ""
    elif name == "coalesce":
        detail = f"client={record.get('client')}"
    elif name == "drain":
        detail = f"graceful={record.get('graceful')}"
    job = record.get("job", "")
    return f"{stamp}  {name:8s} {job}  {detail}".rstrip()


def _cmd_events(args, parser) -> int:
    try:
        store = _store(args, readonly=True)
    except ServiceError as error:
        parser.error(str(error))
    try:
        if args.job is None:
            events = [
                record for record in store.journal.records
                if "event" in record
            ]
            if args.json:
                print(json.dumps(events, indent=1, sort_keys=True))
                return 0
            for record in events:
                print(_format_event(record))
            return 0
        try:
            timeline = store.timeline(args.job)
        except ServiceError as error:
            parser.error(str(error))
        if args.json:
            print(json.dumps(timeline, indent=1, sort_keys=True))
            return 0
        print(f"timeline for {args.job}:")
        for record in timeline["events"]:
            print(f"  {_format_event(record)}")
        if timeline["queue_wait"] is not None:
            print(f"queue wait: {timeline['queue_wait']:.3f}s")
        if timeline["run_time"] is not None:
            print(f"run time:   {timeline['run_time']:.3f}s")
        if timeline["retry_latencies"]:
            gaps = ", ".join(
                f"{gap:.3f}s" for gap in timeline["retry_latencies"]
            )
            print(f"retry latencies: {gaps}")
        beat = store.progress(args.job)
        if beat is not None:
            print(f"progress: {describe_progress(beat)}")
        return 0
    finally:
        store.close()


def _cmd_metrics(args, parser) -> int:
    from ..obs.metrics import parse_prometheus, prometheus_errors

    try:
        store = _store(args, readonly=True)
    except ServiceError as error:
        parser.error(str(error))
    try:
        live = False
        try:
            text = store.metrics_path.read_text(encoding="utf-8")
        except OSError:
            # No supervisor has published yet: render one on the fly so
            # the command is useful against a cold store.
            from ..obs.metrics import MetricsRegistry
            from .telemetry import latency_histograms

            registry = MetricsRegistry()
            store.publish_metrics(registry)
            registry.histograms.update(
                latency_histograms(store.journal.records)
            )
            text = registry.render_prometheus()
            live = True
        errors = prometheus_errors(text)
        for error in errors:
            print(f"invalid exposition: {error}", file=sys.stderr)
        if args.json:
            doc = {
                "source": "rendered" if live else str(store.metrics_path),
                "metrics": parse_prometheus(text) if not errors else None,
                "health": read_health(store.health_path),
            }
            print(json.dumps(doc, indent=1, sort_keys=True))
        else:
            sys.stdout.write(text)
        return 1 if errors else 0
    finally:
        store.close()


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness",
        description="Durable simulation service: submit, serve, inspect.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_store(p):
        p.add_argument(
            "--store", default=None, metavar="DIR",
            help="job-store directory (default: REPRO_SERVICE_DIR or "
                 "~/.cache/repro/service)",
        )

    submit = sub.add_parser(
        "submit", help="durably enqueue one job (dedups identical requests)",
    )
    add_store(submit)
    submit.add_argument(
        "kind", choices=("simulate", "sweep", "faults"),
        help="what to run",
    )
    submit.add_argument(
        "params", nargs="*", metavar="KEY=VALUE",
        help="job params, e.g. benchmark=gcc core=braid scale=0.2",
    )
    submit.add_argument(
        "--client", default="default", metavar="NAME",
        help="submitting client (quotas and fair-share are per client)",
    )
    submit.add_argument(
        "--quota", type=int, default=None, metavar="N",
        help="per-client active-job quota (overrides REPRO_SERVICE_QUOTA)",
    )

    serve = sub.add_parser(
        "serve", help="run a supervisor against the store",
    )
    add_store(serve)
    serve.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="hardened worker processes (default 1: serial in-process)",
    )
    serve.add_argument(
        "--batch", type=int, default=8, metavar="N",
        help="jobs claimed per dispatch round (default 8)",
    )
    serve.add_argument(
        "--poll", type=float, default=0.5, metavar="SECONDS",
        help="idle poll interval while watching for submissions",
    )
    serve.add_argument(
        "--drain-when-idle", action="store_true",
        help="exit when the queue is empty instead of watching (batch mode)",
    )
    serve.add_argument(
        "--timeout", type=float, default=120.0, metavar="SECONDS",
        help="per-job wall-clock deadline before the watchdog kills the "
             "worker (default 120)",
    )
    serve.add_argument(
        "--max-attempts", type=int, default=3, metavar="N",
        help="attempts per job before it is retired (default 3)",
    )
    serve.add_argument(
        "--backoff", type=float, default=0.5, metavar="SECONDS",
        help="base retry backoff, doubled per attempt with deterministic "
             "jitter (default 0.5)",
    )
    serve.add_argument(
        "--heartbeat", type=float, default=0.25, metavar="SECONDS",
        help="worker progress-heartbeat interval; 0 disables heartbeats "
             "(default 0.25)",
    )
    serve.add_argument(
        "--hang-grace", type=float, default=None, metavar="SECONDS",
        help="heartbeat age past which a deadline miss counts as hung "
             "rather than slow-but-progressing (default: 8x heartbeat, "
             "min 2s)",
    )

    status = sub.add_parser(
        "status", help="inspect the store read-only (safe while serving)",
    )
    add_store(status)
    status.add_argument(
        "--job", default=None, metavar="ID",
        help="show one job's record (and its result when done)",
    )
    status.add_argument(
        "--json", action="store_true",
        help="machine-readable output (summary, per-job progress, health)",
    )
    status.add_argument(
        "--follow", action="store_true",
        help="live job table: tail the journal incrementally and render "
             "worker progress bars until interrupted",
    )
    status.add_argument(
        "--interval", type=float, default=0.25, metavar="SECONDS",
        help="refresh interval for --follow (default 0.25)",
    )
    status.add_argument(
        "--follow-for", type=float, default=None, metavar="SECONDS",
        help="stop following after this many seconds (default: forever)",
    )

    events = sub.add_parser(
        "events",
        help="timestamped journal timeline (one job, or the whole store)",
    )
    add_store(events)
    events.add_argument(
        "job", nargs="?", default=None, metavar="ID",
        help="job to show (with derived queue-wait/run-time/retry "
             "durations); omit for the full event stream",
    )
    events.add_argument(
        "--json", action="store_true",
        help="machine-readable timeline",
    )

    metrics = sub.add_parser(
        "metrics",
        help="Prometheus exposition published by the supervisor "
             "(validated; rendered live when no supervisor has run)",
    )
    add_store(metrics)
    metrics.add_argument(
        "--json", action="store_true",
        help="parsed samples plus the supervisor health file",
    )

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    handler = {
        "submit": _cmd_submit,
        "serve": _cmd_serve,
        "status": _cmd_status,
        "events": _cmd_events,
        "metrics": _cmd_metrics,
    }[args.command]
    return handler(args, parser)


if __name__ == "__main__":
    sys.exit(main())
