"""Deterministic infrastructure-fault injection for the service.

:mod:`repro.faults` proves the *microarchitecture* recovers from bit
flips; this module proves the *service* recovers from infrastructure
death.  A :class:`ChaosSpec` names exact fault points — "SIGKILL the
worker running job X on its first N executions", "fail the result-store
write for job Y once", "SIGKILL the supervisor after its K-th settled
job" — and the service consults :func:`chaos_point` at those points.

Determinism comes from two pieces:

* the spec itself is explicit (the chaos *harness* derives it from a
  seed, the service just obeys it), and
* each budgeted occurrence is consumed through an ``O_EXCL`` mark file
  under the store, so the budget holds across worker forks, supervisor
  restarts, and concurrent processes — job X dies exactly N times no
  matter how the scheduler interleaves.

The hooks are armed only by the ``REPRO_CHAOS`` environment variable
(plus ``REPRO_CHAOS_DIR`` for the mark files); when it is unset every
chaos point is a single dictionary lookup away from a no-op, so
production runs pay nothing.

Spec grammar (``;``-separated clauses)::

    kill-worker:<job_id>@<times>     SIGKILL the worker at job start
    fail-write:<job_id>@<times>      OSError(ENOSPC) publishing the result
    kill-supervisor:<k>              SIGKILL self after k settled jobs

Example::

    REPRO_CHAOS="kill-worker:j000002-5f3a@1;kill-supervisor:3"
"""

from __future__ import annotations

import errno
import os
import signal
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional

ENV_CHAOS = "REPRO_CHAOS"
ENV_CHAOS_DIR = "REPRO_CHAOS_DIR"

KILL_WORKER = "kill-worker"
FAIL_WRITE = "fail-write"
KILL_SUPERVISOR = "kill-supervisor"


class ChaosSpecError(ValueError):
    """An unparseable ``REPRO_CHAOS`` spec."""


@dataclass(frozen=True)
class ChaosSpec:
    """Parsed fault plan: which points fire, and how many times."""

    #: job_id -> number of executions that die at the kill-worker point
    kill_worker: Dict[str, int] = field(default_factory=dict)
    #: job_id -> number of result publications that raise ENOSPC
    fail_write: Dict[str, int] = field(default_factory=dict)
    #: SIGKILL the supervisor once, after this many settled jobs
    kill_supervisor_after: Optional[int] = None

    @classmethod
    def parse(cls, spec: str) -> "ChaosSpec":
        kill_worker: Dict[str, int] = {}
        fail_write: Dict[str, int] = {}
        kill_supervisor_after: Optional[int] = None
        for clause in spec.split(";"):
            clause = clause.strip()
            if not clause:
                continue
            if ":" not in clause:
                raise ChaosSpecError(
                    f"chaos clause {clause!r} has no ':'; "
                    f"expected point:target"
                )
            point, target = clause.split(":", 1)
            point = point.strip()
            target = target.strip()
            if point in (KILL_WORKER, FAIL_WRITE):
                times = 1
                job_id = target
                if "@" in target:
                    job_id, _, count = target.rpartition("@")
                    try:
                        times = int(count)
                    except ValueError:
                        raise ChaosSpecError(
                            f"chaos clause {clause!r}: occurrence count "
                            f"{count!r} is not an integer"
                        ) from None
                if not job_id or times < 1:
                    raise ChaosSpecError(
                        f"chaos clause {clause!r} needs a job id and a "
                        f"positive count"
                    )
                table = kill_worker if point == KILL_WORKER else fail_write
                table[job_id] = times
            elif point == KILL_SUPERVISOR:
                try:
                    kill_supervisor_after = int(target)
                except ValueError:
                    raise ChaosSpecError(
                        f"chaos clause {clause!r}: settle count "
                        f"{target!r} is not an integer"
                    ) from None
                if kill_supervisor_after < 0:
                    raise ChaosSpecError(
                        f"chaos clause {clause!r}: settle count must be >= 0"
                    )
            else:
                raise ChaosSpecError(
                    f"unknown chaos point {point!r}; expected one of "
                    f"{KILL_WORKER}, {FAIL_WRITE}, {KILL_SUPERVISOR}"
                )
        return cls(
            kill_worker=kill_worker,
            fail_write=fail_write,
            kill_supervisor_after=kill_supervisor_after,
        )

    def render(self) -> str:
        """The ``REPRO_CHAOS`` string that parses back to this spec."""
        clauses = []
        for job_id, times in sorted(self.kill_worker.items()):
            clauses.append(f"{KILL_WORKER}:{job_id}@{times}")
        for job_id, times in sorted(self.fail_write.items()):
            clauses.append(f"{FAIL_WRITE}:{job_id}@{times}")
        if self.kill_supervisor_after is not None:
            clauses.append(f"{KILL_SUPERVISOR}:{self.kill_supervisor_after}")
        return ";".join(clauses)

    def environ(self, marks_dir: Path) -> Dict[str, str]:
        """Environment entries that arm this spec for a child process."""
        return {
            ENV_CHAOS: self.render(),
            ENV_CHAOS_DIR: str(marks_dir),
        }


def spec_from_env() -> Optional[ChaosSpec]:
    """The armed spec, or None when chaos is off (the common case)."""
    value = os.environ.get(ENV_CHAOS, "").strip()
    if not value:
        return None
    return ChaosSpec.parse(value)


def _marks_dir() -> Optional[Path]:
    value = os.environ.get(ENV_CHAOS_DIR, "").strip()
    if not value:
        return None
    return Path(value)


def _consume_mark(marks: Path, point: str, key: str, budget: int) -> bool:
    """Atomically claim one of ``budget`` occurrences; False if spent.

    ``O_CREAT | O_EXCL`` makes each mark file a cross-process
    compare-and-swap: exactly one process wins each occurrence slot, so
    a budget of N fires exactly N times across any interleaving of
    workers and supervisor restarts.
    """
    marks.mkdir(parents=True, exist_ok=True)
    safe_key = key.replace(os.sep, "_")
    for occurrence in range(budget):
        path = marks / f"{point}-{safe_key}-{occurrence}.mark"
        try:
            fd = os.open(str(path), os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            continue
        except OSError:
            return False
        os.close(fd)
        return True
    return False


def chaos_point(point: str, key: str) -> None:
    """Fire the configured fault at a named service point (usually no-op).

    * ``kill-worker`` — SIGKILL the calling process (no cleanup, no
      atexit: exactly the failure mode the hardened runner must survive);
    * ``fail-write`` — raise ``OSError(ENOSPC)``, simulating disk-quota
      exhaustion at the result-store boundary;
    * ``kill-supervisor`` — SIGKILL the calling process when ``key``
      (the settled-job count) has reached the configured threshold.
    """
    spec = spec_from_env()
    if spec is None:
        return
    marks = _marks_dir()
    if marks is None:
        return
    if point == KILL_WORKER:
        budget = spec.kill_worker.get(key, 0)
        if budget and _consume_mark(marks, point, key, budget):
            os.kill(os.getpid(), signal.SIGKILL)
    elif point == FAIL_WRITE:
        budget = spec.fail_write.get(key, 0)
        if budget and _consume_mark(marks, point, key, budget):
            raise OSError(
                errno.ENOSPC,
                f"chaos: simulated disk-quota exhaustion publishing {key}",
            )
    elif point == KILL_SUPERVISOR:
        threshold = spec.kill_supervisor_after
        if threshold is None:
            return
        try:
            settled = int(key)
        except ValueError:
            return
        if settled >= threshold and _consume_mark(
            marks, point, "supervisor", 1
        ):
            os.kill(os.getpid(), signal.SIGKILL)
