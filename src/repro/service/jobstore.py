"""Crash-safe on-disk job store: journal, dedup, quotas, recovery.

A store is one directory::

    store/
      journal.jsonl      append-only fsynced event log (source of truth)
      state.json         atomic-rename snapshot (operator convenience)
      results/           ArtifactCache holding finished result payloads
      chaos-marks/       chaos-occurrence marks (chaos runs only)

Every state change is one durably-appended event — ``submit``,
``coalesce``, ``start``, ``done``, ``failed``, ``requeue``, ``recover``,
``drain`` — and the in-memory view is a pure fold over those events, so
a SIGKILL at any point leaves a journal whose replay reconstructs
exactly what had settled.  The fold is shared between live appends and
restart (:meth:`JobStore._apply`), which is what makes the recovery
path impossible to drift from the live path.

Request identity is content-addressed: :func:`request_key` hashes the
canonicalized ``(kind, params)``, so two clients submitting the same
configuration coalesce onto one job and one result (counted — the dedup
counters are part of the chaos harness's pinned invariants).  Results
live in a :class:`~repro.harness.artifacts.ArtifactCache` keyed by the
same request key: identical work is stored once, corrupt entries are
quarantined by the cache and healed by :meth:`JobStore.recover`, and a
``done`` journal record is only ever written *after* its result file is
durable, so a journaled result always exists (the reverse — a result
with no journal record — costs one idempotent re-run).
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Tuple

from ..harness.artifacts import ArtifactCache
from .journal import JournalError, JsonlJournal, read_json, write_json_atomic
from .telemetry import event_stamp, job_timeline, read_progress

#: bump when event semantics or the result payload layout change
SERVICE_FORMAT_VERSION = 1

_ENV_STORE = "REPRO_SERVICE_DIR"
_ENV_QUOTA = "REPRO_SERVICE_QUOTA"

#: job kinds the executors understand (see :mod:`repro.service.jobs`)
JOB_KINDS = ("simulate", "sweep", "faults")

QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"


class ServiceError(RuntimeError):
    """Service-level misconfiguration or an unusable store."""


class QuotaExceeded(ServiceError):
    """A client's submission would exceed its fair-share quota."""


def default_store_dir() -> Path:
    """Resolve the store root from ``REPRO_SERVICE_DIR``."""
    env = os.environ.get(_ENV_STORE, "").strip()
    if env:
        return Path(env).expanduser()
    return Path.home() / ".cache" / "repro" / "service"


def quota_from_env() -> Optional[int]:
    """Per-client active-job quota from ``REPRO_SERVICE_QUOTA`` (None: off)."""
    value = os.environ.get(_ENV_QUOTA, "").strip()
    if not value:
        return None
    try:
        quota = int(value)
    except ValueError:
        raise ServiceError(
            f"{_ENV_QUOTA} must be a positive integer, got {value!r}"
        ) from None
    if quota < 1:
        raise ServiceError(f"{_ENV_QUOTA} must be >= 1, got {quota}")
    return quota


def _canonical(value: Any) -> Any:
    """JSON-shaped canonical form: sorted keys, tuples as lists."""
    if isinstance(value, Mapping):
        return {str(key): _canonical(value[key]) for key in sorted(value)}
    if isinstance(value, (list, tuple)):
        return [_canonical(item) for item in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    raise ServiceError(
        f"job params must be JSON-shaped (str/int/float/bool/list/dict), "
        f"got {type(value).__name__}"
    )


def request_key(kind: str, params: Mapping[str, Any]) -> str:
    """Content hash identifying one request; identical configs collide.

    The client is deliberately *not* part of the key — dedup is the
    point: two clients asking for the same simulation share one run and
    one stored result.
    """
    doc = json.dumps(
        {"kind": kind, "params": _canonical(params),
         "version": SERVICE_FORMAT_VERSION},
        sort_keys=True,
    )
    return hashlib.sha256(doc.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class JobRequest:
    """One submission: what to run, for whom."""

    kind: str
    params: Mapping[str, Any]
    client: str = "default"

    @property
    def key(self) -> str:
        return request_key(self.kind, self.params)


@dataclass
class JobRecord:
    """Replayed state of one job (the fold over its journal events)."""

    job_id: str
    kind: str
    params: Dict[str, Any]
    client: str
    key: str
    seq: int
    status: str = QUEUED
    attempts: int = 0
    error: Optional[str] = None
    #: a permanent (task) failure; False on infra quarantine
    permanent: bool = False
    #: times this job was reclaimed from a dead supervisor
    recovered: int = 0
    #: later submissions coalesced onto this job
    coalesced: int = 0

    @property
    def active(self) -> bool:
        return self.status in (QUEUED, RUNNING)

    def summary(self) -> Dict[str, Any]:
        return {
            "job": self.job_id,
            "kind": self.kind,
            "client": self.client,
            "status": self.status,
            "attempts": self.attempts,
            "recovered": self.recovered,
            "coalesced": self.coalesced,
            "error": self.error,
            "permanent": self.permanent,
            "key": self.key,
        }


class JobStore:
    """One durable job queue rooted at a directory.

    ``quota`` bounds each client's *active* (queued + running) jobs at
    submit time; ``readonly=True`` opens the store for inspection
    without touching the journal (the ``status`` CLI path).
    """

    def __init__(
        self,
        root: Path,
        quota: Optional[int] = None,
        readonly: bool = False,
        result_cache_limit_mb: Optional[float] = None,
    ) -> None:
        self.root = Path(root)
        self.quota = quota
        self.readonly = readonly
        if not readonly:
            self.root.mkdir(parents=True, exist_ok=True)
        try:
            self.journal = JsonlJournal(
                self.root / "journal.jsonl",
                kind="service-journal",
                version=SERVICE_FORMAT_VERSION,
                resume=True,
                readonly=readonly,
            )
        except JournalError as error:
            raise ServiceError(str(error)) from None
        limit = (
            int(result_cache_limit_mb * 1024 * 1024)
            if result_cache_limit_mb else None
        )
        self.results = ArtifactCache(
            root=self.root / "results", enabled=True, limit_bytes=limit,
        )
        self.jobs: Dict[str, JobRecord] = {}
        #: request key -> job id (dedup index)
        self._by_key: Dict[str, str] = {}
        #: clients in first-submission order (fair-share round-robin)
        self._clients: List[str] = []
        self._counters: Dict[str, int] = {
            "submitted": 0,
            "coalesced": 0,
            "completed": 0,
            "failed": 0,
            "requeued": 0,
            "recovered": 0,
            "orphaned_events": 0,
        }
        self._seq = 0
        for record in self.journal.records:
            self._apply(record)

    # ------------------------------------------------------------------ fold
    def _apply(self, record: Dict[str, Any]) -> None:
        """Fold one journal event into the in-memory view.

        Live mutations append the event *first*, then call this — replay
        after a crash runs the identical code path.
        """
        event = record.get("event")
        if event == "submit":
            job = JobRecord(
                job_id=record["job"],
                kind=record["kind"],
                params=dict(record["params"]),
                client=record.get("client", "default"),
                key=record["key"],
                seq=int(record["seq"]),
            )
            self.jobs[job.job_id] = job
            self._by_key[job.key] = job.job_id
            if job.client not in self._clients:
                self._clients.append(job.client)
            self._seq = max(self._seq, job.seq)
            self._counters["submitted"] += 1
            return
        if event == "coalesce":
            self._counters["coalesced"] += 1
            job = self.jobs.get(record.get("job", ""))
            if job is not None:
                job.coalesced += 1
            return
        if event == "drain":
            return
        job = self.jobs.get(record.get("job", ""))
        if job is None:
            # An event for a job whose submit record was lost (torn or
            # damaged journal middle).  Tolerated, never silent.
            self._counters["orphaned_events"] += 1
            return
        if event == "start":
            job.status = RUNNING
            job.error = None
        elif event == "done":
            job.status = DONE
            job.attempts = int(record.get("attempts", job.attempts))
            job.error = None
            job.permanent = False
            self._counters["completed"] += 1
        elif event == "failed":
            job.status = FAILED
            job.attempts = int(record.get("attempts", job.attempts))
            job.error = record.get("error")
            job.permanent = bool(record.get("permanent", False))
            self._counters["failed"] += 1
        elif event == "requeue":
            job.status = QUEUED
            job.attempts = int(record.get("attempts", job.attempts))
            job.error = record.get("error")
            self._counters["requeued"] += 1
        elif event == "recover":
            job.status = QUEUED
            job.recovered += 1
            self._counters["recovered"] += 1
        else:
            self._counters["orphaned_events"] += 1

    def _append(self, record: Dict[str, Any]) -> None:
        if self.readonly:
            raise ServiceError("job store opened read-only")
        # Every journaled event is stamped with wall + monotonic time and
        # the writing pid.  The fold above reads none of those fields —
        # pinned by a property test — so timestamps feed the latency
        # telemetry without touching dedup keys, recovery semantics, or
        # chaos bit-identity.
        stamped = dict(record)
        stamped.update(event_stamp())
        self.journal.append(stamped)
        self._apply(stamped)

    # ------------------------------------------------------------ submission
    def submit(self, request: JobRequest) -> Tuple[str, bool]:
        """Durably enqueue one request; returns ``(job_id, coalesced)``.

        An identical request (same content key) whose job has not failed
        permanently coalesces onto the existing job — the submission is
        journaled as a ``coalesce`` event so the dedup counter survives
        restarts.  A permanently-failed job does *not* absorb new
        submissions: resubmission is the operator's retry lever.
        """
        if request.kind not in JOB_KINDS:
            raise ServiceError(
                f"unknown job kind {request.kind!r}; "
                f"choose from {', '.join(JOB_KINDS)}"
            )
        params = _canonical(request.params)
        key = request_key(request.kind, params)
        existing_id = self._by_key.get(key)
        if existing_id is not None:
            existing = self.jobs[existing_id]
            if not (existing.status == FAILED and existing.permanent):
                self._append({
                    "event": "coalesce",
                    "job": existing_id,
                    "client": request.client,
                    "key": key,
                })
                return existing_id, True
        if self.quota is not None:
            active = sum(
                1 for job in self.jobs.values()
                if job.client == request.client and job.active
            )
            if active >= self.quota:
                raise QuotaExceeded(
                    f"client {request.client!r} already has {active} active "
                    f"job(s); quota is {self.quota}"
                )
        seq = self._seq + 1
        job_id = f"j{seq:06d}-{key[:8]}"
        self._append({
            "event": "submit",
            "job": job_id,
            "kind": request.kind,
            "params": params,
            "client": request.client,
            "key": key,
            "seq": seq,
        })
        return job_id, False

    # ------------------------------------------------------------ scheduling
    def runnable(self) -> List[JobRecord]:
        """Queued jobs in fair-share order: round-robin across clients.

        Within one client, submission order; across clients, one job per
        round in first-submission client order — a client that floods
        the queue cannot starve the others.
        """
        per_client: Dict[str, List[JobRecord]] = {}
        for job in sorted(self.jobs.values(), key=lambda j: j.seq):
            if job.status == QUEUED:
                per_client.setdefault(job.client, []).append(job)
        ordered: List[JobRecord] = []
        queues = [
            per_client[client] for client in self._clients
            if client in per_client
        ]
        while queues:
            next_round = []
            for queue in queues:
                ordered.append(queue.pop(0))
                if queue:
                    next_round.append(queue)
            queues = next_round
        return ordered

    def claim(self, job_id: str) -> JobRecord:
        """Mark one queued job running (journaled before dispatch)."""
        job = self.job(job_id)
        if job.status != QUEUED:
            raise ServiceError(
                f"cannot claim job {job_id}: status is {job.status!r}"
            )
        self._append({
            "event": "start",
            "job": job_id,
            "attempt": job.attempts + 1,
        })
        return job

    # --------------------------------------------------------------- results
    def _result_key(self, key: str) -> Tuple:
        return ("jobresult", SERVICE_FORMAT_VERSION, key)

    def complete(self, job_id: str, result: Any, attempts: int) -> None:
        """Publish a result durably, then journal ``done``.

        Order matters: result file first (atomic rename), journal record
        second.  A kill between the two leaves a result file with no
        record — the job replays as interrupted and reruns, overwriting
        the file with bit-identical content.  The reverse order could
        journal a result that does not exist.
        """
        job = self.job(job_id)
        payload = _canonical(result)
        self.results.put(self._result_key(job.key), payload)
        if self.results.get(self._result_key(job.key)) is None:
            # ArtifactCache.put is advisory (silent on OSError); the
            # service store is not — surface the loss as the infra
            # failure it is so the retry policy can classify it.
            raise OSError(
                f"result store write failed for job {job_id} "
                f"under {self.results.root}"
            )
        self._append({
            "event": "done",
            "job": job_id,
            "attempts": attempts,
            "key": job.key,
        })

    def result(self, job_id: str) -> Optional[Any]:
        """The stored result payload, or None (missing/corrupt/evicted)."""
        job = self.job(job_id)
        return self.results.get(self._result_key(job.key))

    def fail(
        self, job_id: str, error: str, permanent: bool, attempts: int
    ) -> None:
        self._append({
            "event": "failed",
            "job": job_id,
            "error": error,
            "permanent": permanent,
            "attempts": attempts,
        })

    def requeue(self, job_id: str, error: str, attempts: int) -> None:
        """Put a job back in the queue after a transient settle failure."""
        self._append({
            "event": "requeue",
            "job": job_id,
            "error": error,
            "attempts": attempts,
        })

    # -------------------------------------------------------------- recovery
    def interrupted(self) -> List[str]:
        """Jobs a dead supervisor left ``running`` (journal says started,
        never settled)."""
        return sorted(
            job.job_id for job in self.jobs.values()
            if job.status == RUNNING
        )

    def verify_results(self) -> List[str]:
        """``done`` jobs whose stored result is missing or corrupt."""
        broken = []
        for job_id in sorted(self.jobs):
            job = self.jobs[job_id]
            if job.status == DONE and self.result(job_id) is None:
                broken.append(job_id)
        return broken

    def recover(self) -> Dict[str, List[str]]:
        """Reclaim interrupted jobs and heal lost results; journaled.

        Called by the supervisor at startup.  Two invariant repairs:

        * jobs ``running`` in the journal (their supervisor died between
          ``start`` and a terminal event) go back to ``queued``;
        * jobs ``done`` whose result payload no longer loads (corrupt
          entry quarantined by the cache, evicted, or deleted) also go
          back to ``queued`` — simulations are deterministic, so the
          re-run reproduces the identical payload.
        """
        interrupted = self.interrupted()
        for job_id in interrupted:
            self._append({"event": "recover", "job": job_id,
                          "reason": "supervisor died mid-job"})
        lost = self.verify_results()
        for job_id in lost:
            self._append({"event": "recover", "job": job_id,
                          "reason": "stored result unreadable"})
        return {"interrupted": interrupted, "lost_results": lost}

    # --------------------------------------------------------- introspection
    def job(self, job_id: str) -> JobRecord:
        try:
            return self.jobs[job_id]
        except KeyError:
            raise ServiceError(f"unknown job {job_id!r}") from None

    # ------------------------------------------------------------- telemetry
    @property
    def progress_dir(self) -> Path:
        """Per-job heartbeat files (atomic JSON, written by workers)."""
        return self.root / "progress"

    @property
    def health_path(self) -> Path:
        """The supervisor's liveness file (atomic JSON, one per round)."""
        return self.root / "health.json"

    @property
    def metrics_path(self) -> Path:
        """Prometheus text-exposition export (atomic, one per round)."""
        return self.root / "metrics.prom"

    def progress(self, job_id: str) -> Optional[Dict[str, Any]]:
        """The job's last worker heartbeat, or None (never raises)."""
        return read_progress(self.progress_dir, job_id)

    def timeline(self, job_id: str) -> Dict[str, Any]:
        """Timestamped journal events + derived durations for one job."""
        self.job(job_id)  # loud on unknown ids
        return job_timeline(self.journal.records, job_id)

    def drain(self, graceful: bool = True) -> None:
        """Journal a (timestamped) drain marker at supervisor shutdown."""
        self._append({"event": "drain", "graceful": graceful})

    def counters(self) -> Dict[str, int]:
        out = dict(self._counters)
        out["torn_lines"] = self.journal.skipped
        out["active"] = sum(1 for j in self.jobs.values() if j.active)
        return out

    def publish_metrics(self, registry) -> None:
        """Surface store and result-cache counters in a MetricsRegistry."""
        for name, value in self.counters().items():
            registry.counter(f"service.{name}", value)
        self.results.publish_metrics(registry, prefix="service.results")

    def write_state(self) -> None:
        """Atomic-rename snapshot for operators (journal stays the truth)."""
        if self.readonly:
            return
        jobs = {}
        for job_id in sorted(self.jobs):
            summary = self.jobs[job_id].summary()
            if self.jobs[job_id].status == RUNNING:
                # Fold the worker's last heartbeat into the snapshot so
                # state.json answers "stuck or slow?" on its own.
                summary["progress"] = self.progress(job_id)
            jobs[job_id] = summary
        write_json_atomic(self.root / "state.json", {
            "version": SERVICE_FORMAT_VERSION,
            "counters": self.counters(),
            "jobs": jobs,
        })

    def state_snapshot(self) -> Optional[Dict[str, Any]]:
        return read_json(self.root / "state.json")

    def close(self) -> None:
        self.journal.close()
