"""Suite construction: programs for the 26 synthetic SPEC CPU2000 benchmarks.

``build_suite`` is the standard entry point used by analyses, experiments,
and benchmarks.  ``scale`` stretches the dynamic length (paper runs used the
MinneSPEC reduced inputs; the reproduction's default lengths are reduced
further so a pure-Python cycle-level simulator can sweep the full design
space — see DESIGN.md).
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

from ..isa.program import Program
from .generator import generate
from .profiles import (
    ALL_BENCHMARKS,
    FP_BENCHMARKS,
    INT_BENCHMARKS,
    profile,
    scaled,
)


def build_program(name: str, scale: float = 1.0) -> Program:
    """Generate one benchmark program by name."""
    return generate(scaled(profile(name), scale))


def build_suite(
    names: Optional[Iterable[str]] = None, scale: float = 1.0
) -> Dict[str, Program]:
    """Generate the benchmark suite (all 26 programs by default)."""
    selected: Tuple[str, ...] = tuple(names) if names is not None else ALL_BENCHMARKS
    return {name: build_program(name, scale) for name in selected}


#: A small representative subset (two integer, two floating point) used by
#: fast tests and quick experiment runs.
QUICK_BENCHMARKS: Tuple[str, ...] = ("gcc", "mcf", "swim", "equake")


def quick_suite(scale: float = 1.0) -> Dict[str, Program]:
    """The four-program quick subset."""
    return build_suite(QUICK_BENCHMARKS, scale=scale)


__all__ = [
    "ALL_BENCHMARKS",
    "FP_BENCHMARKS",
    "INT_BENCHMARKS",
    "QUICK_BENCHMARKS",
    "build_program",
    "build_suite",
    "quick_suite",
]
