"""Synthetic SPEC CPU2000 workload suite and hand-written kernels."""

from .generator import BenchmarkGenerator, generate
from .kernels import KERNEL_NAMES, all_kernels, kernel
from .profiles import (
    ALL_BENCHMARKS,
    ALL_PROFILES,
    FP_BENCHMARKS,
    FP_PROFILES,
    INT_BENCHMARKS,
    INT_PROFILES,
    BenchmarkProfile,
    profile,
    scaled,
)
from .suite import QUICK_BENCHMARKS, build_program, build_suite, quick_suite

__all__ = [
    "BenchmarkGenerator",
    "generate",
    "KERNEL_NAMES",
    "all_kernels",
    "kernel",
    "ALL_BENCHMARKS",
    "ALL_PROFILES",
    "FP_BENCHMARKS",
    "FP_PROFILES",
    "INT_BENCHMARKS",
    "INT_PROFILES",
    "BenchmarkProfile",
    "profile",
    "scaled",
    "QUICK_BENCHMARKS",
    "build_program",
    "build_suite",
    "quick_suite",
]
