"""Per-benchmark generation profiles for the synthetic SPEC CPU2000 suite.

The paper evaluates the 26 SPEC CPU2000 programs (12 integer, 14 floating
point) compiled for Alpha.  Real SPEC binaries are unavailable here, so each
benchmark is replaced by a synthetic program whose *shape* is calibrated to
the paper's own characterization data:

* Table 1 — braids per basic block (``braids_per_block`` target);
* Table 2 — braid size (``op_size_mean``) and width ≈ 1.1 (chain-biased
  expression DAGs);
* Table 3 — internal/external value counts (driven by DAG shape);
* Section 1.1 — value fanout (>70% single use) and lifetime (~80% ≤ 32
  instructions), which chain-biased DAGs with near-immediate consumption
  reproduce naturally.

The profile numbers below are derived from the per-benchmark columns in
Tables 1 and 2: ``ops_per_block`` approximates the non-single braids per
block and ``op_size_mean`` the average braid size, while memory/branch/
latency mixes encode each program's qualitative character (e.g. ``mcf`` is
pointer-chasing and cache-hostile, ``mgrid``/``swim`` stream long stencils).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Tuple


@dataclass(frozen=True)
class BenchmarkProfile:
    """Generation parameters for one synthetic benchmark."""

    name: str
    suite: str  # "int" or "fp"
    #: expression DAGs (multi-instruction braid candidates) per basic block
    ops_per_block: float
    #: mean instructions per DAG (geometric-ish); paper Table 2 "size"
    op_size_mean: float
    #: probability an intermediate value is consumed twice (fanout 2)
    fanout2_prob: float = 0.18
    #: probability a DAG step merges a short freshly-computed side chain
    #: (keeps braid width near the paper's 1.1 and exercises steering)
    join_prob: float = 0.12
    #: probability a DAG input is loaded from memory
    load_prob: float = 0.35
    #: probability a DAG result is stored to memory
    store_prob: float = 0.25
    #: probability an ALU step is an integer multiply (long latency)
    mul_prob: float = 0.03
    #: probability an FP step is a divide/sqrt (very long latency)
    div_prob: float = 0.02
    #: independent loop regions in the program
    regions: int = 3
    #: straight-line body blocks per loop
    body_blocks: int = 3
    #: probability a body block ends in a data-dependent forward branch
    diamond_prob: float = 0.35
    #: taken probability of data-dependent branches (0..1); lower values are
    #: more predictable
    branch_bias: float = 0.12
    #: fraction of diamond branches whose outcome is pseudo-random noise; the
    #: rest follow periodic, history-learnable patterns (real codes mix both)
    branch_noise: float = 0.25
    #: probability a DAG result is folded into the global accumulator
    #: (creates the serial reduction chains of integer codes)
    accum_prob: float = 0.25
    #: inner loop trip count
    inner_trips: int = 12
    #: outer loop trip count (scaled by the suite builder)
    outer_trips: int = 4
    #: words per array (working set; power of two)
    array_words: int = 512
    #: fraction of compute that is floating point
    fp_fraction: float = 0.0
    #: extra single-instruction filler (nops / lda) per block
    single_filler: float = 0.6
    #: RNG seed
    seed: int = 1

    @property
    def is_fp(self) -> bool:
        return self.suite == "fp"


def _int(name: str, ops: float, size: float, seed: int, **kw) -> BenchmarkProfile:
    return BenchmarkProfile(
        name=name, suite="int", ops_per_block=ops, op_size_mean=size, seed=seed, **kw
    )


def _fp(name: str, ops: float, size: float, seed: int, **kw) -> BenchmarkProfile:
    kw.setdefault("fp_fraction", 0.75)
    kw.setdefault("inner_trips", 16)
    kw.setdefault("diamond_prob", 0.15)
    kw.setdefault("branch_bias", 0.06)
    kw.setdefault("branch_noise", 0.15)
    # Streaming numerical codes take most inputs from arrays and write most
    # results back, with few register-carried dependences across operations.
    kw.setdefault("load_prob", 0.55)
    kw.setdefault("store_prob", 0.40)
    kw.setdefault("accum_prob", 0.10)
    return BenchmarkProfile(
        name=name, suite="fp", ops_per_block=ops, op_size_mean=size, seed=seed, **kw
    )


#: Integer benchmarks (paper Table 1 order).
INT_PROFILES: Tuple[BenchmarkProfile, ...] = (
    _int("bzip2", 1.3, 3.4, 11, load_prob=0.40, store_prob=0.30, array_words=2048),
    _int("crafty", 1.3, 3.2, 12, diamond_prob=0.45, branch_bias=0.25, branch_noise=0.40),
    _int("eon", 2.6, 2.0, 13, body_blocks=4, fp_fraction=0.30),
    _int("gap", 1.2, 2.5, 14, mul_prob=0.06),
    _int("gcc", 1.2, 2.3, 15, diamond_prob=0.50, branch_bias=0.20, body_blocks=4,
         branch_noise=0.35),
    _int("gzip", 1.4, 3.4, 16, load_prob=0.45, store_prob=0.35, array_words=1024),
    _int("mcf", 1.0, 2.0, 17, load_prob=0.60, array_words=65536, diamond_prob=0.40),
    _int("parser", 1.4, 2.2, 18, diamond_prob=0.50, branch_bias=0.25, branch_noise=0.40),
    _int("perlbmk", 1.5, 2.3, 19, body_blocks=4, diamond_prob=0.45),
    _int("twolf", 1.8, 2.8, 20, load_prob=0.40, mul_prob=0.05),
    _int("vortex", 2.1, 2.1, 21, body_blocks=5, store_prob=0.35),
    _int("vpr", 1.5, 2.5, 22, diamond_prob=0.40, mul_prob=0.05, branch_noise=0.35),
)

#: Floating-point benchmarks (paper Table 1 order).
FP_PROFILES: Tuple[BenchmarkProfile, ...] = (
    _fp("ammp", 1.0, 2.8, 31, div_prob=0.04),
    _fp("applu", 4.2, 2.9, 32, body_blocks=2, array_words=4096),
    _fp("apsi", 3.2, 2.8, 33),
    _fp("art", 1.7, 2.6, 34, load_prob=0.55, array_words=16384),
    _fp("equake", 1.4, 2.4, 35, load_prob=0.50, array_words=8192),
    _fp("facerec", 1.5, 2.2, 36),
    _fp("fma3d", 1.6, 2.7, 37, div_prob=0.03),
    _fp("galgel", 4.1, 2.0, 38, body_blocks=2),
    _fp("lucas", 2.2, 4.6, 39, mul_prob=0.06),
    _fp("mesa", 1.6, 2.1, 40, fp_fraction=0.55, diamond_prob=0.30),
    _fp("mgrid", 2.4, 13.2, 41, store_prob=0.30, array_words=4096, single_filler=0.9),
    _fp("sixtrack", 1.8, 2.3, 42),
    _fp("swim", 4.6, 4.8, 43, body_blocks=2, array_words=8192, single_filler=0.9),
    _fp("wupwise", 2.2, 2.8, 44, mul_prob=0.05),
)

ALL_PROFILES: Tuple[BenchmarkProfile, ...] = INT_PROFILES + FP_PROFILES

PROFILE_BY_NAME: Dict[str, BenchmarkProfile] = {
    profile.name: profile for profile in ALL_PROFILES
}

INT_BENCHMARKS: Tuple[str, ...] = tuple(p.name for p in INT_PROFILES)
FP_BENCHMARKS: Tuple[str, ...] = tuple(p.name for p in FP_PROFILES)
ALL_BENCHMARKS: Tuple[str, ...] = INT_BENCHMARKS + FP_BENCHMARKS


def profile(name: str) -> BenchmarkProfile:
    """Look up a benchmark profile by name."""
    try:
        return PROFILE_BY_NAME[name]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; choose from {ALL_BENCHMARKS}"
        ) from None


def scaled(profile_: BenchmarkProfile, scale: float) -> BenchmarkProfile:
    """Scale a profile's dynamic length (outer trip count) by ``scale``."""
    trips = max(1, round(profile_.outer_trips * scale))
    return replace(profile_, outer_trips=trips)
