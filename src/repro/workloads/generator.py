"""Synthetic benchmark program generator.

Generates deterministic, terminating, executable programs whose dataflow
shape matches the paper's characterization of SPEC CPU2000 (see
:mod:`repro.workloads.profiles`).  The structural vocabulary:

* **Loop regions** — each benchmark is an outer loop over several inner-loop
  regions, giving the predictable loop-closing branches real codes have.
* **Expression DAGs** — each body block contains a few chain-biased
  expression DAGs (the paper's braids-to-be): a value chain consuming pool
  registers, loaded values, and immediates, occasionally reusing an
  intermediate (fanout 2), ending in a store or a pool register.
* **Data-dependent diamonds** — an xorshift-style register recurrence feeds
  threshold-compare branches, so branch outcomes are deterministic yet
  varied, with a per-benchmark taken bias.
* **Single-instruction filler** — standalone ``lda``/``nop`` instructions
  reproduce the paper's large population of single-instruction braids.

Register conventions (integer bank): r1-r4 array bases, r5-r6 address
temporaries, r7 recurrence state, r8 branch scratch, r9/r10 loop counters,
r11 induction index, r12-r19 DAG scratch, r20-r27 value pool, r28
accumulator, r29/r30 filler chain.  The FP bank mirrors the scratch/pool
split (f12-f19 scratch, f20-f27 pool, f28 accumulator).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..isa.instruction import Instruction
from ..isa.opcodes import opcode_by_name
from ..isa.program import BasicBlock, Program
from ..isa.registers import Register, fp_reg, int_reg
from .profiles import BenchmarkProfile

_BASES = [int_reg(i) for i in range(1, 5)]
_ADDR = [int_reg(5), int_reg(6)]
_RECUR = int_reg(7)
_COND = int_reg(8)
_OUTER = int_reg(9)
_INNER = int_reg(10)
_INDEX = int_reg(11)
_SCRATCH_INT = [int_reg(i) for i in range(12, 20)]
_POOL_INT = [int_reg(i) for i in range(20, 28)]
_ACCUM_INT = int_reg(28)
_FILLER = [int_reg(29), int_reg(30)]
_SCRATCH_FP = [fp_reg(i) for i in range(12, 20)]
_POOL_FP = [fp_reg(i) for i in range(20, 28)]
_ACCUM_FP = fp_reg(28)

#: Byte address of the first array.  Spacing bounds the largest profile's
#: working set (65536 words = 512 KiB) while keeping every base address
#: within the 22-bit immediate field of the braid instruction encoding.
_ARRAY_BASE = 0x8000
_ARRAY_SPACING = 0x8_0000

_INT_CHAIN_OPS = ("addq", "subq", "and", "bis", "xor", "andnot", "addl")
_INT_IMM_OPS = ("addqi", "subqi", "xori", "addli", "srli", "slli")
_FP_CHAIN_OPS = ("addt", "subt", "mult", "adds")


@dataclass
class _Value:
    """A generated value living in a register."""

    reg: Register
    fp: bool


class _DagState:
    """Scratch-register ring and pending fanout-2 reuses for one block."""

    def __init__(self, rng: random.Random) -> None:
        self.rng = rng
        self.int_cursor = 0
        self.fp_cursor = 0
        self.protected: List[_Value] = []

    def scratch(self, fp: bool) -> Register:
        ring = _SCRATCH_FP if fp else _SCRATCH_INT
        protected_regs = {value.reg for value in self.protected}
        for _ in range(len(ring)):
            if fp:
                reg = ring[self.fp_cursor % len(ring)]
                self.fp_cursor += 1
            else:
                reg = ring[self.int_cursor % len(ring)]
                self.int_cursor += 1
            if reg not in protected_regs:
                return reg
        # Every scratch register is protected (extremely unlikely): recycle.
        victim = self.protected.pop(0)
        return victim.reg

    def protect(self, value: _Value) -> None:
        self.protected.append(value)

    def take_protected(self, fp: bool) -> Optional[_Value]:
        for position, value in enumerate(self.protected):
            if value.fp == fp:
                return self.protected.pop(position)
        return None


class BenchmarkGenerator:
    """Builds one synthetic benchmark program from a profile."""

    def __init__(self, profile: BenchmarkProfile) -> None:
        self.profile = profile
        self.rng = random.Random(profile.seed * 0x9E3779B1 + 7)
        self.blocks: List[BasicBlock] = []
        self._pool_int_cursor = 0
        self._pool_fp_cursor = 0
        self._filler_cursor = 0
        self._addr_cursor = 0
        self._dag_addr_reg: Optional[Register] = None

    # ------------------------------------------------------------- public API
    def build(self) -> Program:
        """Generate the program (deterministic for a given profile)."""
        entry = self._new_block("ENTRY")
        self._emit_entry(entry)

        region_heads: List[BasicBlock] = []
        for region in range(self.profile.regions):
            head = self._emit_region(region)
            region_heads.append(head)

        outer_latch = self._new_block("OUTER_LATCH")
        exit_block = self._new_block("EXIT")
        self._emit_exit(exit_block)

        # Outer loop: ENTRY falls into region 0; OUTER_LATCH jumps back.
        self._emit(outer_latch, "addli", _OUTER, imm=1, dest=_OUTER)
        self._emit(outer_latch, "cmplti", _OUTER, imm=self.profile.outer_trips,
                   dest=_COND)
        self._branch(outer_latch, "bne", _COND, target_block=region_heads[0])

        program = Program(name=self.profile.name, blocks=self.blocks)
        self._resolve_targets(program)
        program.validate()
        return program

    # ------------------------------------------------------------ block utils
    def _new_block(self, label: str) -> BasicBlock:
        block = BasicBlock(index=len(self.blocks), label=label)
        self.blocks.append(block)
        return block

    def _emit(self, block: BasicBlock, opcode_name: str, *srcs: Register,
              dest: Optional[Register] = None, imm: int = 0) -> Instruction:
        inst = Instruction(
            opcode=opcode_by_name(opcode_name),
            dest=dest,
            srcs=tuple(srcs),
            imm=imm,
        )
        block.instructions.append(inst)
        return inst

    def _branch(self, block: BasicBlock, opcode_name: str, *srcs: Register,
                target_block: BasicBlock) -> None:
        # Targets are stored as block labels during construction and resolved
        # to indices once all blocks exist (labels are unique).
        inst = Instruction(
            opcode=opcode_by_name(opcode_name),
            srcs=tuple(srcs),
            target=0,
        )
        inst._pending_label = target_block.label  # type: ignore[attr-defined]
        block.instructions.append(inst)

    def _resolve_targets(self, program: Program) -> None:
        for block in program.blocks:
            for position, inst in enumerate(block.instructions):
                label = getattr(inst, "_pending_label", None)
                if label is not None:
                    target = program.block_by_label(label).index
                    block.instructions[position] = inst.retargeted(target)

    # ------------------------------------------------------------ entry / exit
    def _emit_entry(self, block: BasicBlock) -> None:
        for number, base in enumerate(_BASES):
            address = _ARRAY_BASE + number * _ARRAY_SPACING
            self._emit(block, "addqi", int_reg(31), imm=address, dest=base)
        self._emit(block, "addqi", int_reg(31),
                   imm=(self.profile.seed * 2654435761) & 0x1FFFFF, dest=_RECUR)
        self._emit(block, "addqi", int_reg(31), imm=0, dest=_OUTER)
        self._emit(block, "addqi", int_reg(31), imm=0, dest=_INDEX)
        self._emit(block, "addqi", int_reg(31), imm=0, dest=_ACCUM_INT)
        for pool in _POOL_INT:
            self._emit(block, "addqi", int_reg(31),
                       imm=self.rng.randrange(1, 1 << 16), dest=pool)
        if self.profile.fp_fraction > 0:
            self._emit(block, "itoft", _ACCUM_INT, dest=_ACCUM_FP)
            for pool in _POOL_FP:
                self._emit(block, "itoft", _POOL_INT[0], dest=pool)

    def _emit_exit(self, block: BasicBlock) -> None:
        """Make results observable: spill accumulators and pool to memory."""
        self._emit(block, "stq", _ACCUM_INT, _BASES[0], imm=0)
        for number, pool in enumerate(_POOL_INT[:4]):
            self._emit(block, "stq", pool, _BASES[0], imm=8 * (number + 1))
        if self.profile.fp_fraction > 0:
            self._emit(block, "stt", _ACCUM_FP, _BASES[0], imm=64)
            for number, pool in enumerate(_POOL_FP[:4]):
                self._emit(block, "stt", pool, _BASES[0], imm=72 + 8 * number)
        self._emit(block, "nop")

    # ----------------------------------------------------------------- regions
    def _emit_region(self, region: int) -> BasicBlock:
        profile = self.profile
        preheader = self._new_block(f"R{region}_PRE")
        self._emit(preheader, "addqi", int_reg(31), imm=0, dest=_INNER)

        head: Optional[BasicBlock] = None
        body: List[BasicBlock] = []
        diamonds: List[Tuple[BasicBlock, int]] = []
        for number in range(profile.body_blocks):
            block = self._new_block(f"R{region}_B{number}")
            if head is None:
                head = block
            body.append(block)
            self._fill_body_block(block)
            if (
                number + 1 < profile.body_blocks
                and self.rng.random() < profile.diamond_prob
            ):
                diamonds.append((block, number))

        latch = self._new_block(f"R{region}_LATCH")
        mask = profile.array_words - 1
        self._emit(latch, "addqi", _INDEX, imm=1, dest=_INDEX)
        self._emit(latch, "andi", _INDEX, imm=mask, dest=_INDEX)
        self._emit(latch, "addli", _INNER, imm=1, dest=_INNER)
        self._emit(latch, "cmplti", _INNER, imm=profile.inner_trips, dest=_COND)
        assert head is not None
        self._branch(latch, "bne", _COND, target_block=head)

        # Wire the diamonds: a taken branch skips the next body block.
        for block, number in diamonds:
            skip_to = body[number + 2] if number + 2 < len(body) else latch
            self._emit_condition(block)
            self._branch(block, "bne", _COND, target_block=skip_to)
        return preheader

    def _emit_condition(self, block: BasicBlock) -> None:
        """Derive a diamond branch condition.

        Most conditions follow a periodic, history-learnable pattern on the
        inner loop counter; a ``branch_noise`` fraction are pseudo-random
        (an LCG recurrence), reproducing the hard-to-predict residue real
        programs exhibit.
        """
        if self.rng.random() < self.profile.branch_noise:
            threshold = max(1, min(255, int(self.profile.branch_bias * 256)))
            self._emit(block, "mulqi", _RECUR, imm=1103515, dest=_RECUR)
            self._emit(block, "addqi", _RECUR, imm=12345, dest=_RECUR)
            self._emit(block, "srli", _RECUR, imm=24, dest=_COND)
            self._emit(block, "andi", _COND, imm=255, dest=_COND)
            self._emit(block, "cmplti", _COND, imm=threshold, dest=_COND)
            return
        period_mask = self.rng.choice((3, 3, 7))
        threshold = max(1, round(self.profile.branch_bias * (period_mask + 1)))
        phase = self.rng.randrange(0, period_mask + 1)
        self._emit(block, "addqi", _INNER, imm=phase, dest=_COND)
        self._emit(block, "andi", _COND, imm=period_mask, dest=_COND)
        self._emit(block, "cmplti", _COND, imm=threshold, dest=_COND)

    # -------------------------------------------------------------- body blocks
    def _fill_body_block(self, block: BasicBlock) -> None:
        profile = self.profile
        rng = self.rng
        ops = self._draw_count(profile.ops_per_block)
        state = _DagState(rng)
        for _ in range(max(1, ops)):
            self._emit_dag(block, state)

        fillers = self._draw_count(profile.single_filler)
        for _ in range(fillers):
            self._emit_filler(block)

    def _draw_count(self, mean: float) -> int:
        """Small non-negative integer with the given mean."""
        whole = int(mean)
        count = whole + (1 if self.rng.random() < (mean - whole) else 0)
        return count

    def _emit_filler(self, block: BasicBlock) -> None:
        if self.rng.random() < 0.4:
            self._emit(block, "nop")
            return
        reg = _FILLER[self._filler_cursor % len(_FILLER)]
        self._filler_cursor += 1
        self._emit(block, "lda", reg, imm=self.rng.randrange(1, 64), dest=reg)

    # ------------------------------------------------------------------- DAGs
    def _next_pool(self, fp: bool) -> Register:
        if fp:
            reg = _POOL_FP[self._pool_fp_cursor % len(_POOL_FP)]
            self._pool_fp_cursor += 1
        else:
            reg = _POOL_INT[self._pool_int_cursor % len(_POOL_INT)]
            self._pool_int_cursor += 1
        return reg

    def _random_pool(self, fp: bool) -> Register:
        pool = _POOL_FP if fp else _POOL_INT
        return self.rng.choice(pool)

    def _dag_addr(self, block: BasicBlock) -> Register:
        """The current DAG's address register, computed on first use.

        Each operation computes its own ``&array[index]`` (as in the paper's
        Figure 2, where every load has a private ``addq`` address add), so
        memory accesses connect only to their own braid.  Address registers
        rotate so consecutive DAGs never share a dataflow edge through them.
        """
        if self._dag_addr_reg is None:
            addr = _ADDR[self._addr_cursor % len(_ADDR)]
            self._addr_cursor += 1
            base = self.rng.choice(_BASES)
            self._emit(block, "slli", _INDEX, imm=3, dest=addr)
            self._emit(block, "addq", base, addr, dest=addr)
            self._dag_addr_reg = addr
        return self._dag_addr_reg

    def _emit_load(self, block: BasicBlock, state: _DagState, fp: bool) -> _Value:
        addr = self._dag_addr(block)
        displacement = 8 * self.rng.randrange(0, 32)
        dest = state.scratch(fp)
        self._emit(block, "ldt" if fp else "ldq", addr, imm=displacement, dest=dest)
        return _Value(reg=dest, fp=fp)

    def _dag_input(self, block: BasicBlock, state: _DagState, fp: bool) -> _Value:
        reused = state.take_protected(fp)
        if reused is not None:
            return reused
        if self.rng.random() < self.profile.load_prob:
            return self._emit_load(block, state, fp)
        return _Value(reg=self._random_pool(fp), fp=fp)

    def _emit_dag(self, block: BasicBlock, state: _DagState) -> None:
        """One chain-biased expression DAG (a braid candidate)."""
        profile = self.profile
        rng = self.rng
        fp = rng.random() < profile.fp_fraction
        self._dag_addr_reg = None  # each DAG computes its own addresses

        size = max(1, round(rng.expovariate(1.0 / profile.op_size_mean)))
        size = min(size, 24)

        current = self._dag_input(block, state, fp)
        steps = max(1, size - 1)
        for step in range(steps):
            last = step == steps - 1
            store_result = last and rng.random() < profile.store_prob
            if last and not store_result:
                dest = self._next_pool(fp)
            else:
                dest = state.scratch(fp)
            if not last and rng.random() < profile.join_prob:
                current = self._emit_join(block, state, current, dest, fp)
                continue
            current = self._emit_dag_step(block, state, current, dest, fp)
            if not last and rng.random() < profile.fanout2_prob:
                state.protect(current)
            if store_result:
                addr = self._dag_addr(block)
                displacement = 8 * rng.randrange(0, 32)
                opcode = "stt" if fp else "stq"
                self._emit(block, opcode, current.reg, addr, imm=displacement)

        # Occasionally fold the result into the accumulator (keeps it live).
        if rng.random() < profile.accum_prob:
            if fp:
                self._emit(block, "addt", _ACCUM_FP, current.reg, dest=_ACCUM_FP)
            else:
                self._emit(block, "addq", _ACCUM_INT, current.reg, dest=_ACCUM_INT)

    def _emit_join(self, block: BasicBlock, state: _DagState,
                   current: _Value, dest: Register, fp: bool) -> _Value:
        """Merge a short, freshly-computed side chain into the main chain.

        Joins give braids their (slightly) greater-than-one width and create
        the two-live-producer patterns that stress dependence steering.
        """
        side_seed = self._dag_input(block, state, fp)
        side = self._emit_dag_step(block, state, side_seed, state.scratch(fp), fp)
        merge_op = "addt" if fp else "addq"
        self._emit(block, merge_op, current.reg, side.reg, dest=dest)
        return _Value(reg=dest, fp=fp)

    def _emit_dag_step(self, block: BasicBlock, state: _DagState,
                       current: _Value, dest: Register, fp: bool) -> _Value:
        rng = self.rng
        profile = self.profile
        if fp:
            if rng.random() < profile.div_prob:
                self._emit(block, "sqrtt", current.reg, dest=dest)
                return _Value(reg=dest, fp=True)
            shape = rng.random()
            if shape < 0.65:
                other = self._dag_input(block, state, True)
                name = rng.choice(_FP_CHAIN_OPS)
                self._emit(block, name, current.reg, other.reg, dest=dest)
            else:
                name = rng.choice(("addt", "mult"))
                self._emit(block, name, current.reg, current.reg, dest=dest)
            return _Value(reg=dest, fp=True)

        if rng.random() < profile.mul_prob:
            self._emit(block, "mulqi", current.reg,
                       imm=rng.randrange(3, 1 << 12), dest=dest)
            return _Value(reg=dest, fp=False)
        shape = rng.random()
        if shape < 0.55:
            other = self._dag_input(block, state, False)
            name = rng.choice(_INT_CHAIN_OPS)
            self._emit(block, name, current.reg, other.reg, dest=dest)
        else:
            name = rng.choice(_INT_IMM_OPS)
            imm = rng.randrange(1, 1 << 12)
            if name in ("srli", "slli"):
                imm = rng.randrange(1, 16)
            self._emit(block, name, current.reg, imm=imm, dest=dest)
        return _Value(reg=dest, fp=False)


def generate(profile: BenchmarkProfile) -> Program:
    """Generate the synthetic program for ``profile``."""
    return BenchmarkGenerator(profile).build()
