"""Hand-written kernels, including the paper's Figure 2 example.

These small programs complement the synthetic suite: they are readable,
their braid structure is known by inspection, and the test suite asserts the
partitioner recovers exactly that structure.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..isa.assembler import assemble
from ..isa.program import Program

#: The gcc life-analysis loop of paper Figure 2, adapted to this ISA.  The
#: LOOP block partitions into the paper's three braids (plus the branch):
#: the large mask-computation braid, the induction-increment braid, and the
#: single-instruction ``lda`` braid.
GCC_LIFE = """
.program gcc_life
.block ENTRY
    addq r31, #64,   r6     ; regset_size (t9)
    addq r31, #0,    r5     ; j (t5)
    addq r31, #32768, r1    ; basic_block_new_live_at_end (a1)
    addq r31, #40960, r2    ; basic_block_live_at_end (a0)
    addq r31, #49152, r3    ; basic_block_significant (t8)
    addq r31, #0,    r4     ; byte offset (t4)
.block LOOP
    addq r1, r4, r8         ; addq a1, t4, t0
    addq r2, r4, r9         ; addq a0, t4, t1
    addq r3, r4, r10        ; addq t8, t4, t2
    ldl  r11, 0(r8)         ; ldl t3, 0(t0)
    addl r5, #1, r5         ; addl t5, #1, t5
    ldl  r8, 0(r9)          ; ldl t0, 0(t1)
    cmpeq r6, r5, r7        ; cmpeq t9, t5, t7
    ldl  r9, 0(r10)         ; ldl t1, 0(t2)
    lda  r4, 4(r4)          ; lda t4, 4(t4)
    andnot r11, r8, r8      ; andnot t3, t0, t0
    addl r31, r8, r8        ; addl zero, t0, t0
    and  r8, r9, r9         ; and t0, t1, t1
    zapnot r9, #15, r9      ; zapnot t1, #15, t1
    cmovne r8, #1, r12      ; cmovne t0, #1, t6 (consider = 1)
    bne  r9, FOUND          ; bne t1, ...
.block BACK
    beq r7, LOOP            ; loop while j != regset_size
.block DONE
    stq r12, 0(r1)
    nop
.block FOUND
    addq r31, #1, r13       ; must_rescan = 1
    stq r13, 8(r1)
    stq r12, 16(r1)
    nop
"""

#: daxpy: y[i] = a*x[i] + y[i] — the canonical streaming FP kernel.
DAXPY = """
.program daxpy
.block ENTRY
    addq r31, #32768, r1    ; x base
    addq r31, #65536, r2    ; y base
    addq r31, #0, r4        ; i
    addq r31, #128, r5      ; n
    addq r31, #3, r6
    itoft r6, f3            ; a = 3.0
.block LOOP
    slli r4, #3, r7
    addq r1, r7, r8
    addq r2, r7, r9
    ldt  f1, 0(r8)
    ldt  f2, 0(r9)
    mult f1, f3, f1
    addt f1, f2, f2
    stt  f2, 0(r9)
    addqi r4, #1, r4
    cmplt r4, r5, r10
    bne  r10, LOOP
.block DONE
    nop
"""

#: Reduction: sum += a[i] * b[i] with a data-dependent accumulate skip.
DOT_PRODUCT = """
.program dot_product
.block ENTRY
    addq r31, #32768, r1
    addq r31, #65536, r2
    addq r31, #0, r4
    addq r31, #96, r5
    addq r31, #0, r20       ; checksum accumulator
.block LOOP
    slli r4, #3, r7
    addq r1, r7, r8
    addq r2, r7, r9
    ldq  r10, 0(r8)
    ldq  r11, 0(r9)
    mulq r10, r11, r12
    addq r20, r12, r20
    addqi r4, #1, r4
    cmplt r4, r5, r13
    bne  r13, LOOP
.block DONE
    stq r20, 0(r1)
    nop
"""

#: Pointer-chase-like loop with serial loads (mcf-flavoured behaviour).
POINTER_CHASE = """
.program pointer_chase
.block ENTRY
    addq r31, #32768, r1
    addq r31, #0, r4
    addq r31, #200, r5
    addq r31, #0, r20
.block SETUP
    ; build a linked structure: cell i points at cell (i*7+3) mod 128
    mulqi r4, #7, r7
    addqi r7, #3, r7
    andi  r7, #127, r7
    slli  r7, #3, r7
    slli  r4, #3, r8
    addq  r1, r8, r8
    stq   r7, 0(r8)
    addqi r4, #1, r4
    cmplti r4, #128, r9
    bne  r9, SETUP
.block PREP
    addq r31, #0, r6        ; cursor offset
    addq r31, #0, r4
.block CHASE
    addq r1, r6, r7
    ldq  r6, 0(r7)          ; serial dependence: next offset
    addq r20, r6, r20
    addqi r4, #1, r4
    cmplt r4, r5, r8
    bne  r8, CHASE
.block DONE
    stq r20, 8(r1)
    nop
"""

#: A checksum/hash loop (gzip/bzip2-flavoured bit manipulation).
CHECKSUM = """
.program checksum
.block ENTRY
    addq r31, #32768, r1
    addq r31, #0, r4
    addq r31, #160, r5
    addq r31, #12345, r20
.block LOOP
    slli r4, #3, r7
    addq r1, r7, r8
    ldq  r9, 0(r8)
    xor  r20, r9, r10
    slli r10, #5, r11
    srli r10, #11, r12
    bis  r11, r12, r10
    addq r10, r9, r20
    stq  r20, 0(r8)
    addqi r4, #1, r4
    cmplt r4, r5, r13
    bne  r13, LOOP
.block DONE
    stq r20, 0(r1)
    nop
"""

#: Blocked matrix multiply inner kernel: C[i][j] += A[i][k] * B[k][j] over a
#: small 8x8 tile (fully unrolled k handled by the loop).
MATMUL = """
.program matmul
.block ENTRY
    addq r31, #32768, r1    ; A
    addq r31, #40960, r2    ; B
    addq r31, #49152, r3    ; C
    addq r31, #0, r4        ; i
.block ROW
    addq r31, #0, r5        ; j
.block COL
    addq r31, #0, r6        ; k
    itoft r31, f4           ; acc = 0.0
.block DOT
    slli r4, #3, r7         ; i*8
    addq r7, r6, r8         ; i*8 + k
    slli r8, #3, r8
    addq r1, r8, r8         ; &A[i][k]
    ldt  f1, 0(r8)
    slli r6, #3, r9         ; k*8
    addq r9, r5, r10        ; k*8 + j
    slli r10, #3, r10
    addq r2, r10, r10       ; &B[k][j]
    ldt  f2, 0(r10)
    mult f1, f2, f3
    addt f4, f3, f4
    addqi r6, #1, r6
    cmplti r6, #8, r11
    bne  r11, DOT
.block STORE
    slli r4, #3, r7
    addq r7, r5, r8
    slli r8, #3, r8
    addq r3, r8, r8         ; &C[i][j]
    stt  f4, 0(r8)
    addqi r5, #1, r5
    cmplti r5, #8, r11
    bne  r11, COL
.block NEXT_ROW
    addqi r4, #1, r4
    cmplti r4, #8, r11
    bne  r11, ROW
.block DONE
    nop
"""

#: 1-D 3-point stencil sweep (the heart of mgrid/swim-style codes):
#: b[i] = 0.25*a[i-1] + 0.5*a[i] + 0.25*a[i+1].
STENCIL = """
.program stencil
.block ENTRY
    addq r31, #32768, r1    ; a
    addq r31, #40960, r2    ; b
    addq r31, #1, r4        ; i = 1
    addq r31, #126, r5      ; n-1
    addq r31, #1, r6
    itoft r6, f5            ; 1.0
    addt f5, f5, f6         ; 2.0
    addt f6, f6, f7         ; 4.0
    divt f5, f6, f8         ; 0.5
    divt f5, f7, f9         ; 0.25
.block SWEEP
    slli r4, #3, r7
    addq r1, r7, r8         ; &a[i]
    ldt  f1, -8(r8)
    ldt  f2, 0(r8)
    ldt  f3, 8(r8)
    mult f1, f9, f1
    mult f2, f8, f2
    mult f3, f9, f3
    addt f1, f2, f2
    addt f2, f3, f4
    addq r2, r7, r9
    stt  f4, 0(r9)          ; b[i]
    addqi r4, #1, r4
    cmplt r4, r5, r10
    bne  r10, SWEEP
.block DONE
    nop
"""

#: Histogram of pseudo-random bytes: read-modify-write memory traffic with
#: data-dependent addresses (bzip2/gzip-flavoured).
HISTOGRAM = """
.program histogram
.block ENTRY
    addq r31, #32768, r1    ; bins
    addq r31, #12345, r7    ; lcg state
    addq r31, #0, r4
    addq r31, #200, r5
.block LOOP
    mulqi r7, #1103515, r7
    addqi r7, #12345, r7
    srli r7, #16, r8
    andi r8, #63, r8        ; bin index
    slli r8, #3, r8
    addq r1, r8, r9         ; &bins[index]
    ldq  r10, 0(r9)
    addqi r10, #1, r10
    stq  r10, 0(r9)
    addqi r4, #1, r4
    cmplt r4, r5, r11
    bne  r11, LOOP
.block DONE
    stq r4, 512(r1)
    nop
"""

_KERNEL_SOURCES: Dict[str, str] = {
    "gcc_life": GCC_LIFE,
    "daxpy": DAXPY,
    "dot_product": DOT_PRODUCT,
    "pointer_chase": POINTER_CHASE,
    "checksum": CHECKSUM,
    "matmul": MATMUL,
    "stencil": STENCIL,
    "histogram": HISTOGRAM,
}

KERNEL_NAMES: Tuple[str, ...] = tuple(_KERNEL_SOURCES)


def kernel(name: str) -> Program:
    """Assemble one hand-written kernel by name."""
    try:
        source = _KERNEL_SOURCES[name]
    except KeyError:
        raise KeyError(
            f"unknown kernel {name!r}; choose from {KERNEL_NAMES}"
        ) from None
    return assemble(source, name=name)


def all_kernels() -> Dict[str, Program]:
    """Every hand-written kernel, assembled."""
    return {name: kernel(name) for name in KERNEL_NAMES}
