"""Machine configurations (paper Table 4).

Factory functions build the four paradigms at any issue width, with the
8-wide defaults matching the paper exactly:

* out-of-order: 8 distributed 32-entry schedulers, 256-entry register file
  (16R/8W), 3-level × 8-value bypass, 8 FUs, 23-cycle minimum misprediction
  penalty, allocate 8 / rename 16+8 operands per cycle;
* braid: 8 BEUs (32-entry FIFO, 2-entry in-order window, 2 FUs, 8-entry
  internal RF 4R/2W), 8-entry external RF (6R/3W), 1-level × 2-value bypass,
  19-cycle minimum misprediction penalty, allocate 4 / rename 8+4;
* in-order and FIFO dependence-steering baselines share the conventional
  front end.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Optional

from ..uarch.cache import MemoryHierarchyConfig
from ..uarch.regfile import RegFileSpec


class CoreKind(enum.Enum):
    """Which execution-core paradigm a configuration builds.

    Every member is backed by a registered paradigm (see
    :mod:`repro.sim.registry`); the paper's four plus the CG-OoO-style
    block-granular coarse out-of-order point between them.
    """

    OUT_OF_ORDER = "ooo"
    IN_ORDER = "inorder"
    DEP_STEER = "depsteer"
    BRAID = "braid"
    BLOCK_OOO = "blockooo"


@dataclass(frozen=True)
class FrontEndConfig:
    """Shared fetch/decode/allocate/rename front end."""

    fetch_width: int = 8
    branches_per_cycle: int = 3
    fetch_buffer: int = 64
    #: pipeline stages from fetch to dispatch (decode+allocate+rename+...)
    depth: int = 8
    #: cycles from mispredicted-branch resolution to first correct fetch
    redirect: int = 13
    alloc_width: int = 8
    rename_src_ops: int = 16
    rename_dest_ops: int = 8
    predictor: str = "perceptron"

    @property
    def min_mispredict_penalty(self) -> int:
        """Fetch-to-refetch bubble of the fastest resolving branch."""
        return self.depth + self.redirect + 2


@dataclass(frozen=True)
class MachineConfig:
    """Full configuration of one simulated machine."""

    kind: CoreKind
    name: str
    issue_width: int
    front_end: FrontEndConfig
    regfile: RegFileSpec
    bypass_levels: int
    bypass_width: int
    functional_units: int
    #: out-of-order/dep-steer: number of schedulers (FIFOs); braid: BEUs
    clusters: int = 8
    #: entries per scheduler / per BEU FIFO
    cluster_entries: int = 32
    #: braid / blockooo: entries examined per FIFO head (the braid's
    #: in-order BEU window; the block core's skip-ahead window)
    beu_window: int = 2
    #: braid: functional units per BEU
    beu_functional_units: int = 2
    #: braid: internal register file spec (per BEU)
    internal_regfile: Optional[RegFileSpec] = None
    #: braid: allow a BEU FIFO to queue the next braid behind the current one
    beu_queue_braids: bool = False
    #: braid: entries inside the BEU window issue independently ("the two
    #: entries at the head of the FIFO are examined for readiness", paper
    #: section 3.3).  False restricts the window to strictly in-order issue
    #: (ablation).
    beu_window_ooo: bool = True
    #: braid: exception-processing mode (paper section 3.4) — all but one
    #: BEU are disabled and every instruction is sent to the predetermined
    #: BEU with strictly in-order issue, turning the machine into an
    #: in-order processor for the duration of exception handling
    beu_exception_mode: bool = False
    #: braid: BEU clustering (paper section 5.2) — BEUs are grouped into
    #: clusters of this size (0 disables); values crossing clusters pay
    #: ``inter_cluster_delay`` extra cycles
    beu_cluster_size: int = 0
    inter_cluster_delay: int = 1
    #: register-file entry policy: True (default) = staging file — an entry
    #: is held from issue to writeback and the value then drains to an
    #: architectural backing file (checkpoint recovery makes early reuse
    #: safe; this matches the paper's Figure 5/6 sweeps, where even 8-entry
    #: files remain functional).  False = conventional merged file (entry
    #: held from dispatch to retirement).
    rf_alloc_at_issue: bool = True
    #: maximum in-flight branches (checkpoints)
    max_branches: int = 48
    #: outstanding cache-miss limit (MSHRs), shared by all paradigms
    mshrs: int = 8
    #: load/store queue capacity (in-flight memory operations)
    lsq_entries: int = 64
    #: reorder-window safety cap (instructions in flight)
    max_in_flight: int = 512
    #: retirement watchdog: raise :class:`~repro.sim.core.SimulationHang`
    #: when no instruction retires for this many consecutive cycles.  The
    #: default is far above any legitimate retirement gap (the worst case —
    #: a ROB head waiting out a main-memory miss — is ~400 cycles), so
    #: correct runs never trip it; fault-injection campaigns lower it to
    #: classify hangs quickly.
    max_idle_cycles: int = 200_000
    memory: MemoryHierarchyConfig = field(default_factory=MemoryHierarchyConfig)

    @property
    def window_capacity(self) -> int:
        return self.clusters * self.cluster_entries

    def renamed(self, name: str) -> "MachineConfig":
        return replace(self, name=name)


def ooo_config(width: int = 8, **overrides) -> MachineConfig:
    """Aggressive conventional out-of-order machine at ``width``."""
    front = FrontEndConfig(
        fetch_width=width,
        alloc_width=width,
        rename_src_ops=2 * width,
        rename_dest_ops=width,
        depth=8,
        redirect=13,
    )
    config = MachineConfig(
        kind=CoreKind.OUT_OF_ORDER,
        name=f"ooo-{width}w",
        issue_width=width,
        front_end=front,
        regfile=RegFileSpec(entries=32 * width, read_ports=2 * width,
                            write_ports=width),
        bypass_levels=3,
        bypass_width=width,
        functional_units=width,
        clusters=width,
        cluster_entries=32,
        max_in_flight=width * 32,
    )
    return replace(config, **overrides) if overrides else config


def inorder_config(width: int = 8, **overrides) -> MachineConfig:
    """In-order machine with the conventional front end."""
    base = ooo_config(width)
    config = replace(
        base,
        kind=CoreKind.IN_ORDER,
        name=f"inorder-{width}w",
        clusters=1,
        cluster_entries=64,
        max_in_flight=256,
    )
    return replace(config, **overrides) if overrides else config


def depsteer_config(width: int = 8, **overrides) -> MachineConfig:
    """FIFO-based dependence-steering machine (Palacharla et al. style)."""
    base = ooo_config(width)
    config = replace(
        base,
        kind=CoreKind.DEP_STEER,
        name=f"depsteer-{width}w",
    )
    return replace(config, **overrides) if overrides else config


def braid_config(width: int = 8, **overrides) -> MachineConfig:
    """The braid microarchitecture at ``width`` (paper defaults at 8)."""
    front = FrontEndConfig(
        fetch_width=width,
        alloc_width=max(1, width // 2),
        rename_src_ops=width,
        rename_dest_ops=max(1, width // 2),
        depth=6,
        redirect=11,
    )
    config = MachineConfig(
        kind=CoreKind.BRAID,
        name=f"braid-{width}w",
        issue_width=width,
        front_end=front,
        regfile=RegFileSpec(entries=8, read_ports=6, write_ports=3),
        bypass_levels=1,
        bypass_width=2,
        functional_units=2 * width,  # 2 per BEU
        clusters=width,              # number of BEUs
        cluster_entries=32,          # FIFO entries per BEU
        beu_window=2,
        beu_functional_units=2,
        internal_regfile=RegFileSpec(entries=8, read_ports=4, write_ports=2),
        rf_alloc_at_issue=True,
        max_in_flight=width * 32,
    )
    return replace(config, **overrides) if overrides else config
