"""One-call simulation entry points."""

from __future__ import annotations

import os
from typing import Optional

from .config import MachineConfig
from .core import TimingCore
from .registry import descriptor_for
from .results import SimResult
from .workload import PreparedWorkload

_ENV_VALIDATE = "REPRO_VALIDATE"


def build_core(workload: PreparedWorkload, config: MachineConfig) -> TimingCore:
    """Instantiate the timing core registered for ``config.kind``."""
    return descriptor_for(config.kind).core_class(workload, config)


def _env_validation():
    """Resolve ``REPRO_VALIDATE`` lazily — and pay nothing when unset.

    The common path is one dict lookup; :mod:`repro.validate` is only
    imported when the variable actually requests checking.
    """
    if not os.environ.get(_ENV_VALIDATE, "").strip():
        return None
    from ..validate import validation_from_env

    return validation_from_env()


#: the fidelity ladder, most to least detailed
FIDELITIES = ("exact", "sampled", "interval")


def simulate(
    workload: PreparedWorkload,
    config: MachineConfig,
    max_cycles: Optional[int] = None,
    sampling=None,
    validation=None,
    observe=None,
    fidelity: Optional[str] = None,
    interval=None,
    progress=None,
) -> SimResult:
    """Run ``workload`` on the machine described by ``config``.

    ``fidelity`` picks the tier explicitly: ``"exact"`` simulates every
    instruction (and ignores ``sampling``), ``"sampled"`` measures every
    stride-th unit (``sampling`` or the defaults), ``"interval"`` measures
    only a few calibration windows and predicts the rest analytically
    (``interval``, an :class:`~repro.sim.interval.IntervalConfig`, or the
    defaults).  ``None`` (the default) keeps the legacy rule: sampled
    when ``sampling`` is given, exact otherwise.

    ``sampling`` (a :class:`~repro.sim.sampling.SamplingConfig`) switches to
    interval-sampled execution with an extrapolated cycle estimate; ``None``
    (the default) simulates every instruction exactly.

    ``validation`` (a :class:`~repro.validate.ValidationConfig`) attaches
    lockstep and/or invariant checkers to the run; the default consults
    ``REPRO_VALIDATE`` and attaches nothing when it is unset, so ordinary
    runs pay no validation cost.  Divergences raise
    :class:`~repro.validate.DivergenceError` /
    :class:`~repro.validate.InvariantViolation`.

    ``observe`` (a :class:`~repro.obs.Observer`) attaches the observability
    layer — CPI stall attribution, pipeline tracing, telemetry — and
    publishes its data onto the returned result.  ``None`` (the default)
    keeps the timing loop on the unhooked fast path.

    ``progress`` (a callable, see :meth:`TimingCore.run
    <repro.sim.core.TimingCore.run>`) receives periodic
    ``(retired, total, cycle)`` callbacks on the exact tier — the
    service's worker heartbeats ride it.  Sampled/interval tiers run
    their own window schedules and ignore it.
    """
    if validation is None:
        validation = _env_validation()
    if fidelity is None:
        fidelity = "sampled" if sampling is not None else "exact"
    if fidelity not in FIDELITIES:
        raise ValueError(
            f"unknown fidelity {fidelity!r}; choose from {FIDELITIES}"
        )
    if fidelity == "interval":
        from .interval import simulate_interval

        if max_cycles is not None:
            return simulate_interval(
                workload, config, interval=interval, max_cycles=max_cycles,
                validation=validation, observe=observe,
            )
        return simulate_interval(
            workload, config, interval=interval, validation=validation,
            observe=observe,
        )
    if fidelity == "sampled":
        from .sampling import SamplingConfig, simulate_sampled

        if sampling is None:
            sampling = SamplingConfig()
        if max_cycles is not None:
            return simulate_sampled(
                workload, config, sampling, max_cycles=max_cycles,
                validation=validation, observe=observe,
            )
        return simulate_sampled(
            workload, config, sampling, validation=validation,
            observe=observe,
        )
    core = build_core(workload, config)
    session = None
    if validation is not None and validation.enabled:
        from ..validate import attach_validation

        session = attach_validation(core, workload, validation)
    if observe is not None:
        observe.attach(core)
    if max_cycles is not None:
        result = core.run(max_cycles=max_cycles, progress=progress)
    else:
        result = core.run(progress=progress)
    if session is not None:
        session.finish(expect_full=True)
    if observe is not None:
        observe.finalize(result)
    return result
