"""One-call simulation entry points."""

from __future__ import annotations

from typing import Dict, Optional, Type

from .braidcore import BraidCore
from .config import CoreKind, MachineConfig
from .core import TimingCore
from .depsteer import DependenceSteeringCore
from .inorder import InOrderCore
from .ooo import OutOfOrderCore
from .results import SimResult
from .workload import PreparedWorkload

_CORE_CLASSES: Dict[CoreKind, Type[TimingCore]] = {
    CoreKind.OUT_OF_ORDER: OutOfOrderCore,
    CoreKind.IN_ORDER: InOrderCore,
    CoreKind.DEP_STEER: DependenceSteeringCore,
    CoreKind.BRAID: BraidCore,
}


def build_core(workload: PreparedWorkload, config: MachineConfig) -> TimingCore:
    """Instantiate the timing core matching ``config.kind``."""
    return _CORE_CLASSES[config.kind](workload, config)


def simulate(
    workload: PreparedWorkload,
    config: MachineConfig,
    max_cycles: Optional[int] = None,
    sampling=None,
) -> SimResult:
    """Run ``workload`` on the machine described by ``config``.

    ``sampling`` (a :class:`~repro.sim.sampling.SamplingConfig`) switches to
    interval-sampled execution with an extrapolated cycle estimate; ``None``
    (the default) simulates every instruction exactly.
    """
    if sampling is not None:
        from .sampling import simulate_sampled

        if max_cycles is not None:
            return simulate_sampled(
                workload, config, sampling, max_cycles=max_cycles
            )
        return simulate_sampled(workload, config, sampling)
    core = build_core(workload, config)
    if max_cycles is not None:
        return core.run(max_cycles=max_cycles)
    return core.run()
