"""Pipeline visualization: per-instruction stage timelines.

Enable tracing on a core, run it, and render a gem5-O3-style pipeview::

    core = build_core(workload, braid_config(8))
    core.trace_log = []
    core.run()
    print(render_pipeview(core.trace_log, limit=30))

Each line shows one dynamic instruction and its journey through the
pipeline: ``f`` fetch, ``d`` dispatch, ``i`` issue, ``=`` executing,
``c`` complete, ``r`` retire.  This is a debugging/teaching aid: stalls
(distribute stalls, busy-bit waits, port conflicts) appear as long ``d..i``
gaps, misprediction bubbles as fetch-time jumps between rows.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence


class PipeviewError(ValueError):
    """Raised when rendering is requested without trace data."""


def _stage_marks(winst) -> List[tuple]:
    marks = [(winst.fetch_cycle, "f")]
    if winst.dispatch_cycle >= 0:
        marks.append((winst.dispatch_cycle, "d"))
    if winst.issue_cycle is not None:
        marks.append((winst.issue_cycle, "i"))
    if winst.complete_cycle is not None:
        marks.append((winst.complete_cycle, "c"))
    if winst.retire_cycle is not None:
        marks.append((winst.retire_cycle, "r"))
    return marks


def render_pipeview(
    trace_log: Optional[Sequence],
    start: int = 0,
    limit: int = 40,
    width: int = 100,
) -> str:
    """Render ``limit`` instructions starting at index ``start``.

    The time axis is clipped to ``width`` columns beginning at the first
    shown instruction's fetch cycle; events beyond the window render as
    ``>`` at the right edge.
    """
    if not trace_log:
        raise PipeviewError(
            "no trace: set `core.trace_log = []` before core.run()"
        )
    window = list(trace_log[start:start + limit])
    if not window:
        raise PipeviewError(f"trace has no instructions at offset {start}")

    origin = min(w.fetch_cycle for w in window)
    header = (
        f"cycles {origin}..{origin + width - 1} "
        f"(f=fetch d=dispatch i=issue ==execute c=complete r=retire)"
    )
    lines = [header]
    for winst in window:
        lane = [" "] * width
        marks = _stage_marks(winst)
        # execution shading between issue and completion
        if winst.issue_cycle is not None and winst.complete_cycle is not None:
            for cycle in range(winst.issue_cycle + 1, winst.complete_cycle):
                position = cycle - origin
                if 0 <= position < width:
                    lane[position] = "="
        overflow = False
        for cycle, mark in marks:
            position = cycle - origin
            if position >= width:
                overflow = True
                continue
            if position >= 0:
                lane[position] = mark
        if overflow:
            lane[width - 1] = ">"
        text = winst.dyn.inst.opcode.name
        lines.append(f"{winst.seq:6d} {text:10s} |{''.join(lane)}|")
    return "\n".join(lines)


def stage_latencies(trace_log: Iterable) -> dict:
    """Average per-stage occupancy over a trace (fetch->dispatch->issue->
    complete->retire), a compact summary of where time goes."""
    sums = {"front_end": 0, "wait_issue": 0, "execute": 0, "wait_retire": 0}
    count = 0
    for winst in trace_log:
        if winst.retire_cycle is None or winst.issue_cycle is None:
            continue
        sums["front_end"] += winst.dispatch_cycle - winst.fetch_cycle
        sums["wait_issue"] += winst.issue_cycle - winst.dispatch_cycle
        sums["execute"] += winst.complete_cycle - winst.issue_cycle
        sums["wait_retire"] += winst.retire_cycle - winst.complete_cycle
        count += 1
    if count == 0:
        return {key: 0.0 for key in sums}
    return {key: value / count for key, value in sums.items()}
