"""The shared pipeline kernel every execution-core paradigm plugs into.

The :class:`TimingCore` base implements everything the paper holds constant
across paradigms — fetch (width-limited, ≤3 branches/cycle, I-cache and
misprediction bubbles), decode/allocate/rename bandwidth, register-file
entry allocation, dependence tracking, the load/store queue, writeback port
arbitration, bypass-network lifetime/bandwidth, checkpoints, and in-order
retirement — plus the paradigm-independent machinery layered on since:
the event-driven kernel and its ``_next_event``/``issue_horizon``
contract, the invariant/fault/trace hook family, and the resume /
drain / fast-forward seams the sampled and interval engines compose.
Subclasses supply only the execution-core behaviour the paper varies:
where a dispatched instruction waits (:meth:`TimingCore.accept`) and how
ready instructions are selected for issue (:meth:`TimingCore.issue_stage`)
— usually by composing the shared head-scan helpers
(:meth:`TimingCore.issue_in_order`, :meth:`TimingCore.issue_skipahead`,
:meth:`TimingCore.head_issue_horizon`) rather than re-implementing the
scan — and declare their cross-layer contract (fault structures and
injectors, complexity-model terms) as class attributes the registry
(:mod:`repro.sim.registry`), fault layer, and analyses consume.

Per-cycle stage order is ``complete → retire → issue → dispatch → fetch``,
so a value completing in cycle *t* is bypassable by an issue in cycle *t*,
and an instruction never moves through two stages in one cycle.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Callable, Dict, List, Optional, Tuple

from ..isa.registers import Register
from ..uarch.bypass import BypassNetwork
from ..uarch.checkpoint import CheckpointManager
from ..uarch.funit import FunctionalUnitPool
from ..uarch.lsq import LoadStoreQueue
from .config import MachineConfig
from .results import SimResult, StallCounters
from .workload import DecodedInst, PreparedWorkload


class SimulationError(RuntimeError):
    """Raised when a simulation wedges (exceeds the cycle safety cap)."""


#: ``WInst.issue_wake`` sentinel: the instruction is parked on an older
#: unexecuted store's waiter list and has no computable wake cycle — the
#: store's own issue (an event some other publisher already covers) will
#: rewrite the wake to the store's completion cycle.  Horizon publishers
#: treat a parked candidate like a pending one (completion-driven).
PARKED = 1 << 62


def flip_bit(value: int, bit: int) -> int:
    """Single-event-upset primitive shared by the per-paradigm fault
    injectors (:attr:`TimingCore.fault_injectors`) and the common ones
    in :mod:`repro.faults.inject`."""
    return value ^ (1 << bit)


class SimulationHang(SimulationError):
    """Retirement stopped advancing for ``max_idle_cycles`` straight cycles.

    Unlike the coarse ``max_cycles`` safety cap (a whole-run budget that a
    wedged core only hits after minutes of silent spinning), this watchdog
    fires as soon as *no instruction retires* for the configured window and
    carries a diagnostic snapshot: the cycle, the ROB head, and a summary
    of every in-flight population — enough to see *which* structure wedged
    without re-running under a debugger.  Fault-injection campaigns
    (:mod:`repro.faults`) rely on it to classify hangs deterministically.
    """

    def __init__(
        self,
        machine: str,
        benchmark: str,
        cycle: int,
        idle_cycles: int,
        retired: int,
        target: int,
        rob_head: str,
        in_flight: Dict[str, int],
        stall_cause: str = "unknown",
        stall_snapshot: Optional[Dict[str, int]] = None,
    ) -> None:
        self.machine = machine
        self.benchmark = benchmark
        self.cycle = cycle
        self.idle_cycles = idle_cycles
        self.retired = retired
        self.target = target
        self.rob_head = rob_head
        self.in_flight = dict(in_flight)
        #: stall-attribution label (repro.obs taxonomy) for the frozen
        #: idle window, and the window accounted under that label.  The
        #: machine state does not change during an idle window, so one
        #: classification covers all ``idle_cycles`` cycles of it.
        self.stall_cause = stall_cause
        self.stall_snapshot = dict(stall_snapshot or {stall_cause: idle_cycles})
        summary = ", ".join(f"{k}={v}" for k, v in self.in_flight.items())
        super().__init__(
            f"{machine} on {benchmark}: no retirement for {idle_cycles} "
            f"cycles (cycle {cycle}, retired {retired}/{target}, "
            f"waiting on {stall_cause}, ROB head {rob_head}; {summary})"
        )


class WInst:
    """One in-flight dynamic instruction."""

    __slots__ = (
        "dyn", "facts", "seq", "deps", "arch_reads", "waiters", "pending",
        "fetch_cycle", "dispatch_ready", "dispatch_cycle", "issue_cycle",
        "complete_cycle", "writeback_cycle", "done", "retired", "captured",
        "dest_external", "dest_internal", "latency", "start",
        "is_load", "is_store", "is_branch", "mispredicted", "mem_word",
        "cluster", "ext_src_ops", "ext_dest_ops", "retire_cycle",
        "issue_wake",
    )

    def __init__(self, dyn, facts: DecodedInst, fetch_cycle: int,
                 dispatch_ready: int, mispredicted: bool,
                 mem_word: Optional[int] = None) -> None:
        self.dyn = dyn
        self.facts = facts
        self.seq = dyn.seq
        self.deps: List[Tuple["WInst", bool]] = []
        self.arch_reads = 0
        self.waiters: List["WInst"] = []
        self.pending = 0
        self.captured = False
        self.fetch_cycle = fetch_cycle
        self.dispatch_ready = dispatch_ready
        self.dispatch_cycle = -1
        self.issue_cycle: Optional[int] = None
        self.complete_cycle: Optional[int] = None
        self.writeback_cycle: Optional[int] = None
        self.done = False
        self.retired = False
        self.retire_cycle: Optional[int] = None
        self.dest_external = facts.dest_external
        self.dest_internal = facts.dest_internal
        self.latency = facts.latency
        self.start = facts.start
        self.is_load = facts.is_load
        self.is_store = facts.is_store
        self.is_branch = facts.is_branch
        self.mispredicted = mispredicted
        self.mem_word = (
            mem_word if mem_word is not None
            else (dyn.mem_addr & ~0x7) if dyn.mem_addr is not None else None
        )
        self.cluster = -1
        self.ext_src_ops = facts.ext_src_ops
        self.ext_dest_ops = facts.ext_dest_ops
        #: earliest cycle a failed issue attempt could possibly succeed
        #: (a certified lower bound published by try_issue's failure
        #: classification; 0 = unknown, retry every cycle; PARKED = waiting
        #: on an unexecuted store).  Head-scanning cores skip try_issue
        #: while ``cycle < issue_wake``; the skipped calls are exactly
        #: calls that would have failed without touching any exported
        #: counter, so timing and fingerprints are unchanged.
        self.issue_wake = 0

    def __repr__(self) -> str:
        def at(cycle: Optional[int]) -> str:
            return "-" if cycle is None or cycle < 0 else str(cycle)

        return (
            f"WInst(seq={self.seq} {self.dyn.inst.opcode.name}"
            f" f={self.fetch_cycle} d={at(self.dispatch_cycle)}"
            f" i={at(self.issue_cycle)} r={at(self.retire_cycle)})"
        )


class TimingCore:
    """Base class of every timing-core paradigm (see the module docstring).

    Concrete paradigms register a :class:`~repro.sim.registry.CoreDescriptor`
    and declare their cross-layer contract through the class attributes and
    classmethods below; the defaults describe a broadcast-wakeup machine, so
    a conventional out-of-order paradigm overrides almost nothing.
    """

    # ------------------------------------------------- declarative contract
    #
    # Consumed by repro.faults (injection), repro.analysis (complexity /
    # energy / AVF weights), and the registry's registration-time
    # validation.  Keeping these on the class — next to the structures they
    # describe — is what lets a new paradigm live in one file.

    #: paradigm-specific injectable structures beyond the common set
    #: (rob/regfile/lsq/checkpoints/branchpred, owned by repro.faults);
    #: every name must have a matching entry in :attr:`fault_injectors`
    fault_structures: Tuple[str, ...] = ()
    #: structure name -> ``injector(core, rng) -> Optional[str]`` for the
    #: structures in :attr:`fault_structures` (same calling convention as
    #: the common injectors in :mod:`repro.faults.inject`)
    fault_injectors: Dict[str, Callable] = {}
    #: False when the paradigm issues without renaming architectural
    #: registers (zero rename map-table ports in the complexity model)
    renames_registers = True
    #: True when a branch checkpoint must cover speculative register
    #: *values* beyond the architectural state (conventional merged /
    #: staging files); False when in-flight values are recoverable without
    #: checkpointing them (in-order, or the braid's internal values)
    checkpoints_value_entries = True

    @classmethod
    def fault_state_bits(cls, config: MachineConfig,
                         weights: Dict[str, int]) -> Dict[str, int]:
        """Storage bits of each paradigm-specific injectable structure.

        Keys must cover :attr:`fault_structures`; ``weights`` carries the
        analysis layer's per-entry bit constants (``scheduler_entry``,
        ``beu_fifo_entry``, ``value_width``) so the first-order hardware
        model stays in :mod:`repro.analysis.complexity` while the formula
        — which structures exist and how they scale — stays with the
        paradigm.  The default models one scheduler entry per window slot.
        """
        return {
            "scheduler": (
                config.clusters * config.cluster_entries
                * weights["scheduler_entry"]
            ),
        }

    @classmethod
    def scheduler_comparators(cls, config: MachineConfig) -> int:
        """Wakeup CAM comparators of the issue structure (complexity model).

        The default is full broadcast: every window entry compares both
        source tags against every result bus, every cycle.  FIFO-window
        paradigms override to 0 (readiness is checked only at heads);
        limited-wakeup paradigms scale by their examined-entry count.
        """
        return (
            config.clusters * config.cluster_entries * 2 * config.issue_width
        )

    @classmethod
    def wakeup_energy_entries(cls, config: MachineConfig) -> int:
        """Window entries one completing instruction's tag can touch
        (per-event wakeup energy model).  Broadcast reaches every entry;
        head-scanning paradigms override with their examined-entry count.
        """
        return config.clusters * config.cluster_entries

    #: Event-driven kernel switch.  True (the default) lets ``_run_until``
    #: jump from the current cycle straight to the next cycle at which any
    #: stage can act (see :meth:`_next_event` for the contract each
    #: structure honors).  Setting it False on an instance restores the
    #: strictly ticked loop; both modes are bit-identical in every
    #: architectural counter (tests/test_determinism.py pins this), so the
    #: flag exists for A/B benchmarking and as the reference semantics.
    event_kernel = True

    def __init__(self, workload: PreparedWorkload, config: MachineConfig) -> None:
        self.workload = workload
        self.config = config
        self.trace = workload.trace
        self.decoded = workload.decode()
        self.mispredicted = workload.mispredicted
        self.load_latency = workload.load_latency
        self.ifetch_extra = workload.ifetch_extra
        self.l1d_latency = config.memory.l1d_latency

        # Position-indexed replay arrays (shared, read-only; see
        # repro.sim.workload.ReplayFacts).  The per-seq dict oracles above
        # stay exposed for introspection and fault injection; the hot loop
        # reads only these lists.
        replay = workload.replay()
        self.replay = replay
        self._dep_rows = replay.deps
        self._arch_rows = replay.arch_reads
        self._insertable = replay.insertable
        self._evictions = replay.evictions
        self._ifetch_extra_row = replay.ifetch_extra
        self._load_latency_row = replay.load_latency
        self._mem_word_row = replay.mem_word
        self._store_conflict_row = replay.store_conflict

        # Config facts hoisted out of the per-cycle path.  MachineConfig is
        # frozen, so these can never go stale.
        front = config.front_end
        self._front_depth = front.depth
        self._fetch_width = front.fetch_width
        self._branches_per_cycle = front.branches_per_cycle
        self._fetch_cap = front.fetch_buffer
        self._redirect_penalty = front.redirect
        self._alloc_width = front.alloc_width
        self._rename_src_budget = front.rename_src_ops
        self._rename_dest_budget = front.rename_dest_ops
        self._max_in_flight = config.max_in_flight
        self._lsq_entries = config.lsq_entries
        self._mshrs = config.mshrs
        self._rf_alloc_at_issue = config.rf_alloc_at_issue
        self._issue_width = config.issue_width

        self.rf = config.regfile.build()
        self.bypass = BypassNetwork(config.bypass_levels, config.bypass_width)
        #: bypass lifetime in cycles, or -1 for an unusable network — lets
        #: try_issue test coverage as ``cycle - visible <= _bypass_life``
        #: without a method call (BypassNetwork is built once, never swapped)
        self._bypass_life = (
            config.bypass_levels
            if config.bypass_levels > 0 and config.bypass_width > 0
            else -1
        )
        #: True when this core never adds inter-cluster forwarding delay
        #: (dep_delay is the base-class zero), letting the issue path skip
        #: one virtual call per external operand
        self._uniform_dep_delay = type(self).dep_delay is TimingCore.dep_delay
        #: True when the subclass actually observes readiness notifications
        #: (the base hook is a no-op, not worth a call per woken consumer)
        self._has_on_ready = type(self).on_ready is not TimingCore.on_ready
        self.lsq = LoadStoreQueue(forward_latency=self.l1d_latency)
        self.checkpoints = CheckpointManager(
            capacity=config.max_branches,
            state_words_per_checkpoint=64,
        )

        # Fetch state.  ``_fetch_limit`` is the trace index fetch stops at; a
        # full run leaves it at the trace length, the sampled-execution
        # engine (repro.sim.sampling) moves it window by window.
        self._next_fetch = 0
        self._fetch_limit = len(self.trace)
        self._fetch_buffer: deque = deque()
        self._fetch_blocked = False
        self._fetch_resume = 0

        # Live-producer table: trace index -> in-flight WInst.  Dispatch
        # resolves each instruction's static dependence row against it;
        # entries are inserted only for producers some later row references
        # and evicted by the precomputed lists, so it stays bounded by the
        # register namespace.  (Replaces the per-config register-key
        # scoreboards the dispatch stage used to rebuild every run.)
        self._live: Dict[int, WInst] = {}

        # Completion events, writeback queue, reorder buffer.
        self._events: List[Tuple[int, int, WInst]] = []
        self._miss_releases: List[Tuple[int, int]] = []
        self._outstanding_misses = 0
        self._mem_in_flight = 0
        self._pending_writeback: deque = deque()
        self._rob: deque = deque()

        self.stalls = StallCounters()
        self._issued_count = 0
        self._retired_count = 0
        #: failure classification of the most recent try_issue call:
        #: 0 = per-cycle resource or unknown (retry next cycle), a
        #: positive cycle = certified earliest-possible-success lower
        #: bound, -1 = blocked on an unexecuted older store (the entry is
        #: left in ``_issue_block_store`` for the caller to park on)
        self._issue_wake = 0
        self._issue_block_store = None
        #: dispatched-but-unissued instructions whose operands are all ready;
        #: while zero, issue_stage provably cannot act (see _skip_idle)
        self._ready_unissued = 0
        #: set to a list before run() to record every dispatched WInst in
        #: program order (consumed by repro.sim.pipeview)
        self.trace_log = None

        # Validation hooks (repro.validate).  All default to None and the
        # hot loop never pays for them: the retire/skip hooks cost one
        # local None-test per retirement / fast-forward, and a non-None
        # invariant hook reroutes _run_until to the instrumented loop, so
        # the tight loop itself is untouched when validation is off.
        #: called as ``hook(winst, cycle)`` for every retired instruction
        self.retire_hook = None
        #: called as ``hook(old_index, new_index)`` on every fast_forward
        self.skip_hook = None
        #: called as ``hook(core, cycle)`` once per simulated cycle
        self.invariant_hook = None
        #: fault-injection hook (repro.faults): called as ``hook(core,
        #: cycle)`` once per simulated cycle, *before* the cycle's stages,
        #: so an injected bit flip is visible to every stage of that cycle.
        #: Like invariant_hook it reroutes _run_until to the instrumented
        #: twin, so the fast loop pays nothing while it is None.
        self.fault_hook = None
        #: observability hook (repro.obs): called as ``hook(core, cycle)``
        #: once per simulated cycle, *after* the cycle's stages, so the
        #: observer sees end-of-cycle state (what retired, what stalled).
        #: Reroutes _run_until to the instrumented twin like the other
        #: per-cycle hooks; the twin single-steps (never event-skips), so
        #: an attached observer fires on every architectural cycle.  Gap
        #: accounting in observers remains only for sampled execution's
        #: fast-forwarded windows (``skip_to``).
        self.trace_hook = None

    # ----------------------------------------------------------------- hooks
    def accept(self, winst: WInst, cycle: int) -> bool:
        """Place a dispatching instruction into the execution core.

        Return False to stall dispatch this cycle (structure full)."""
        raise NotImplementedError

    def issue_stage(self, cycle: int) -> None:
        """Select and issue ready instructions (subclass policy)."""
        raise NotImplementedError

    def on_ready(self, winst: WInst, cycle: int) -> None:
        """All register dependences of ``winst`` are complete (optional hook)."""

    def dep_delay(self, producer: WInst, consumer: WInst) -> int:
        """Extra cycles before ``consumer`` may observe ``producer``'s value
        (e.g. cross-cluster forwarding in a clustered braid machine)."""
        return 0

    # ------------------------------------------------------------------- run
    def run(
        self, max_cycles: int = 100_000_000, progress=None
    ) -> SimResult:
        """Simulate until every trace instruction retires; returns the result.

        ``progress`` (optional) is called as ``progress(retired, total,
        cycle)`` every ``progress.chunk`` retired instructions (default
        4096), threaded through the resumable :meth:`_run_until` seam:
        consecutive calls with increasing targets compose into exactly
        the single-call trajectory, so a progress-observed run is
        bit-identical to an unobserved one and the hot loop itself stays
        untouched (the throttling, if any, lives in the callback).
        """
        total = len(self.trace)
        if progress is None:
            cycle = self._run_until(total, 0, max_cycles)
        else:
            chunk = max(1, int(getattr(progress, "chunk", 4096)))
            cycle = 0
            progress(0, total, 0)
            while self._retired_count < total:
                target = min(total, self._retired_count + chunk)
                cycle = self._run_until(target, cycle, max_cycles)
                progress(self._retired_count, total, cycle)
        result = SimResult(
            benchmark=self.workload.name,
            machine=self.config.name,
            cycles=cycle,
            instructions=total,
            branches=self.workload.stats.branches,
            mispredicts=len(self.mispredicted),
            issued=self._issued_count,
            stalls=self.stalls,
        )
        self.attach_activity(result)
        return result

    def _run_until(
        self, target_retired: int, cycle: int, max_cycles: int
    ) -> int:
        """Advance the machine until ``target_retired`` instructions retired.

        Returns the cycle counter after the final increment, so consecutive
        calls with increasing targets compose into exactly the trajectory a
        single call would take (the loop checks only its entry condition).
        This is the resumability seam the sampled-execution engine uses:
        it alternates ``_run_until`` over detailed windows with
        :meth:`fast_forward` over the skipped gaps.
        """
        if (
            self.invariant_hook is not None
            or self.fault_hook is not None
            or self.trace_hook is not None
        ):
            return self._run_until_checked(target_retired, cycle, max_cycles)
        start_cycle = cycle
        idle_limit = self.config.max_idle_cycles
        watch_cycle = cycle
        watch_retired = self._retired_count
        complete_stage = self.complete_stage
        retire_stage = self.retire_stage
        issue_stage = self.issue_stage
        dispatch_stage = self.dispatch_stage
        fetch_stage = self.fetch_stage
        issue_horizon = self.issue_horizon
        next_event = self._next_event
        skip = self.event_kernel
        events = self._events
        miss_releases = self._miss_releases
        pending_writeback = self._pending_writeback
        rob = self._rob
        buffer = self._fetch_buffer
        fetch_cap = self._fetch_cap
        fetch_limit = self._fetch_limit
        # Each stage is entered only when its cheap guard says it can act;
        # the guards replicate the stages' own first-line early-outs, so a
        # skipped call is exactly a call that would have done nothing.
        while self._retired_count < target_retired:
            if cycle - start_cycle > max_cycles:
                raise SimulationError(
                    f"{self.config.name} on {self.workload.name}: no forward "
                    f"progress after {max_cycles} cycles "
                    f"(retired {self._retired_count}/{target_retired})"
                )
            # Retirement watchdog: one conditional per cycle in the common
            # case.  The inner check runs only once per idle_limit window,
            # so a wedge is detected within at most two windows.
            if cycle - watch_cycle > idle_limit:
                if self._retired_count == watch_retired:
                    raise self._hang_error(
                        cycle, cycle - watch_cycle, target_retired
                    )
                watch_cycle = cycle
                watch_retired = self._retired_count
            # Event-driven kernel: when no stage can act this cycle, jump
            # straight to the earliest published next-activity cycle.  With
            # ready-but-unissued instructions in flight the subclass
            # publisher must certify an issue horizon — but its structure
            # scan is only worth paying once the O(1) guards show nothing
            # else can act right now.
            if skip and not pending_writeback:
                if not self._ready_unissued:
                    cycle = next_event(cycle)
                elif (
                    not (events and events[0][0] <= cycle)
                    and not (buffer and buffer[0].dispatch_ready <= cycle)
                    and not (
                        rob
                        and (head := rob[0]).done
                        and head.complete_cycle < cycle
                    )
                    and not (
                        not self._fetch_blocked
                        and cycle >= self._fetch_resume
                        and self._next_fetch < fetch_limit
                        and len(buffer) < fetch_cap
                    )
                ):
                    horizon = issue_horizon(cycle)
                    if horizon is None or horizon > cycle:
                        cycle = next_event(cycle, horizon)
            if (
                pending_writeback
                or (events and events[0][0] <= cycle)
                or (miss_releases and miss_releases[0][0] <= cycle)
            ):
                complete_stage(cycle)
            if rob:
                head = rob[0]
                if head.done and head.complete_cycle < cycle:
                    retire_stage(cycle)
            if self._ready_unissued:
                issue_stage(cycle)
            if buffer and buffer[0].dispatch_ready <= cycle:
                dispatch_stage(cycle)
            if (
                not self._fetch_blocked
                and cycle >= self._fetch_resume
                and self._next_fetch < fetch_limit
                and len(buffer) < fetch_cap
            ):
                fetch_stage(cycle)
            cycle += 1
        return cycle

    def _run_until_checked(
        self, target_retired: int, cycle: int, max_cycles: int
    ) -> int:
        """``_run_until`` with the per-cycle hooks enabled.

        Hooks force single-stepping: this loop never skips a cycle, so an
        attached fault/trace/invariant hook fires on every architectural
        cycle — injections can land anywhere, observers see every stall
        cycle first-hand, and PR 5's CPI attribution needs no gap
        accounting.  Timing-identical to the fast loop all the same: a
        cycle the event kernel would skip mutates no state (that is the
        skip's precondition), so stepping through it one cycle at a time
        produces the same trajectory, just slower.  Kept as a separate
        loop so the uninstrumented path pays nothing for the hooks.
        """
        hook = self.invariant_hook
        start_cycle = cycle
        idle_limit = self.config.max_idle_cycles
        watch_cycle = cycle
        watch_retired = self._retired_count
        front = self.config.front_end
        while self._retired_count < target_retired:
            if cycle - start_cycle > max_cycles:
                raise SimulationError(
                    f"{self.config.name} on {self.workload.name}: no forward "
                    f"progress after {max_cycles} cycles "
                    f"(retired {self._retired_count}/{target_retired})"
                )
            if cycle - watch_cycle > idle_limit:
                if self._retired_count == watch_retired:
                    raise self._hang_error(
                        cycle, cycle - watch_cycle, target_retired
                    )
                watch_cycle = cycle
                watch_retired = self._retired_count
            fault = self.fault_hook
            if fault is not None:
                fault(self, cycle)
            self.complete_stage(cycle)
            self.retire_stage(cycle)
            self.issue_stage(cycle)
            self.dispatch_stage(cycle)
            if (
                not self._fetch_blocked
                and cycle >= self._fetch_resume
                and self._next_fetch < self._fetch_limit
                and len(self._fetch_buffer) < front.fetch_buffer
            ):
                self.fetch_stage(cycle)
            trace = self.trace_hook
            if trace is not None:
                trace(self, cycle)
            if hook is not None:
                hook(self, cycle)
            cycle += 1
        return cycle

    def _hang_error(self, cycle: int, idle_cycles: int,
                    target: int) -> SimulationHang:
        """Build the diagnostic hang exception (retirement stopped)."""
        head = repr(self._rob[0]) if self._rob else "<rob empty>"
        # Stall attribution for the wedged window: the state has been
        # frozen for idle_cycles straight cycles, so one classification
        # labels every cycle of it.  Lazy import keeps repro.sim free of
        # an obs dependency on the healthy path.
        try:
            from ..obs.cpi import classify_stall

            stall_cause = classify_stall(self, cycle)
        except Exception:  # diagnostics must never mask the hang itself
            stall_cause = "unknown"
        in_flight = {
            "rob": len(self._rob),
            "fetch_buffer": len(self._fetch_buffer),
            "ready_unissued": self._ready_unissued,
            "pending_writeback": len(self._pending_writeback),
            "completion_events": len(self._events),
            "mem_in_flight": self._mem_in_flight,
            "rf_in_flight": self.rf.in_flight,
            "checkpoints": self.checkpoints.occupancy,
            "lsq_stores": self.lsq.occupancy,
        }
        return SimulationHang(
            machine=self.config.name,
            benchmark=self.workload.name,
            cycle=cycle,
            idle_cycles=idle_cycles,
            retired=self._retired_count,
            target=target,
            rob_head=head,
            in_flight=in_flight,
            stall_cause=stall_cause,
            stall_snapshot={stall_cause: idle_cycles},
        )

    def drain_in_flight(self, cycle: int) -> int:
        """Finish writebacks/releases left after the last retirement.

        Retirement only requires completion, so a window's final cycle can
        leave external results queued for register-file write ports (and,
        under the staging entry policy, their entries still allocated).
        Draining them during the skipped gap keeps structural state balanced
        before a fast-forward; the cycles spent here are gap cycles and are
        never counted in a measured window.
        """
        while (
            self._pending_writeback or self._events or self._miss_releases
        ):
            self.complete_stage(cycle)
            cycle += 1
        return cycle

    def fast_forward(self, index: int, cycle: int) -> None:
        """Advance the trace cursor to ``index`` with a drained pipeline.

        Models the sampled-execution gap: every skipped instruction is
        assumed architecturally executed (phase one already fixed its branch
        outcome and cache latencies), so in-flight value tracking resets —
        all live values sit in the architectural file and later consumers
        take plain register reads.  Requires the pipeline to be drained
        (all fetched instructions retired, no pending writebacks).
        """
        if self._rob or self._fetch_buffer or self._pending_writeback:
            raise SimulationError(
                f"{self.config.name} on {self.workload.name}: fast_forward "
                f"with an undrained pipeline"
            )
        if self.skip_hook is not None:
            self.skip_hook(self._next_fetch, index)
        self._next_fetch = index
        self._live.clear()
        self._fetch_blocked = False
        self._fetch_resume = cycle
        self.on_fast_forward()

    def on_fast_forward(self) -> None:
        """Subclass hook: reset execution-core state across a sampling gap."""

    def core_invariants(self, cycle: int):
        """Subclass hook: yield messages for violated execution-core
        invariants (yield nothing when healthy).

        Covers only the structures the subclass owns (schedulers, FIFOs,
        BEUs); the shared-machinery invariants (ROB, register file,
        LSQ, checkpoints) live in :mod:`repro.validate.invariants`, which
        calls this per cycle when invariant checking is enabled.
        """
        return ()

    def unissued_in_flight(self):
        """Every dispatched-but-unissued instruction (for validation)."""
        return [w for w in self._rob if w.issue_cycle is None]

    def dispatch_block_cause(self) -> str:
        """Taxonomy label when :meth:`accept` is refusing dispatch.

        Used by the CPI stall attribution (:mod:`repro.obs.cpi`) to split
        the shared ``structure_full`` stall counter into the paradigm's
        actual full structure: a scheduler for the out-of-order and
        in-order cores, an issue FIFO for the steering/braid cores.
        """
        return "structural_scheduler"

    def scheduler_occupancy(self) -> int:
        """Instructions waiting in the paradigm's issue structure(s).

        Observability gauge (:mod:`repro.obs.metrics`); subclasses return
        the occupancy of their scheduler / FIFO / BEU structures.
        """
        return 0

    def attach_activity(self, result: SimResult) -> None:
        """Attach shared activity counters plus subclass annotations."""
        result.extra["lsq_forwards"] = float(self.lsq.stats.forwards)
        result.extra["bypass_forwards"] = float(self.bypass.total_forwards)
        result.extra["rf_reads"] = float(self.rf.read.total_grants)
        result.extra["rf_writes"] = float(self.rf.write.total_grants)
        self.annotate_result(result)

    def annotate_result(self, result: SimResult) -> None:
        """Subclass hook: attach extra activity statistics to a result."""

    def issue_horizon(self, cycle: int) -> Optional[int]:
        """Certified earliest cycle the issue stage might act (the
        scheduler arm of the next-event contract).

        Subclass publisher for the event kernel, consulted only while
        ``_ready_unissued > 0`` and every O(1) guard already says no
        other stage can act.  Three answers:

        * ``cycle`` — some candidate the issue stage would examine may
          act *now* (issue, claim a port meter, or touch a stall
          counter).  The kernel must not skip.  Per-cycle resource
          blocks (FUs, ports, staging register entries) always answer
          ``cycle``, because resource availability rolls per cycle and
          the event heap does not model it.
        * a future cycle — no candidate can act before it (every
          examined candidate is either ``pending`` or carries a
          certified ``issue_wake`` bound), and absent new completions
          the earliest possible issue activity is that cycle.
        * ``None`` — only a completion event (or a store execution,
          itself covered inductively by another publisher) can wake the
          issue stage; parked candidates fall here.

        The contract is strict because a returned future cycle becomes a
        skip target: every cycle before it must be one where calling
        ``issue_stage`` would mutate nothing observable.  The base class
        answers ``cycle`` (never skip), which is always safe.
        """
        return cycle

    # ------------------------------------------------ shared issue mechanics
    #
    # The FIFO-window paradigms (in-order queue, dependence-steering FIFOs,
    # braid BEU windows, block-granular windows) share three mechanics:
    # head-scan horizon certification, strict in-order head issue with
    # break-on-block, and bounded skip-ahead issue with continue-on-block.
    # They live here so the wake/park bookkeeping (``issue_wake`` bounds,
    # ``PARKED``, ``_note_issue_block``) has exactly one implementation
    # and a new paradigm composes them instead of re-deriving the contract.

    def head_issue_horizon(self, cycle: int, candidates) -> Optional[int]:
        """:meth:`issue_horizon` body for a head-scanning paradigm.

        ``candidates`` iterates exactly the entries the paradigm's
        ``issue_stage`` would examine this cycle (FIFO heads, or the first
        *k* window entries).  A pending or parked candidate wakes via a
        completion-side event and contributes nothing; a candidate whose
        certified ``issue_wake`` bound has arrived means the stage may act
        *now*; otherwise the earliest future bound is the horizon.
        """
        wake = None
        for winst in candidates:
            if winst.pending:
                continue
            bound = winst.issue_wake
            if bound <= cycle:
                return cycle
            if bound < PARKED and (wake is None or bound < wake):
                wake = bound
        return wake

    def issue_in_order(
        self,
        fifo,
        cycle: int,
        fu_pool: FunctionalUnitPool,
        max_issues: int,
        internal_reads=None,
        internal_writes=None,
        on_issue: Optional[Callable[[WInst], None]] = None,
    ) -> int:
        """Issue from ``fifo``'s head strictly in order; stop at the first
        block.  Returns the number issued.

        ``pending > 0`` means an operand producer has not completed, so
        ``try_issue`` would fail its dependence walk; a certified
        ``issue_wake`` bound likewise proves the call would fail until
        that cycle — both skip the call without touching any counter.  A
        live ``try_issue`` failure records its wake bound via
        :meth:`_note_issue_block` and ends the scan (younger entries may
        not pass an older blocked head).  ``on_issue`` runs per issued
        instruction for paradigm-side bookkeeping (busy bits, BEU tallies).
        """
        issued = 0
        try_issue = self.try_issue
        while issued < max_issues and fifo:
            winst = fifo[0]
            if winst.pending or winst.issue_wake > cycle:
                break
            if not try_issue(
                winst, cycle, fu_pool,
                internal_reads=internal_reads,
                internal_writes=internal_writes,
            ):
                self._note_issue_block(winst, cycle)
                break
            fifo.popleft()
            if on_issue is not None:
                on_issue(winst)
            issued += 1
        return issued

    def issue_skipahead(
        self,
        fifo,
        cycle: int,
        depth: int,
        fu_pool: FunctionalUnitPool,
        internal_reads=None,
        internal_writes=None,
        max_issues: Optional[int] = None,
        on_issue: Optional[Callable[[WInst], None]] = None,
    ) -> int:
        """Issue out of order from the first ``depth`` entries of ``fifo``;
        a blocked entry is skipped, not a barrier.  Returns the number
        issued.

        The window is snapshotted first so removals during the scan do
        not shift younger entries into examined positions (the hardware
        examines one fixed window per cycle).  ``max_issues`` bounds the
        total for paradigms sharing a global issue budget across windows.
        """
        issued = 0
        window = [fifo[i] for i in range(depth)]
        try_issue = self.try_issue
        for winst in window:
            if winst.pending or winst.issue_wake > cycle:
                continue
            if not try_issue(
                winst, cycle, fu_pool,
                internal_reads=internal_reads,
                internal_writes=internal_writes,
            ):
                self._note_issue_block(winst, cycle)
                continue
            fifo.remove(winst)
            if on_issue is not None:
                on_issue(winst)
            issued += 1
            if max_issues is not None and issued >= max_issues:
                break
        return issued

    def fifo_invariants(self, label: str, fifo, capacity: int,
                        cluster: Optional[int] = None):
        """Shared per-FIFO invariant checks (for :meth:`core_invariants`):
        capacity bound, no issued-but-still-queued entries, cluster-tag
        agreement, and dispatch-order monotonicity.  Yields messages.
        """
        if len(fifo) > capacity:
            yield f"{label} holds {len(fifo)}, capacity {capacity}"
        previous = -1
        for winst in fifo:
            if winst.issue_cycle is not None:
                yield f"issued instruction seq={winst.seq} still in {label}"
            if cluster is not None and winst.cluster != cluster:
                yield (
                    f"seq={winst.seq} tagged cluster {winst.cluster} "
                    f"but found in {label}"
                )
            if winst.seq <= previous:
                yield f"{label} out of dispatch order at seq={winst.seq}"
            previous = winst.seq

    def occupancy_sum_invariant(self, label: str, total: int):
        """Shared cross-structure invariant: the paradigm's queued-entry
        sum must equal the dispatched-but-unissued in-flight count."""
        unissued = len(self.unissued_in_flight())
        if total != unissued:
            yield (
                f"{label} occupancy sum {total} != {unissued} "
                f"dispatched-but-unissued instructions"
            )

    def _note_issue_block(self, winst: WInst, cycle: int) -> None:
        """Record a failed issue attempt's wake bound on the instruction.

        Head-scanning cores call this after a ``try_issue`` failure:
        a positive classification becomes the candidate's ``issue_wake``
        (the scan skips it until then), and a store block parks the
        candidate on the store's waiter list — ``store_executed`` will
        rewrite the wake to the store's completion cycle.
        """
        wake = self._issue_wake
        if wake > cycle:
            winst.issue_wake = wake
        elif wake < 0:
            store = self._issue_block_store
            if store.waiters is None:
                store.waiters = []
            store.waiters.append(winst)
            winst.issue_wake = PARKED

    def _wake_store_waiters(self, waiters: List[WInst], wake: int) -> None:
        """The store a load was parked on has executed: publish the wake.

        The base form rewrites each parked candidate's ``issue_wake`` to
        the store's completion cycle (the first cycle forwarding can
        succeed); pool-based cores override to also re-insert the
        candidate into their deferred structures.
        """
        for winst in waiters:
            winst.issue_wake = wake

    def _next_event(self, cycle: int, horizon: Optional[int] = None) -> int:
        """Earliest cycle at which any stage can act (the next-event contract).

        Each structure publishes its next-possible-activity cycle and the
        kernel jumps to the minimum; ``cycle`` itself is returned whenever
        anything can act *now*.  The published events:

        * **fetch** — ``_fetch_resume`` (redirect bubble end) while the
          front end is unblocked with trace and buffer room;
        * **fetch-buffer head** — its ``dispatch_ready`` cycle (front-end
          pipeline depth plus I-cache refill);
        * **ROB head** — ``complete_cycle + 1``, the first retirable cycle,
          once it has completed;
        * **completion events** — the earliest entry of the completion heap
          (which also bounds every MSHR release: misses push both heaps at
          the same cycle, so a due miss release implies a due event);
        * **issue horizon** (the ``horizon`` argument) — the scheduler's
          certified earliest issue-activity cycle from
          :meth:`issue_horizon`, when the caller obtained one.

        Callers guarantee no writeback is queued and the issue stage is
        certified idle (``_ready_unissued == 0``, or the horizon is absent
        or in the future).  A skipped cycle therefore mutates no state and
        touches no stall counter (port meters roll per cycle and idle
        cycles claim nothing), so the jump is bit-exact.  Dominant wins:
        misprediction redirect bubbles, long cache-miss shadows, and
        dependence chains serialized on multi-cycle producers.  With no
        publisher armed the current cycle is returned — a wedged machine
        ticks until the watchdog fires.
        """
        if horizon is not None and horizon <= cycle:
            return cycle  # the issue stage may act right now
        wake = horizon
        if (
            not self._fetch_blocked
            and self._next_fetch < self._fetch_limit
            and len(self._fetch_buffer) < self._fetch_cap
        ):
            if cycle >= self._fetch_resume:
                return cycle
            if wake is None or self._fetch_resume < wake:
                wake = self._fetch_resume
        if self._fetch_buffer:
            ready = self._fetch_buffer[0].dispatch_ready
            if ready <= cycle:
                return cycle
            if wake is None or ready < wake:
                wake = ready
        if self._rob:
            head = self._rob[0]
            if head.done:
                retirable = head.complete_cycle + 1
                if retirable <= cycle:
                    return cycle
                if wake is None or retirable < wake:
                    wake = retirable
        if self._events:
            due = self._events[0][0]
            if due <= cycle:
                return cycle
            if wake is None or due < wake:
                wake = due
        if wake is None or wake <= cycle:
            return cycle
        return wake

    def _skip_idle(self, cycle: int) -> int:
        """The one certified-idleness entry point: precondition check plus
        :meth:`_next_event`.

        Returns ``cycle`` itself when any stage might act now (pending
        writebacks, or an issue horizon answering "now"); otherwise the
        certified next-event cycle.  ``_run_until`` inlines this test in
        its fast loop; every other caller (resume seams, tests, tools
        probing idleness) goes through here rather than re-deriving the
        horizon contract.
        """
        if self._pending_writeback:
            return cycle
        horizon = None
        if self._ready_unissued:
            horizon = self.issue_horizon(cycle)
            if horizon is not None and horizon <= cycle:
                return cycle
        return self._next_event(cycle, horizon)

    # ------------------------------------------------------------------ fetch
    def fetch_stage(self, cycle: int) -> None:
        if self._fetch_blocked or cycle < self._fetch_resume:
            return
        budget = self._fetch_width
        branch_budget = self._branches_per_cycle
        fetch_cap = self._fetch_cap
        depth = self._front_depth
        limit = self._fetch_limit
        trace = self.trace
        decoded = self.decoded
        buffer = self._fetch_buffer
        append = buffer.append
        ifetch_extra = self._ifetch_extra_row
        mem_words = self._mem_word_row
        # The misprediction *set* stays the lookup source (not a frozen
        # per-index array): fault injection swaps it at runtime.
        mispredicted = self.mispredicted
        index = self._next_fetch
        while budget > 0 and index < limit and len(buffer) < fetch_cap:
            dyn = trace[index]
            facts = decoded[index]
            mis = dyn.seq in mispredicted
            append(WInst(
                dyn,
                facts,
                cycle,
                cycle + depth + ifetch_extra[index],
                mis,
                mem_words[index],
            ))
            index += 1
            budget -= 1
            if facts.is_branch:
                branch_budget -= 1
                if mis:
                    # Wrong-path fetch begins next cycle; correct-path fetch
                    # resumes only after the branch resolves.
                    self._fetch_blocked = True
                    break
                if dyn.taken:
                    break  # taken-branch redirect ends the fetch group
                if branch_budget == 0:
                    break
        self._next_fetch = index

    # --------------------------------------------------------------- dispatch
    def dispatch_stage(self, cycle: int) -> None:
        budget = self._alloc_width
        src_budget = self._rename_src_budget
        dest_budget = self._rename_dest_budget
        buffer = self._fetch_buffer
        rob = self._rob
        stalls = self.stalls
        max_in_flight = self._max_in_flight
        lsq_entries = self._lsq_entries
        alloc_at_dispatch = not self._rf_alloc_at_issue
        rf = self.rf
        rf_entries = rf.entries
        checkpoints = self.checkpoints
        checkpoint_cap = checkpoints.capacity
        dep_rows = self._dep_rows
        arch_rows = self._arch_rows
        live = self._live
        insertable = self._insertable
        evictions = self._evictions
        lsq = self.lsq
        trace_log = self.trace_log
        has_on_ready = self._has_on_ready
        accept = self.accept
        while budget > 0 and buffer:
            winst = buffer[0]
            if winst.dispatch_ready > cycle:
                break
            if len(rob) >= max_in_flight:
                stalls.in_flight_cap += 1
                break
            if winst.ext_src_ops > src_budget or winst.ext_dest_ops > dest_budget:
                stalls.rename_width += 1
                break
            if (
                winst.dest_external
                and alloc_at_dispatch
                and rf.in_flight >= rf_entries
            ):
                stalls.regfile_entries += 1
                break
            if winst.is_branch and len(checkpoints._stack) >= checkpoint_cap:
                stalls.checkpoints += 1
                break
            if (winst.is_load or winst.is_store) and (
                self._mem_in_flight >= lsq_entries
            ):
                stalls.structure_full += 1
                break

            seq = winst.seq
            # The live table only mutates on a successful dispatch, and a
            # failed accept() blocks all younger dispatches, so the captured
            # dependences of a stalled head stay valid across retry cycles.
            if not winst.captured:
                # Resolve the static dependence row against the
                # live-producer table.
                arch_reads = arch_rows[seq]
                row = dep_rows[seq]
                if row:
                    deps = winst.deps
                    for pidx, internal in row:
                        producer = live.get(pidx)
                        if producer is None:
                            # Producer replayed before a sampling gap: the
                            # value lives in the architectural file (or died
                            # with a drained braid) — a plain register read.
                            if not internal:
                                arch_reads += 1
                        else:
                            deps.append((producer, internal))
                winst.arch_reads = arch_reads
                winst.captured = True
            if not accept(winst, cycle):
                stalls.structure_full += 1
                break

            # Commit: producer subscriptions, live-table update, structure
            # bookkeeping (an allocation probe cannot fail here — the
            # checks above verified a free entry this cycle and nothing
            # allocates in between).
            winst.dispatch_cycle = cycle
            pending = 0
            for producer, _internal in winst.deps:
                if not producer.done:
                    producer.waiters.append(winst)
                    pending += 1
            winst.pending = pending

            if insertable[seq]:
                live[seq] = winst
            dead = evictions[seq]
            if dead is not None:
                pop = live.pop
                for producer_index in dead:
                    pop(producer_index, None)

            if winst.dest_external and alloc_at_dispatch:
                rf.in_flight += 1
            if winst.is_branch:
                checkpoints.take(seq)
            is_store = winst.is_store
            if is_store:
                lsq.store_dispatched(seq, winst.mem_word)
            if is_store or winst.is_load:
                self._mem_in_flight += 1
            rob.append(winst)

            if trace_log is not None:
                trace_log.append(winst)
            if pending == 0:
                self._ready_unissued += 1
                if has_on_ready:
                    self.on_ready(winst, cycle)

            buffer.popleft()
            budget -= 1
            src_budget -= winst.ext_src_ops
            dest_budget -= winst.ext_dest_ops

    @staticmethod
    def _reg_key(reg: Register) -> Tuple[str, int]:
        return (reg.rclass.value, reg.index)

    # ------------------------------------------------------------------ issue
    def deps_complete(self, winst: WInst, cycle: int) -> bool:
        for producer, internal in winst.deps:
            if producer is None:
                continue
            if producer.complete_cycle is None:
                return False
            visible = producer.complete_cycle
            if not internal:
                visible += self.dep_delay(producer, winst)
            if visible > cycle:
                return False
        return True

    def try_issue(
        self,
        winst: WInst,
        cycle: int,
        fu_pool: FunctionalUnitPool,
        internal_reads=None,
        internal_writes=None,
    ) -> bool:
        """Attempt to issue ``winst`` this cycle; all checks then all claims.

        Every failure classifies itself into ``self._issue_wake`` — a
        certified lower bound on the first cycle the failed check could
        pass (0 when the block is a per-cycle resource the event heap
        cannot model, -1 when the load must park on the unexecuted store
        left in ``self._issue_block_store``).  Callers use the bound to
        defer re-examination; a deferral is sound because every check
        before the claims section is side-effect-free except the staging
        register-file probe (which stays wake=0 so its stall counter
        keeps ticking exactly as before) and the LSQ conflict statistic
        (not an exported counter).
        """
        if winst.issue_cycle is not None or cycle <= winst.dispatch_cycle:
            self._issue_wake = 0
            return False

        reads = winst.arch_reads
        bypasses = 0
        internal_read_count = 0
        deps = winst.deps
        if deps:
            # ``bypass.covers(cycle, visible)`` with visible <= cycle already
            # established reduces to ``cycle - visible <= levels`` (and the
            # -1 sentinel encodes a zero-width/zero-level network); the
            # uniform-delay flag skips the dep_delay virtual call entirely on
            # cores where it is identically zero.
            bypass_life = self._bypass_life
            uniform = self._uniform_dep_delay
            for producer, internal in deps:
                if producer is None:
                    continue
                produced = producer.complete_cycle
                if produced is None:
                    self._issue_wake = 0
                    return False  # producer not yet issued
                if internal:
                    if produced > cycle:
                        self._issue_wake = produced
                        return False
                    internal_read_count += 1
                    continue
                delay = 0 if uniform else self.dep_delay(producer, winst)
                visible = produced + delay
                if visible > cycle:
                    self._issue_wake = visible
                    return False  # value not yet visible here
                if cycle - visible <= bypass_life:
                    bypasses += 1
                else:
                    wb = producer.writeback_cycle
                    if wb is not None and wb + delay <= cycle:
                        reads += 1
                    else:
                        # Off the bypass network with writeback still
                        # pending.  Once the write port is granted the
                        # writeback cycle is fixed, giving a firm wake;
                        # until then the value sits in the writeback queue,
                        # which blocks idle skipping anyway.
                        self._issue_wake = wb + delay if wb is not None else 0
                        return False

        latency = winst.latency
        is_miss = False
        if winst.is_load:
            cache_latency = self._load_latency_row[winst.seq]
            if cache_latency is None:
                cache_latency = self.l1d_latency
            lsq = self.lsq
            # Inline lsq.conflict_entry: one dict probe for the precomputed
            # youngest older same-word store (see ReplayFacts.store_conflict).
            conflict_seq = self._store_conflict_row[winst.seq]
            conflict = None
            if conflict_seq is not None:
                entry = lsq._stores.get(conflict_seq)
                if entry is not None and entry.word == winst.mem_word:
                    conflict = entry
            if conflict is None:
                memory_latency = cache_latency
            else:
                done_at = conflict.complete_cycle
                if done_at is None:
                    # The store has not even issued: no wake cycle exists
                    # yet, so park on the entry — store execution rewrites
                    # the wake to its completion cycle.
                    lsq.stats.conflicts += 1
                    self._issue_wake = -1
                    self._issue_block_store = conflict
                    return False
                if done_at > cycle:
                    lsq.stats.conflicts += 1
                    self._issue_wake = done_at
                    return False
                lsq.stats.forwards += 1
                memory_latency = lsq.forward_latency
            is_miss = memory_latency > self.l1d_latency
            if is_miss and self._outstanding_misses >= self._mshrs:
                # All miss-status holding registers busy; the earliest
                # release is the head of the miss-release heap (non-empty
                # whenever outstanding misses exist).
                releases = self._miss_releases
                self._issue_wake = releases[0][0] if releases else 0
                return False
            latency = memory_latency

        # Check-then-claim over the per-cycle meters, with the meter roll
        # and probe inlined (the method-call version is bit-identical but
        # dominates the issue path; a roll is idempotent within a cycle, so
        # rolling during a check that later fails matches the old
        # ``available()`` behavior exactly, and a claim after an all-checks
        # pass can never fail, so no denial counter is touched).
        rf = self.rf
        staging = self._rf_alloc_at_issue and winst.dest_external
        if staging and rf.in_flight >= rf.entries:
            self.stalls.regfile_entries += 1
            self._issue_wake = 0
            return False
        if fu_pool._cycle != cycle:
            fu_pool._cycle = cycle
            fu_pool._issued = 0
        if fu_pool._issued >= fu_pool.count:
            self._issue_wake = 0
            return False
        if bypasses:
            bp = self.bypass
            if bp._cycle != cycle:
                bp._cycle = cycle
                bp._used = 0
            if bp._used + bypasses > bp.width:
                self._issue_wake = 0
                return False
        if reads:
            rd = rf.read
            if rd._cycle != cycle:
                rd._cycle = cycle
                rd._used = 0
            if rd._used + reads > rd.ports:
                self._issue_wake = 0
                return False
        if internal_reads is not None and internal_read_count:
            if internal_reads.available(cycle) < internal_read_count:
                self._issue_wake = 0
                return False
        if internal_writes is not None and winst.dest_internal:
            if internal_writes.available(cycle) < 1:
                self._issue_wake = 0
                return False

        fu_pool._issued += 1
        fu_pool.total_issues += 1
        if staging:
            rf.in_flight += 1
        if bypasses:
            bp._used += bypasses
            bp.total_forwards += bypasses
        if reads:
            rd._used += reads
            rd.total_grants += reads
        if internal_reads is not None and internal_read_count:
            internal_reads.acquire(cycle, internal_read_count)
        if internal_writes is not None and winst.dest_internal:
            internal_writes.acquire(cycle, 1)

        winst.issue_cycle = cycle
        winst.complete_cycle = cycle + latency
        self._ready_unissued -= 1
        if is_miss:
            self._outstanding_misses += 1
            heapq.heappush(
                self._miss_releases, (winst.complete_cycle, winst.seq)
            )
        heapq.heappush(self._events, (winst.complete_cycle, winst.seq, winst))
        if winst.is_store:
            entry = self.lsq.store_executed(winst.seq, winst.complete_cycle)
            if entry is not None and entry.waiters:
                waiters = entry.waiters
                entry.waiters = None
                self._wake_store_waiters(waiters, winst.complete_cycle)
        self._issued_count += 1
        return True

    # --------------------------------------------------------------- complete
    def complete_stage(self, cycle: int) -> None:
        miss_releases = self._miss_releases
        while miss_releases and miss_releases[0][0] <= cycle:
            heapq.heappop(miss_releases)
            self._outstanding_misses -= 1
        events = self._events
        pending_writeback = self._pending_writeback
        has_on_ready = self._has_on_ready
        heappop = heapq.heappop
        while events and events[0][0] <= cycle:
            _, _, winst = heappop(events)
            winst.done = True
            waiters = winst.waiters
            if waiters:
                for waiter in waiters:
                    waiter.pending -= 1
                    if waiter.pending == 0:
                        self._ready_unissued += 1
                        if has_on_ready:
                            self.on_ready(waiter, cycle)
                waiters.clear()
            if winst.dest_external:
                pending_writeback.append(winst)
            else:
                winst.writeback_cycle = winst.complete_cycle
            if winst.is_branch and winst.mispredicted:
                self._fetch_blocked = False
                self._fetch_resume = cycle + self._redirect_penalty
                self.checkpoints.restore(winst.seq)

        if pending_writeback:
            # Inline of ``rf.write.acquire(cycle, 1)`` per drained entry:
            # one roll for the whole cycle, one denial when the ports run
            # out with entries still queued — counter-for-counter what the
            # per-entry acquire loop did.
            wr = self.rf.write
            if wr._cycle != cycle:
                wr._cycle = cycle
                wr._used = 0
            ports = wr.ports
            release_at_writeback = self._rf_alloc_at_issue
            while pending_writeback:
                if wr._used >= ports:
                    wr.total_denials += 1
                    break
                winst = pending_writeback.popleft()
                wr._used += 1
                wr.total_grants += 1
                winst.writeback_cycle = cycle + 1
                if release_at_writeback:
                    # Staging policy: the entry drains to the architectural
                    # backing file as soon as the value is written.
                    self.rf.release()

    # ------------------------------------------------------------------ retire
    def retire_stage(self, cycle: int) -> None:
        budget = self._issue_width
        retire_hook = self.retire_hook
        rob = self._rob
        rf = self.rf
        lsq = self.lsq
        checkpoints = self.checkpoints
        alloc_at_dispatch = not self._rf_alloc_at_issue
        retired = 0
        while budget > 0 and rob:
            winst = rob[0]
            if not winst.done or winst.complete_cycle >= cycle:
                break
            rob.popleft()
            winst.retired = True
            winst.retire_cycle = cycle
            if retire_hook is not None:
                retire_hook(winst, cycle)
            if winst.dest_external and alloc_at_dispatch:
                rf.release()
            if winst.is_store:
                lsq.store_retired(winst.seq)
            if winst.is_load or winst.is_store:
                self._mem_in_flight -= 1
            if winst.is_branch:
                checkpoints.release_older_than(winst.seq)
            retired += 1
            budget -= 1
        if retired:
            self._retired_count += retired
