"""In-order core: the paper's lower-bound paradigm (Figure 13).

One issue queue; instructions issue strictly in program order, up to the
issue width per cycle, stalling at the first instruction whose operands or
resources are not ready.  The front end, memory system, and retirement are
identical to the conventional machine.  The issue mechanics are the shared
kernel helpers (:meth:`~repro.sim.core.TimingCore.issue_in_order` /
:meth:`~repro.sim.core.TimingCore.head_issue_horizon`) applied to a single
FIFO.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from ..uarch.funit import FunctionalUnitPool
from .config import CoreKind, MachineConfig, inorder_config
from .core import TimingCore, WInst
from .registry import CoreDescriptor, register_core
from .workload import PreparedWorkload


def _inject_queue(core: "InOrderCore", rng) -> Optional[str]:
    """Flip the issue queue's head pointer (modeled as a rotation)."""
    queue = core._queue
    if len(queue) < 1:
        return None
    direction = rng.choice((-1, 1))
    queue.rotate(direction)
    return f"issue-queue pointer bit flip (rotated {direction:+d})"


class InOrderCore(TimingCore):
    """Strictly in-order issue at the configured width."""

    fault_structures = ("scheduler",)
    fault_injectors = {"scheduler": _inject_queue}
    #: no rename stage: architectural registers are read/written in place
    renames_registers = False
    #: recovery needs only the architectural map — no speculative values
    checkpoints_value_entries = False

    @classmethod
    def scheduler_comparators(cls, config: MachineConfig) -> int:
        return 0  # only the queue head is examined; no wakeup CAM

    @classmethod
    def wakeup_energy_entries(cls, config: MachineConfig) -> int:
        return config.clusters  # one head check per completing tag

    def __init__(self, workload: PreparedWorkload, config: MachineConfig) -> None:
        super().__init__(workload, config)
        self.fus = FunctionalUnitPool(config.functional_units)
        self._queue: deque = deque()

    def accept(self, winst: WInst, cycle: int) -> bool:
        if len(self._queue) >= self.config.window_capacity:
            return False
        self._queue.append(winst)
        return True

    def on_fast_forward(self) -> None:
        # A drained pipeline has issued everything; clear defensively so a
        # sampling gap can never leak queue occupancy into the next window.
        self._queue.clear()

    def scheduler_occupancy(self) -> int:
        return len(self._queue)

    def core_invariants(self, cycle: int):
        yield from self.fifo_invariants(
            "issue queue", self._queue, self.config.window_capacity
        )
        yield from self.occupancy_sum_invariant(
            "issue queue", len(self._queue)
        )

    def issue_horizon(self, cycle):
        # Only the queue head is examined for issue.
        queue = self._queue
        return self.head_issue_horizon(cycle, (queue[0],) if queue else ())

    def issue_stage(self, cycle: int) -> None:
        self.issue_in_order(
            self._queue, cycle, self.fus, self.config.issue_width
        )


register_core(CoreDescriptor(
    kind=CoreKind.IN_ORDER,
    key="inorder",
    core_class=InOrderCore,
    config_factory=inorder_config,
    description="strictly in-order issue (lower-bound paradigm)",
))
