"""In-order core: the paper's lower-bound paradigm (Figure 13).

One issue queue; instructions issue strictly in program order, up to the
issue width per cycle, stalling at the first instruction whose operands or
resources are not ready.  The front end, memory system, and retirement are
identical to the conventional machine.
"""

from __future__ import annotations

from collections import deque

from ..uarch.funit import FunctionalUnitPool
from .config import MachineConfig
from .core import PARKED, TimingCore, WInst
from .workload import PreparedWorkload


class InOrderCore(TimingCore):
    """Strictly in-order issue at the configured width."""

    def __init__(self, workload: PreparedWorkload, config: MachineConfig) -> None:
        super().__init__(workload, config)
        self.fus = FunctionalUnitPool(config.functional_units)
        self._queue: deque = deque()

    def accept(self, winst: WInst, cycle: int) -> bool:
        if len(self._queue) >= self.config.window_capacity:
            return False
        self._queue.append(winst)
        return True

    def on_fast_forward(self) -> None:
        # A drained pipeline has issued everything; clear defensively so a
        # sampling gap can never leak queue occupancy into the next window.
        self._queue.clear()

    def scheduler_occupancy(self) -> int:
        return len(self._queue)

    def core_invariants(self, cycle: int):
        if len(self._queue) > self.config.window_capacity:
            yield (
                f"issue queue holds {len(self._queue)} instructions, "
                f"capacity {self.config.window_capacity}"
            )
        previous = -1
        for winst in self._queue:
            if winst.issue_cycle is not None:
                yield f"issued instruction seq={winst.seq} still queued"
            if winst.seq <= previous:
                yield f"issue queue out of program order at seq={winst.seq}"
            previous = winst.seq

    def issue_horizon(self, cycle):
        # Only the queue head can issue; while its producers are pending
        # (or it is parked on a store) the issue stage cannot act until a
        # completion-side event, and a certified issue_wake bound defers
        # it to a known cycle.
        queue = self._queue
        if not queue:
            return None
        head = queue[0]
        if head.pending:
            return None
        bound = head.issue_wake
        if bound <= cycle:
            return cycle
        return None if bound >= PARKED else bound

    def issue_stage(self, cycle: int) -> None:
        budget = self.config.issue_width
        queue = self._queue
        while budget > 0 and queue:
            winst = queue[0]
            # pending > 0 means an operand producer has not completed, so
            # try_issue would fail its dependence walk; issue_wake defers
            # a head whose earliest-possible-success cycle is certified.
            if winst.pending or winst.issue_wake > cycle:
                break
            if not self.try_issue(winst, cycle, self.fus):
                self._note_issue_block(winst, cycle)
                break
            queue.popleft()
            budget -= 1
