"""Functional (architectural) executor.

Interprets a :class:`~repro.isa.program.Program` at the architectural level:
register files, a word-granular memory, branch resolution.  It serves three
roles in the reproduction:

1. **Execution-driven traces.**  :meth:`FunctionalExecutor.trace` yields the
   dynamic instruction stream (with branch outcomes and memory addresses)
   that drives every timing core, mirroring the paper's execution-driven
   simulator split.
2. **Translation validation.**  Braid formation reorders instructions and
   re-allocates registers; property tests execute the original and the
   translated program and require identical architectural results.
3. **Braid semantics.**  The executor honours the S/T/I/E annotation bits:
   internal operands live in a small internal file whose values die at braid
   boundaries (``strict_internal`` turns violations into hard errors).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from ..isa.instruction import Instruction
from ..isa.opcodes import OpCategory, to_unsigned
from ..isa.program import BasicBlock, Program
from ..isa.registers import NUM_INTERNAL_REGS, Register, Space

#: Size of one encoded instruction in bytes (the 64-bit braid word).
INSTRUCTION_BYTES = 8


class ExecutionError(RuntimeError):
    """Raised on architectural violations (e.g. reading a dead internal value)."""


class ProgramLayout:
    """Assigns a byte address to every static instruction.

    Blocks are laid out contiguously in program order, eight bytes per
    instruction, so instruction caches and branch predictors can index on
    realistic addresses.
    """

    def __init__(self, program: Program, base: int = 0x1000) -> None:
        self.program = program
        self.base = base
        self.block_start: List[int] = []
        self.address_of: Dict[int, int] = {}  # id(instruction) -> address
        cursor = base
        for block in program.blocks:
            self.block_start.append(cursor)
            for inst in block.instructions:
                self.address_of[id(inst)] = cursor
                cursor += INSTRUCTION_BYTES
        self.end = cursor

    def address(self, inst: Instruction) -> int:
        return self.address_of[id(inst)]


@dataclass
class DynInst:
    """One dynamic instruction: a static instruction plus run-time facts."""

    seq: int
    inst: Instruction
    block: int
    pc: int
    taken: Optional[bool] = None
    next_pc: int = 0
    mem_addr: Optional[int] = None

    @property
    def is_branch(self) -> bool:
        return self.inst.is_branch

    @property
    def is_load(self) -> bool:
        return self.inst.is_load

    @property
    def is_store(self) -> bool:
        return self.inst.is_store


@dataclass
class ExecutionStats:
    """Aggregate facts about one functional run."""

    dynamic_instructions: int = 0
    dynamic_branches: int = 0
    taken_branches: int = 0
    loads: int = 0
    stores: int = 0
    block_counts: Dict[int, int] = field(default_factory=dict)
    completed: bool = False  # reached program exit (vs. instruction cap)


class ArchState:
    """Architectural register/memory state, including the braid internal file."""

    def __init__(self) -> None:
        self.int_regs: List[int] = [0] * 32
        self.fp_regs: List[float] = [0.0] * 32
        self.internal_int: List[Optional[int]] = [None] * NUM_INTERNAL_REGS
        self.internal_fp: List[Optional[float]] = [None] * NUM_INTERNAL_REGS
        self.memory: Dict[int, object] = {}

    # --------------------------------------------------------------- registers
    def read(self, reg: Register, space: Space) -> object:
        if reg.is_zero and space is Space.EXTERNAL:
            return 0.0 if reg.is_fp else 0
        if space is Space.INTERNAL:
            bank = self.internal_fp if reg.is_fp else self.internal_int
            value = bank[reg.index]
            if value is None:
                raise ExecutionError(
                    f"read of dead internal register {reg} "
                    f"(internal values do not survive braid boundaries)"
                )
            return value
        if reg.is_fp:
            return self.fp_regs[reg.index]
        return self.int_regs[reg.index]

    def write(self, reg: Register, value: object,
              internal: bool, external: bool) -> None:
        if internal:
            if reg.index >= NUM_INTERNAL_REGS:
                raise ExecutionError(f"internal register index {reg} out of range")
            if reg.is_fp:
                self.internal_fp[reg.index] = float(value)
            else:
                self.internal_int[reg.index] = to_unsigned(int(value))
        if external and not reg.is_zero:
            if reg.is_fp:
                self.fp_regs[reg.index] = float(value)
            else:
                self.int_regs[reg.index] = to_unsigned(int(value))

    def clear_internal(self) -> None:
        """Discard internal values (a braid has finished executing)."""
        self.internal_int = [None] * NUM_INTERNAL_REGS
        self.internal_fp = [None] * NUM_INTERNAL_REGS

    # ------------------------------------------------------------------ memory
    @staticmethod
    def _word_address(addr: int) -> int:
        return addr & ~0x7

    def load(self, addr: int, fp: bool) -> object:
        value = self.memory.get(self._word_address(addr), 0)
        if fp:
            return float(value)
        if isinstance(value, float):
            return to_unsigned(int(value))
        return to_unsigned(value)

    def store(self, addr: int, value: object) -> None:
        self.memory[self._word_address(addr)] = value

    def snapshot(self) -> Tuple[Tuple[int, ...], Tuple[float, ...], Tuple]:
        """Hashable view of external architectural state (for equivalence tests)."""
        memory = tuple(sorted(self.memory.items()))
        return tuple(self.int_regs), tuple(self.fp_regs), memory


def apply_instruction(
    state: ArchState, inst: Instruction, strict_internal: bool = True
) -> Tuple[Optional[bool], Optional[int]]:
    """Apply one instruction's architectural effects to ``state``.

    Returns ``(taken, mem_addr)``: the branch outcome (``None`` for
    non-branches) and the memory address touched (``None`` for non-memory
    instructions).  This is the single source of instruction semantics —
    :class:`FunctionalExecutor` steps through it, and the lockstep
    validation oracle (:mod:`repro.validate.lockstep`) replays timing-core
    retirement streams through it, so the two can never drift apart.
    """
    annot = inst.annot
    if annot.start and strict_internal:
        # Internal values must not flow across braid boundaries.
        state.clear_internal()

    srcs = tuple(
        state.read(reg, annot.src_space(position))
        for position, reg in enumerate(inst.srcs)
    )
    category = inst.opcode.category

    if category is OpCategory.NOP:
        return None, None
    if category is OpCategory.BRANCH:
        return bool(inst.opcode.semantics(srcs, inst.imm)), None
    if category is OpCategory.LOAD:
        addr = to_unsigned(int(srcs[0]) + inst.imm)
        value = state.load(addr, fp=inst.opcode.dest_fp)
        state.write(inst.dest, value, annot.dest_internal, annot.dest_external)
        return None, addr
    if category is OpCategory.STORE:
        addr = to_unsigned(int(srcs[1]) + inst.imm)
        state.store(addr, srcs[0])
        return None, addr
    value = inst.opcode.semantics(srcs, inst.imm)
    state.write(inst.dest, value, annot.dest_internal, annot.dest_external)
    return None, None


class FunctionalExecutor:
    """Architectural interpreter producing dynamic instruction streams."""

    def __init__(
        self,
        program: Program,
        max_instructions: int = 5_000_000,
        strict_internal: bool = True,
        initial_state: Optional[ArchState] = None,
    ) -> None:
        program.validate()
        self.program = program
        self.layout = ProgramLayout(program)
        self.max_instructions = max_instructions
        self.strict_internal = strict_internal
        self.state = initial_state if initial_state is not None else ArchState()
        self.stats = ExecutionStats()

    # ------------------------------------------------------------------ running
    def run(self) -> ExecutionStats:
        """Execute to completion (or the instruction cap); returns statistics."""
        for _ in self.trace():
            pass
        return self.stats

    def trace(self) -> Iterator[DynInst]:
        """Execute, yielding one :class:`DynInst` per retired instruction."""
        program = self.program
        block: Optional[BasicBlock] = program.blocks[program.entry]
        seq = 0
        while block is not None and seq < self.max_instructions:
            self.stats.block_counts[block.index] = (
                self.stats.block_counts.get(block.index, 0) + 1
            )
            taken_block: Optional[int] = None
            for inst in block.instructions:
                dyn = self._step(seq, block.index, inst)
                seq += 1
                if dyn.is_branch and dyn.taken:
                    taken_block = inst.target
                yield dyn
                if seq >= self.max_instructions:
                    self.stats.dynamic_instructions = seq
                    return
            taken, fallthrough = program.successors(block)
            if taken_block is not None:
                next_index: Optional[int] = taken_block
            else:
                next_index = fallthrough
            block = program.blocks[next_index] if next_index is not None else None
        self.stats.dynamic_instructions = seq
        self.stats.completed = block is None

    # ------------------------------------------------------------------- one step
    def _step(self, seq: int, block_index: int, inst: Instruction) -> DynInst:
        pc = self.layout.address(inst)
        dyn = DynInst(seq=seq, inst=inst, block=block_index, pc=pc,
                      next_pc=pc + INSTRUCTION_BYTES)

        taken, mem_addr = apply_instruction(
            self.state, inst, strict_internal=self.strict_internal
        )
        dyn.mem_addr = mem_addr

        category = inst.opcode.category
        if category is OpCategory.BRANCH:
            dyn.taken = taken
            self.stats.dynamic_branches += 1
            if taken:
                self.stats.taken_branches += 1
                dyn.next_pc = self.layout.block_start[inst.target]
        elif category is OpCategory.LOAD:
            self.stats.loads += 1
        elif category is OpCategory.STORE:
            self.stats.stores += 1

        return dyn


def execute(program: Program, max_instructions: int = 5_000_000,
            strict_internal: bool = True) -> Tuple[ArchState, ExecutionStats]:
    """Convenience wrapper: run ``program`` and return final state + stats."""
    executor = FunctionalExecutor(
        program, max_instructions=max_instructions, strict_internal=strict_internal
    )
    stats = executor.run()
    return executor.state, stats


def observably_equivalent(
    original: Program,
    translated: Program,
    max_instructions: int = 5_000_000,
) -> bool:
    """Whether two programs are observably equivalent.

    Braid translation deliberately stops writing *internalized* values to the
    architectural register file (they are dead outside their braid), so plain
    register-state comparison is too strict.  The observables that must match
    are: final memory contents, the control-flow path (per-block execution
    counts and branch outcome totals), and the dynamic instruction count.
    """
    state_a, stats_a = execute(original, max_instructions=max_instructions)
    state_b, stats_b = execute(translated, max_instructions=max_instructions)
    return (
        state_a.memory == state_b.memory
        and stats_a.block_counts == stats_b.block_counts
        and stats_a.dynamic_instructions == stats_b.dynamic_instructions
        and stats_a.taken_branches == stats_b.taken_branches
        and stats_a.completed == stats_b.completed
    )
