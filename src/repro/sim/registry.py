"""Declarative core registry: paradigms are discovered, not enumerated.

Every timing-core paradigm registers one :class:`CoreDescriptor` at import
time (see the bottom of each core module).  Everything that used to keep a
private hard-coded core table — ``build_core``, the validate oracle, the
fault-injection campaign planner, the complexity/energy/AVF analyses, the
CI smoke scripts, the conformance tests — now asks the registry instead,
so a new paradigm is one component file plus one ``register_core`` call
and every layer applies to it with zero per-layer edits.

The descriptor carries the plumbing identity (kind, CLI key, class,
config factory, whether it consumes the braided program); the *behavioral*
contract a paradigm owes the surrounding layers (fault structures and
injectors, complexity-model terms) lives as class-level declarations on
the core class itself (:class:`~repro.sim.core.TimingCore` documents the
defaults), keeping each paradigm's knowledge in its own file.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass
from typing import Callable, Dict, Tuple

from .config import CoreKind, MachineConfig


class CoreRegistryError(LookupError):
    """An unknown or mis-declared core paradigm was requested."""


@dataclass(frozen=True)
class CoreDescriptor:
    """Everything the surrounding layers need to know about one paradigm."""

    #: the :class:`~repro.sim.config.CoreKind` this paradigm simulates
    kind: CoreKind
    #: short CLI/report key (``"ooo"``, ``"braid"``, ...)
    key: str
    #: the :class:`~repro.sim.core.TimingCore` subclass
    core_class: type
    #: ``factory(width=8, **overrides) -> MachineConfig``
    config_factory: Callable[..., MachineConfig]
    #: True when the paradigm runs the braid-annotated program
    braided: bool = False
    #: one-line description for CLI help and reports
    description: str = ""


_REGISTRY: Dict[CoreKind, CoreDescriptor] = {}
#: modules that self-register the built-in paradigms on import
_BUILTIN_MODULES = ("ooo", "inorder", "depsteer", "braidcore", "blockooo")
#: presentation order (reports, sweeps, CLI help): the paper's four, then
#: later additions; keys outside this list follow in registration order
_CANONICAL_ORDER = ("ooo", "inorder", "depsteer", "braid", "blockooo")
_builtins_loaded = False


def register_core(descriptor: CoreDescriptor) -> CoreDescriptor:
    """Register one paradigm; validates the declarative contract loudly.

    Raises :class:`CoreRegistryError` on a duplicate kind/key or when the
    core class declares a fault structure without a matching injector —
    the silent-AVF-zero bug class this registry exists to prevent.
    """
    kind = descriptor.kind
    if kind in _REGISTRY and _REGISTRY[kind].core_class is not descriptor.core_class:
        raise CoreRegistryError(
            f"core kind {kind.value!r} already registered by "
            f"{_REGISTRY[kind].core_class.__name__}"
        )
    for existing in _REGISTRY.values():
        if existing.key == descriptor.key and existing.kind is not kind:
            raise CoreRegistryError(
                f"core key {descriptor.key!r} already registered for kind "
                f"{existing.kind.value!r}"
            )
    core_class = descriptor.core_class
    missing = [
        structure for structure in core_class.fault_structures
        if structure not in core_class.fault_injectors
    ]
    if missing:
        raise CoreRegistryError(
            f"{core_class.__name__} declares fault structures {missing} "
            f"with no matching injectors in fault_injectors — a campaign "
            f"over them would silently classify nothing"
        )
    _REGISTRY[kind] = descriptor
    return descriptor


def _ensure_builtins() -> None:
    """Import the built-in core modules (each self-registers)."""
    global _builtins_loaded
    if _builtins_loaded:
        return
    _builtins_loaded = True
    for name in _BUILTIN_MODULES:
        importlib.import_module(f"{__package__}.{name}")


def core_registry() -> Dict[str, CoreDescriptor]:
    """``key -> descriptor`` for every registered paradigm, in
    presentation order (import order never leaks into report order)."""
    _ensure_builtins()
    rank = {key: index for index, key in enumerate(_CANONICAL_ORDER)}
    ordered = sorted(
        enumerate(_REGISTRY.values()),
        key=lambda item: (rank.get(item[1].key, len(rank)), item[0]),
    )
    return {descriptor.key: descriptor for _, descriptor in ordered}


def core_keys() -> Tuple[str, ...]:
    """Registered paradigm keys, in registration order."""
    return tuple(core_registry())


def descriptor_for(kind: CoreKind) -> CoreDescriptor:
    """The descriptor registered for ``kind`` (loud when unknown)."""
    _ensure_builtins()
    try:
        return _REGISTRY[kind]
    except KeyError:
        known = ", ".join(sorted(k.value for k in _REGISTRY))
        raise CoreRegistryError(
            f"no timing core registered for kind {kind!r}; "
            f"registered kinds: {known}"
        ) from None


def descriptor_for_key(key: str) -> CoreDescriptor:
    """The descriptor registered under CLI key ``key`` (loud when unknown)."""
    registry = core_registry()
    try:
        return registry[key]
    except KeyError:
        raise CoreRegistryError(
            f"no timing core registered under key {key!r}; "
            f"registered keys: {', '.join(registry)}"
        ) from None


def paradigm_configs(width: int = 8) -> Dict[str, MachineConfig]:
    """One default config per registered paradigm at ``width`` (key-ordered)."""
    return {
        key: descriptor.config_factory(width)
        for key, descriptor in core_registry().items()
    }
