"""The braid execution unit (paper Figure 4(b)).

Each BEU holds: a FIFO instruction queue (32 entries by default), a small
in-order scheduling window at the FIFO head (2 entries), two functional
units, a busy-bit vector tracking external value readiness, and an 8-entry
internal register file with 4 read / 2 write ports whose values die when the
braid finishes.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from ..uarch.busybits import BusyBitVector
from ..uarch.funit import FunctionalUnitPool
from ..uarch.regfile import PortMeter, RegFileSpec
from .config import MachineConfig


class BraidExecutionUnit:
    """One BEU: FIFO queue + in-order window + private internal state."""

    def __init__(self, beu_id: int, config: MachineConfig) -> None:
        self.beu_id = beu_id
        self.config = config
        self.fifo: deque = deque()  # not-yet-issued instructions, FIFO order
        self.fus = FunctionalUnitPool(config.beu_functional_units)
        spec: Optional[RegFileSpec] = config.internal_regfile
        if spec is None:
            spec = RegFileSpec(entries=8, read_ports=4, write_ports=2)
        self.internal_reads = PortMeter(spec.read_ports)
        self.internal_writes = PortMeter(spec.write_ports)
        self.busybits = BusyBitVector(config.regfile.entries)
        self.braids_accepted = 0
        self.instructions_issued = 0

    # --------------------------------------------------------------- capacity
    @property
    def drained(self) -> bool:
        """All accepted instructions have issued."""
        return not self.fifo

    def can_accept_braid(self) -> bool:
        """May a *new* braid be distributed to this BEU?

        Paper default: "A BEU can accept a new braid if it is not processing
        another braid" — i.e. only when drained.  The ``beu_queue_braids``
        ablation relaxes this to simple FIFO-space availability.
        """
        if self.config.beu_queue_braids:
            return len(self.fifo) < self.config.cluster_entries
        return self.drained

    def has_space(self) -> bool:
        return len(self.fifo) < self.config.cluster_entries

    def enqueue(self, winst) -> None:
        if not self.has_space():
            raise RuntimeError(f"BEU {self.beu_id}: FIFO overflow")
        self.fifo.append(winst)

    def start_braid(self) -> None:
        self.braids_accepted += 1
