"""Simulation results and stall accounting."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class StallCounters:
    """Why dispatch could not make progress, counted per blocked cycle-slot."""

    fetch_buffer_empty: int = 0
    alloc_width: int = 0
    rename_width: int = 0
    regfile_entries: int = 0
    structure_full: int = 0
    checkpoints: int = 0
    in_flight_cap: int = 0

    def as_dict(self) -> Dict[str, int]:
        return dict(self.__dict__)


@dataclass
class SimResult:
    """Outcome of one timing simulation."""

    benchmark: str
    machine: str
    cycles: int
    instructions: int
    #: dynamic branches and how many were mispredicted
    branches: int = 0
    mispredicts: int = 0
    #: issue-slot utilisation
    issued: int = 0
    stalls: StallCounters = field(default_factory=StallCounters)
    extra: Dict[str, float] = field(default_factory=dict)

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def mispredict_rate(self) -> float:
        return self.mispredicts / self.branches if self.branches else 0.0

    def speedup_over(self, baseline: "SimResult") -> float:
        """IPC ratio vs a baseline run of the same benchmark."""
        if baseline.benchmark != self.benchmark:
            raise ValueError(
                f"speedup comparison across different benchmarks: "
                f"{self.benchmark} vs {baseline.benchmark}"
            )
        if baseline.ipc == 0:
            return 0.0
        return self.ipc / baseline.ipc

    def summary(self) -> str:
        return (
            f"{self.benchmark:12s} {self.machine:14s} "
            f"IPC={self.ipc:5.2f} cycles={self.cycles:8d} "
            f"instructions={self.instructions:8d}"
        )
