"""Simulation results and stall accounting."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional


@dataclass
class StallCounters:
    """Why dispatch could not make progress, counted per blocked cycle-slot."""

    fetch_buffer_empty: int = 0
    alloc_width: int = 0
    rename_width: int = 0
    regfile_entries: int = 0
    structure_full: int = 0
    checkpoints: int = 0
    in_flight_cap: int = 0

    def as_dict(self) -> Dict[str, int]:
        return dict(self.__dict__)


@dataclass
class SimResult:
    """Outcome of one timing simulation.

    Exact runs report measured totals.  Interval-sampled runs
    (:mod:`repro.sim.sampling`) report *estimated* ``cycles`` extrapolated
    from the measured windows, flag themselves with ``sampled``, and carry
    the estimate's uncertainty in ``cycles_stderr``; ``issued`` and
    ``stalls`` then cover only the measured windows
    (``sample_measured_instructions`` of the ``instructions`` total).
    """

    benchmark: str
    machine: str
    cycles: int
    instructions: int
    #: dynamic branches and how many were mispredicted
    branches: int = 0
    mispredicts: int = 0
    #: issue-slot utilisation
    issued: int = 0
    stalls: StallCounters = field(default_factory=StallCounters)
    extra: Dict[str, float] = field(default_factory=dict)
    #: interval sampling: estimate provenance and uncertainty
    sampled: bool = False
    #: which fidelity tier produced this result: ``exact`` (every
    #: instruction simulated), ``sampled`` (every stride-th unit
    #: measured, rest extrapolated), or ``interval`` (a few calibration
    #: windows measured, rest predicted analytically)
    fidelity: str = "exact"
    sample_intervals: int = 0
    sample_measured_instructions: int = 0
    sample_detail_instructions: int = 0
    #: standard error of the extrapolated cycle count (0.0 for exact runs)
    cycles_stderr: float = 0.0
    #: observability (populated only when an Observer was attached):
    #: per-cause cycle components summing to ``cycles`` (see repro.obs.cpi)
    cpi_stack: Optional[Dict[str, float]] = None
    #: telemetry summary from repro.obs.metrics (histogram digests)
    metrics: Optional[Dict[str, Any]] = None

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def counters_cover(self) -> int:
        """Instructions the ``issued``/``stalls`` counters actually cover.

        Exact runs count every retired instruction; sampled runs count only
        the measured windows.  Any consumer that mixes ``issued``/``stalls``
        with ``instructions`` (a trace total) must normalize through this
        denominator — comparing a sampled run's window-only counters against
        an exact run's totals is meaningless otherwise.
        """
        if self.sampled:
            return self.sample_measured_instructions
        return self.instructions

    @property
    def issue_rate(self) -> float:
        """Issue slots used per covered instruction (mode-safe)."""
        cover = self.counters_cover
        return self.issued / cover if cover else 0.0

    def stall_rates(self) -> Dict[str, float]:
        """Stall cycle-slots per covered instruction, by reason.

        Safe to compare across exact and sampled runs of the same point:
        both sides are normalized by :attr:`counters_cover`.
        """
        cover = self.counters_cover
        if not cover:
            return {name: 0.0 for name in self.stalls.as_dict()}
        return {
            name: value / cover for name, value in self.stalls.as_dict().items()
        }

    @property
    def ipc_stderr(self) -> float:
        """Standard error of the IPC estimate (0.0 for exact runs).

        First-order propagation through ``ipc = instructions / cycles``:
        ``se(ipc) = instructions * se(cycles) / cycles**2``.
        """
        if not self.cycles:
            return 0.0
        return self.instructions * self.cycles_stderr / (self.cycles ** 2)

    @property
    def ipc_ci95(self) -> float:
        """Half-width of the normal-approximation 95% CI on IPC."""
        return 1.96 * self.ipc_stderr

    @property
    def mispredict_rate(self) -> float:
        return self.mispredicts / self.branches if self.branches else 0.0

    def speedup_over(self, baseline: "SimResult") -> float:
        """IPC ratio vs a baseline run of the same benchmark."""
        if baseline.benchmark != self.benchmark:
            raise ValueError(
                f"speedup comparison across different benchmarks: "
                f"{self.benchmark} vs {baseline.benchmark}"
            )
        if baseline.ipc == 0:
            return 0.0
        return self.ipc / baseline.ipc

    def summary(self) -> str:
        text = (
            f"{self.benchmark:12s} {self.machine:14s} "
            f"IPC={self.ipc:5.2f} cycles={self.cycles:8d} "
            f"instructions={self.instructions:8d}"
        )
        if self.sampled:
            text += (
                f" (sampled: {self.sample_intervals} intervals, "
                f"IPC ±{self.ipc_ci95:.3f})"
            )
        return text
