"""CG-OoO-style block-granular coarse out-of-order core (fifth paradigm).

The design point between the in-order and full out-of-order machines
modeled after CG-OoO (coarse-grain out-of-order, PAPERS.md): scheduling
decisions are made at *block* granularity instead of per instruction.
Dispatch steers each code block — a run of instructions ending at a
branch or at :data:`_BLOCK_CAP` entries — whole into the least-occupied
block window.  Across windows execution is out of order (every window's
head region is examined each cycle, oldest-window-first); within a window
a small skip-ahead region of ``beu_window`` entries may issue out of
order, so the expensive broadcast wakeup CAM shrinks to the few examined
entries per window while most of the window is a cheap FIFO RAM.

The entire paradigm is this one file: the timing model composes the
shared kernel helpers (:meth:`~repro.sim.core.TimingCore.issue_skipahead`
with a global budget, :meth:`~repro.sim.core.TimingCore.head_issue_horizon`
over the examined entries, the shared FIFO invariants), the config
factory derives from the conventional machine, the fault injector and
complexity/energy declarations ride the class, and the registry entry at
the bottom makes validation, fault campaigns, observability, and both
timing kernels apply with no per-layer edits.
"""

from __future__ import annotations

from collections import deque
from dataclasses import replace
from typing import List, Optional

from ..uarch.funit import FunctionalUnitPool
from ..uarch.regfile import RegFileSpec
from .config import CoreKind, MachineConfig, ooo_config
from .core import TimingCore, WInst
from .registry import CoreDescriptor, register_core
from .workload import PreparedWorkload

#: block delimiter: a block ends at a branch or after this many entries
_BLOCK_CAP = 8


def blockooo_config(width: int = 8, **overrides) -> MachineConfig:
    """Block-granular coarse out-of-order machine at ``width``.

    Derived from the conventional machine with the structures CG-OoO
    shrinks: half-depth block windows (16 entries each), a 3-entry
    skip-ahead region per window in place of full-window wakeup, a
    half-size register file, and a 2-level bypass.
    """
    base = ooo_config(width)
    config = replace(
        base,
        kind=CoreKind.BLOCK_OOO,
        name=f"blockooo-{width}w",
        regfile=RegFileSpec(entries=16 * width, read_ports=2 * width,
                            write_ports=width),
        bypass_levels=2,
        cluster_entries=16,
        beu_window=3,
        max_in_flight=width * 16,
    )
    return replace(config, **overrides) if overrides else config


def _inject_block_window(core: "BlockOoOCore", rng) -> Optional[str]:
    """Flip one occupied block window's head pointer (a rotation)."""
    occupied = [window for window in core._windows if window]
    if not occupied:
        return None
    window = occupied[rng.randrange(len(occupied))]
    direction = rng.choice((-1, 1))
    window.rotate(direction)
    return f"block-window pointer bit flip (rotated {direction:+d})"


class BlockOoOCore(TimingCore):
    """Block-steered dispatch, inter-block OoO, small intra-block windows."""

    fault_structures = ("scheduler",)
    fault_injectors = {"scheduler": _inject_block_window}

    @classmethod
    def scheduler_comparators(cls, config: MachineConfig) -> int:
        # Limited wakeup: only the skip-ahead entries of each window carry
        # tag comparators; the rest of the window is FIFO RAM.
        return (
            config.clusters * config.beu_window * 2 * config.issue_width
        )

    @classmethod
    def wakeup_energy_entries(cls, config: MachineConfig) -> int:
        return config.clusters * config.beu_window

    def __init__(self, workload: PreparedWorkload, config: MachineConfig) -> None:
        super().__init__(workload, config)
        self.fus = FunctionalUnitPool(config.functional_units)
        self._windows: List[deque] = [
            deque() for _ in range(config.clusters)
        ]
        #: window receiving the currently open block (-1 between blocks)
        self._open_window = -1
        self._block_len = 0

    # -------------------------------------------------------------- dispatch
    def accept(self, winst: WInst, cycle: int) -> bool:
        windows = self._windows
        capacity = self.config.cluster_entries
        index = self._open_window
        if index < 0:
            # Steer the new block whole to the least-occupied window
            # (first-minimum tie-break, early exit on an empty window —
            # the same argmin scan the conventional core's dispatch uses).
            best = 0
            best_len = len(windows[0])
            if best_len:
                for i in range(1, len(windows)):
                    occupancy = len(windows[i])
                    if occupancy < best_len:
                        best = i
                        best_len = occupancy
                        if not occupancy:
                            break
            if best_len >= capacity:
                return False
            index = best
            self._open_window = index
            self._block_len = 0
        window = windows[index]
        if len(window) >= capacity:
            # A block outgrowing its window stalls dispatch until the
            # window head drains (the braid's Figure 10 effect, at block
            # granularity).
            return False
        window.append(winst)
        winst.cluster = index
        self._block_len += 1
        if winst.is_branch or self._block_len >= _BLOCK_CAP:
            self._open_window = -1  # block ends; the next starts fresh
        return True

    def on_fast_forward(self) -> None:
        # Post-drain every window is empty; drop the open-block pointer so
        # the next sampled window starts a fresh block on a clean core.
        for window in self._windows:
            window.clear()
        self._open_window = -1
        self._block_len = 0

    def dispatch_block_cause(self) -> str:
        return "structural_fifo"

    def scheduler_occupancy(self) -> int:
        return sum(len(window) for window in self._windows)

    def core_invariants(self, cycle: int):
        if not -1 <= self._open_window < len(self._windows):
            yield (
                f"open-block pointer {self._open_window} outside "
                f"[-1, {len(self._windows)})"
            )
        capacity = self.config.cluster_entries
        total = 0
        for index, window in enumerate(self._windows):
            total += len(window)
            yield from self.fifo_invariants(
                f"block window {index}", window, capacity, cluster=index
            )
        yield from self.occupancy_sum_invariant("block window", total)

    # ------------------------------------------------------------------ issue
    def issue_horizon(self, cycle):
        # Each window examines its first ``beu_window`` entries; the
        # shared head-scan certification applies to exactly those.
        cap = self.config.beu_window
        return self.head_issue_horizon(
            cycle,
            (
                window[i]
                for window in self._windows
                for i in range(min(len(window), cap))
            ),
        )

    def issue_stage(self, cycle: int) -> None:
        budget = self.config.issue_width
        cap = self.config.beu_window
        fus = self.fus
        issue_skipahead = self.issue_skipahead
        for window in self._windows:
            if budget == 0:
                break
            if not window:
                continue
            budget -= issue_skipahead(
                window, cycle, min(cap, len(window)), fus,
                max_issues=budget,
            )


register_core(CoreDescriptor(
    kind=CoreKind.BLOCK_OOO,
    key="blockooo",
    core_class=BlockOoOCore,
    config_factory=blockooo_config,
    description="block-granular coarse out-of-order (CG-OoO style)",
))
