"""FIFO-based dependence-steering core (Palacharla, Jouppi & Smith).

The paper's third paradigm (Figure 13): "a simple and implementable
algorithm with a design complexity that is comparable to braids".  Dispatch
steers each instruction into one of N in-order FIFOs using the classic
heuristic: follow your producer if it is at the tail of a FIFO, start an
empty FIFO otherwise, stall if neither applies.  Only FIFO heads are
examined for issue — the shared kernel helpers
(:meth:`~repro.sim.core.TimingCore.issue_in_order` per FIFO head,
:meth:`~repro.sim.core.TimingCore.head_issue_horizon` over the heads) —
so scheduling complexity is linear in the number of FIFOs rather than in
the window size.
"""

from __future__ import annotations

from collections import deque
from typing import List, Optional

from ..uarch.funit import FunctionalUnitPool
from .config import CoreKind, MachineConfig, depsteer_config
from .core import TimingCore, WInst
from .registry import CoreDescriptor, register_core
from .workload import PreparedWorkload


def _inject_fifo(core: "DependenceSteeringCore", rng) -> Optional[str]:
    """Flip one occupied steering FIFO's head pointer (a rotation)."""
    occupied = [fifo for fifo in core._fifos if fifo]
    if not occupied:
        return None
    fifo = occupied[rng.randrange(len(occupied))]
    direction = rng.choice((-1, 1))
    fifo.rotate(direction)
    return f"steering FIFO pointer bit flip (rotated {direction:+d})"


class DependenceSteeringCore(TimingCore):
    """Out-of-order performance from in-order FIFOs plus dependence steering."""

    fault_structures = ("scheduler",)
    fault_injectors = {"scheduler": _inject_fifo}

    @classmethod
    def scheduler_comparators(cls, config: MachineConfig) -> int:
        return 0  # only FIFO heads are examined; no wakeup CAM

    @classmethod
    def wakeup_energy_entries(cls, config: MachineConfig) -> int:
        return config.clusters  # one head check per FIFO per completing tag

    def __init__(self, workload: PreparedWorkload, config: MachineConfig) -> None:
        super().__init__(workload, config)
        self.fus = FunctionalUnitPool(config.functional_units)
        self._fifos: List[deque] = [deque() for _ in range(config.clusters)]
        self._cluster_entries = config.cluster_entries

    # -------------------------------------------------------------- steering
    def _steer(self, winst: WInst) -> Optional[int]:
        """Palacharla-style FIFO choice, or None to stall."""
        capacity = self._cluster_entries
        fifos = self._fifos
        # Rule 1: an in-flight producer sitting at the tail of a FIFO lets the
        # chain continue in that FIFO.
        for producer, _internal in winst.deps:
            if producer is None or producer.done or producer.issue_cycle is not None:
                continue
            fifo_index = producer.cluster
            if fifo_index < 0:
                continue
            fifo = fifos[fifo_index]
            if fifo and fifo[-1] is producer and len(fifo) < capacity:
                return fifo_index
        # Rule 2: otherwise open a new chain in an empty FIFO.
        for fifo_index, fifo in enumerate(fifos):
            if not fifo:
                return fifo_index
        return None

    def accept(self, winst: WInst, cycle: int) -> bool:
        fifo_index = self._steer(winst)
        if fifo_index is None:
            return False
        winst.cluster = fifo_index
        self._fifos[fifo_index].append(winst)
        return True

    def on_fast_forward(self) -> None:
        # Every steered chain has issued by drain time; clear the FIFOs so a
        # sampling gap cannot carry stale chains into the next window.
        for fifo in self._fifos:
            fifo.clear()

    def dispatch_block_cause(self) -> str:
        return "structural_fifo"

    def scheduler_occupancy(self) -> int:
        return sum(len(fifo) for fifo in self._fifos)

    def core_invariants(self, cycle: int):
        capacity = self.config.cluster_entries
        total = 0
        for index, fifo in enumerate(self._fifos):
            total += len(fifo)
            yield from self.fifo_invariants(
                f"FIFO {index}", fifo, capacity, cluster=index
            )
        yield from self.occupancy_sum_invariant("FIFO", total)

    # ------------------------------------------------------------------ issue
    def issue_horizon(self, cycle):
        # Only FIFO heads are examined.
        return self.head_issue_horizon(
            cycle, (fifo[0] for fifo in self._fifos if fifo)
        )

    def issue_stage(self, cycle: int) -> None:
        # Each FIFO's head is examined once per cycle; a blocked head does
        # not stop the scan across FIFOs (only within its own chain).
        budget = self.config.issue_width
        fus = self.fus
        issue_in_order = self.issue_in_order
        for fifo in self._fifos:
            if budget == 0:
                break
            if not fifo:
                continue
            budget -= issue_in_order(fifo, cycle, fus, 1)


register_core(CoreDescriptor(
    kind=CoreKind.DEP_STEER,
    key="depsteer",
    core_class=DependenceSteeringCore,
    config_factory=depsteer_config,
    description="dependence-steering FIFOs (Palacharla et al. style)",
))
