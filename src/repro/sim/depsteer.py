"""FIFO-based dependence-steering core (Palacharla, Jouppi & Smith).

The paper's third paradigm (Figure 13): "a simple and implementable
algorithm with a design complexity that is comparable to braids".  Dispatch
steers each instruction into one of N in-order FIFOs using the classic
heuristic: follow your producer if it is at the tail of a FIFO, start an
empty FIFO otherwise, stall if neither applies.  Only FIFO heads are
examined for issue, so scheduling complexity is linear in the number of
FIFOs rather than in the window size.
"""

from __future__ import annotations

from collections import deque
from typing import List, Optional

from ..uarch.funit import FunctionalUnitPool
from .config import MachineConfig
from .core import PARKED, TimingCore, WInst
from .workload import PreparedWorkload


class DependenceSteeringCore(TimingCore):
    """Out-of-order performance from in-order FIFOs plus dependence steering."""

    def __init__(self, workload: PreparedWorkload, config: MachineConfig) -> None:
        super().__init__(workload, config)
        self.fus = FunctionalUnitPool(config.functional_units)
        self._fifos: List[deque] = [deque() for _ in range(config.clusters)]
        self._cluster_entries = config.cluster_entries

    # -------------------------------------------------------------- steering
    def _steer(self, winst: WInst) -> Optional[int]:
        """Palacharla-style FIFO choice, or None to stall."""
        capacity = self._cluster_entries
        fifos = self._fifos
        # Rule 1: an in-flight producer sitting at the tail of a FIFO lets the
        # chain continue in that FIFO.
        for producer, _internal in winst.deps:
            if producer is None or producer.done or producer.issue_cycle is not None:
                continue
            fifo_index = producer.cluster
            if fifo_index < 0:
                continue
            fifo = fifos[fifo_index]
            if fifo and fifo[-1] is producer and len(fifo) < capacity:
                return fifo_index
        # Rule 2: otherwise open a new chain in an empty FIFO.
        for fifo_index, fifo in enumerate(fifos):
            if not fifo:
                return fifo_index
        return None

    def accept(self, winst: WInst, cycle: int) -> bool:
        fifo_index = self._steer(winst)
        if fifo_index is None:
            return False
        winst.cluster = fifo_index
        self._fifos[fifo_index].append(winst)
        return True

    def on_fast_forward(self) -> None:
        # Every steered chain has issued by drain time; clear the FIFOs so a
        # sampling gap cannot carry stale chains into the next window.
        for fifo in self._fifos:
            fifo.clear()

    def dispatch_block_cause(self) -> str:
        return "structural_fifo"

    def scheduler_occupancy(self) -> int:
        return sum(len(fifo) for fifo in self._fifos)

    def core_invariants(self, cycle: int):
        capacity = self.config.cluster_entries
        total = 0
        for index, fifo in enumerate(self._fifos):
            if len(fifo) > capacity:
                yield f"FIFO {index} holds {len(fifo)}, capacity {capacity}"
            total += len(fifo)
            previous = -1
            for winst in fifo:
                if winst.issue_cycle is not None:
                    yield f"issued instruction seq={winst.seq} still in FIFO {index}"
                if winst.cluster != index:
                    yield (
                        f"seq={winst.seq} steered to FIFO {winst.cluster} "
                        f"but found in FIFO {index}"
                    )
                if winst.seq <= previous:
                    yield f"FIFO {index} out of dispatch order at seq={winst.seq}"
                previous = winst.seq
        unissued = len(self.unissued_in_flight())
        if total != unissued:
            yield (
                f"FIFO occupancy sum {total} != {unissued} "
                f"dispatched-but-unissued instructions"
            )

    # ------------------------------------------------------------------ issue
    def issue_horizon(self, cycle):
        # Only FIFO heads are examined.  A head that is pending (producer
        # outstanding) or parked on a store wakes via a completion-side
        # event; a head with a certified issue_wake bound contributes that
        # bound; a head free of both may act now.
        wake = None
        for fifo in self._fifos:
            if fifo:
                head = fifo[0]
                if head.pending:
                    continue
                bound = head.issue_wake
                if bound <= cycle:
                    return cycle
                if bound < PARKED and (wake is None or bound < wake):
                    wake = bound
        return wake

    def issue_stage(self, cycle: int) -> None:
        budget = self.config.issue_width
        try_issue = self.try_issue
        fus = self.fus
        for fifo in self._fifos:
            if budget == 0:
                break
            if not fifo:
                continue
            winst = fifo[0]
            # pending: a producer is outstanding, the dependence walk would
            # fail.  issue_wake: a previous attempt certified the earliest
            # cycle its failed check could pass; retrying before then would
            # fail identically without touching any exported counter.
            if winst.pending or winst.issue_wake > cycle:
                continue
            if try_issue(winst, cycle, fus):
                fifo.popleft()
                budget -= 1
            else:
                self._note_issue_block(winst, cycle)
