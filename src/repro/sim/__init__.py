"""Simulators: functional executor and cycle-level timing cores."""

from .beu import BraidExecutionUnit
from .blockooo import BlockOoOCore, blockooo_config
from .braidcore import BraidCore
from .config import (
    CoreKind,
    FrontEndConfig,
    MachineConfig,
    braid_config,
    depsteer_config,
    inorder_config,
    ooo_config,
)
from .core import SimulationError, TimingCore, WInst
from .pipeview import PipeviewError, render_pipeview, stage_latencies
from .depsteer import DependenceSteeringCore
from .inorder import InOrderCore
from .ooo import OutOfOrderCore
from .registry import (
    CoreDescriptor,
    CoreRegistryError,
    core_keys,
    core_registry,
    descriptor_for,
    descriptor_for_key,
    paradigm_configs,
    register_core,
)
from .batch import simulate_batch
from .interval import IntervalConfig, interval_from_env, simulate_interval
from .results import SimResult, StallCounters
from .run import FIDELITIES, build_core, simulate
from .sampling import (
    SamplePlan,
    SamplingConfig,
    detect_anchors,
    plan_windows,
    sampling_from_env,
    simulate_sampled,
)
from .workload import PreparedWorkload, WorkloadStats, prepare_workload
from .functional import (
    ArchState,
    DynInst,
    ExecutionError,
    ExecutionStats,
    FunctionalExecutor,
    ProgramLayout,
    execute,
    observably_equivalent,
)

__all__ = [
    "BraidExecutionUnit",
    "BlockOoOCore",
    "BraidCore",
    "CoreKind",
    "FrontEndConfig",
    "MachineConfig",
    "blockooo_config",
    "braid_config",
    "depsteer_config",
    "inorder_config",
    "ooo_config",
    "CoreDescriptor",
    "CoreRegistryError",
    "core_keys",
    "core_registry",
    "descriptor_for",
    "descriptor_for_key",
    "paradigm_configs",
    "register_core",
    "SimulationError",
    "TimingCore",
    "WInst",
    "PipeviewError",
    "render_pipeview",
    "stage_latencies",
    "DependenceSteeringCore",
    "InOrderCore",
    "OutOfOrderCore",
    "SimResult",
    "StallCounters",
    "FIDELITIES",
    "build_core",
    "simulate",
    "simulate_batch",
    "IntervalConfig",
    "interval_from_env",
    "simulate_interval",
    "SamplePlan",
    "SamplingConfig",
    "detect_anchors",
    "plan_windows",
    "sampling_from_env",
    "simulate_sampled",
    "PreparedWorkload",
    "WorkloadStats",
    "prepare_workload",
    "ArchState",
    "DynInst",
    "ExecutionError",
    "ExecutionStats",
    "FunctionalExecutor",
    "ProgramLayout",
    "execute",
    "observably_equivalent",
]
