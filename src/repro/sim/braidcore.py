"""The braid microarchitecture core (paper Figure 4, section 3.3).

Differences from the conventional core are confined to the execution core,
exactly as in the paper:

* **Distribute** replaces scheduler dispatch: the braid start bit (S)
  delimits braids; a whole braid is sent to one free BEU, and distribution
  stalls while no BEU is free or the braid overflows its FIFO.
* **BEUs** replace the out-of-order schedulers: each has a 2-entry in-order
  scheduling window at the head of a 32-entry FIFO and two functional units.
* Internal operands read the per-BEU internal register file (free of global
  port pressure); only external operands consult the busy-bit vector and
  consume external register file ports or the (1-level, 2-value) bypass.
* Instructions writing only internal registers never allocate an external
  register entry, and internal operands are never renamed — both effects are
  inherited from the annotation-aware base-class bookkeeping.

The issue mechanics compose the shared kernel helpers: strict windows use
:meth:`~repro.sim.core.TimingCore.issue_in_order`, the default
windowed-out-of-order mode uses
:meth:`~repro.sim.core.TimingCore.issue_skipahead`, and the horizon is
:meth:`~repro.sim.core.TimingCore.head_issue_horizon` over the examined
window entries.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from .beu import BraidExecutionUnit
from .config import CoreKind, MachineConfig, braid_config
from .core import TimingCore, WInst
from .registry import CoreDescriptor, register_core
from .workload import PreparedWorkload


def _inject_beu_fifo(core: "BraidCore", rng) -> Optional[str]:
    """Flip a BEU FIFO head pointer or one busy bit."""
    beus = [beu for beu in core.beus if beu.fifo]
    if not beus:
        return None
    beu = beus[rng.randrange(len(beus))]
    mode = rng.choice(("pointer", "busybit"))
    if mode == "pointer" and len(beu.fifo) > 1:
        direction = rng.choice((-1, 1))
        beu.fifo.rotate(direction)
        return f"BEU {beu.beu_id} FIFO pointer flip (rotated {direction:+d})"
    winst = beu.fifo[rng.randrange(len(beu.fifo))]
    beu.busybits.toggle(winst.seq)
    return f"BEU {beu.beu_id} busy bit toggled for seq {winst.seq}"


def _inject_partition(core: "BraidCore", rng) -> Optional[str]:
    # The braid's external/internal classification bits travel with each
    # in-flight instruction; flip one on a not-yet-issued instruction so
    # the issue and writeback stages observe the corrupted bit.
    candidates = [w for w in core._rob if w.issue_cycle is None]
    if not candidates:
        return None
    winst = candidates[rng.randrange(len(candidates))]
    if rng.random() < 0.5:
        winst.dest_external = not winst.dest_external
        return (
            f"partition external bit -> {winst.dest_external} "
            f"on seq {winst.seq}"
        )
    winst.dest_internal = not winst.dest_internal
    return (
        f"partition internal bit -> {winst.dest_internal} "
        f"on seq {winst.seq}"
    )


class BraidCore(TimingCore):
    """Timing model of the braid microarchitecture."""

    fault_structures = ("beu_fifo", "partition")
    fault_injectors = {
        "beu_fifo": _inject_beu_fifo,
        "partition": _inject_partition,
    }
    #: internal values are never checkpointed (paper section 3.4)
    checkpoints_value_entries = False

    @classmethod
    def fault_state_bits(cls, config, weights):
        return {
            # FIFO slots hold a queue tag, no wakeup CAM; plus one busy
            # bit per external register entry per BEU.
            "beu_fifo": (
                config.clusters * config.cluster_entries
                * weights["beu_fifo_entry"]
                + config.clusters * config.regfile.entries
            ),
            # Two annotation bits (external/internal destination) per
            # in-flight instruction.
            "partition": config.max_in_flight * 2,
        }

    @classmethod
    def scheduler_comparators(cls, config: MachineConfig) -> int:
        # FIFO windows: no tag broadcast; readiness checks only at the
        # window entries against the busy-bit vector.
        return 0

    @classmethod
    def wakeup_energy_entries(cls, config: MachineConfig) -> int:
        return config.beu_window  # only the BEU window entries are checked

    def __init__(self, workload: PreparedWorkload, config: MachineConfig) -> None:
        super().__init__(workload, config)
        self.beus: List[BraidExecutionUnit] = [
            BraidExecutionUnit(beu_id, config) for beu_id in range(config.clusters)
        ]
        self._open_beu: Optional[BraidExecutionUnit] = None
        self._next_beu_hint = 0
        self.distribute_stalls = 0
        #: per-BEU issue bookkeeping callbacks for the shared issue helpers
        self._issue_notes: List[Callable[[WInst], None]] = [
            self._make_issue_note(beu) for beu in self.beus
        ]

    def _make_issue_note(self, beu: BraidExecutionUnit):
        def note(winst: WInst) -> None:
            beu.instructions_issued += 1
            if winst.dest_external:
                # The busy bit clears when the value becomes ready; model
                # the event at the known completion time.
                beu.busybits.mark_ready(winst.seq)
        return note

    # ------------------------------------------------------------- distribute
    def _find_free_beu(self) -> Optional[BraidExecutionUnit]:
        count = len(self.beus)
        for offset in range(count):
            beu = self.beus[(self._next_beu_hint + offset) % count]
            if beu.can_accept_braid():
                self._next_beu_hint = (beu.beu_id + 1) % count
                return beu
        return None

    def dep_delay(self, producer: WInst, consumer: WInst) -> int:
        """Cross-cluster forwarding penalty (paper section 5.2 clustering)."""
        size = self.config.beu_cluster_size
        if size <= 0 or producer.cluster < 0 or consumer.cluster < 0:
            return 0
        if producer.cluster // size == consumer.cluster // size:
            return 0
        return self.config.inter_cluster_delay

    def on_fast_forward(self) -> None:
        # A sampling gap may cut the trace mid-braid: the next window's first
        # instruction then has no start bit, so drop the open-braid pointer
        # and let it begin a fresh braid on a free BEU.  Busy bits of drained
        # values are already clear; FIFOs are empty post-drain.
        self._open_beu = None
        for beu in self.beus:
            beu.fifo.clear()

    def dispatch_block_cause(self) -> str:
        return "structural_fifo"

    def scheduler_occupancy(self) -> int:
        return sum(len(beu.fifo) for beu in self.beus)

    def accept(self, winst: WInst, cycle: int) -> bool:
        if self.config.beu_exception_mode:
            # Exception processing (paper section 3.4): all but one BEU are
            # disabled; everything funnels through BEU 0 in order.
            beu = self.beus[0]
            if not beu.has_space():
                self.distribute_stalls += 1
                return False
            if winst.start:
                beu.start_braid()
            beu.enqueue(winst)
            winst.cluster = 0
            return True
        starts_braid = winst.start or self._open_beu is None
        if starts_braid:
            beu = self._find_free_beu()
            if beu is None:
                self.distribute_stalls += 1
                return False
            beu.start_braid()
            self._open_beu = beu
        beu = self._open_beu
        if not beu.has_space():
            # A braid longer than the FIFO stalls distribution until the
            # head drains (the Figure 10 effect).
            self.distribute_stalls += 1
            return False
        beu.enqueue(winst)
        winst.cluster = beu.beu_id
        # Busy-bit bookkeeping: external destinations become busy now and
        # ready at completion (cleared in complete handling via readiness).
        if winst.dest_external:
            beu.busybits.mark_busy(winst.seq)
        return True

    # ------------------------------------------------------------------ issue
    def _window_depth_cap(self) -> int:
        """Entries examined per BEU FIFO this cycle (1 in strict or
        exception mode, the configured window otherwise)."""
        config = self.config
        if config.beu_exception_mode:
            return 1
        window = config.beu_window
        if not config.beu_window_ooo:
            return min(window, 1)
        return window

    def issue_horizon(self, cycle):
        # Each BEU examines its scheduling window (the FIFO head in strict
        # or exception mode); the shared head-scan certification applies
        # verbatim to the examined entries.
        if self.config.beu_exception_mode:
            fifo = self.beus[0].fifo
            return self.head_issue_horizon(
                cycle, (fifo[0],) if fifo else ()
            )
        cap = self._window_depth_cap()
        return self.head_issue_horizon(
            cycle,
            (
                beu.fifo[i]
                for beu in self.beus
                for i in range(min(len(beu.fifo), cap))
            ),
        )

    def issue_stage(self, cycle: int) -> None:
        window_size = self.config.beu_window
        strict = not self.config.beu_window_ooo
        if self.config.beu_exception_mode:
            window_size = 1  # strictly in-order during exception handling
            strict = True
        notes = self._issue_notes
        for beu in self.beus:
            fifo = beu.fifo
            if not fifo:
                continue
            if strict:
                self.issue_in_order(
                    fifo, cycle, beu.fus, window_size,
                    internal_reads=beu.internal_reads,
                    internal_writes=beu.internal_writes,
                    on_issue=notes[beu.beu_id],
                )
            else:
                self.issue_skipahead(
                    fifo, cycle, min(window_size, len(fifo)), beu.fus,
                    internal_reads=beu.internal_reads,
                    internal_writes=beu.internal_writes,
                    on_issue=notes[beu.beu_id],
                )

    def core_invariants(self, cycle: int):
        if self._open_beu is not None and self._open_beu not in self.beus:
            yield "open-braid pointer references a foreign BEU"
        capacity = self.config.cluster_entries
        total = 0
        for beu in self.beus:
            total += len(beu.fifo)
            yield from self.fifo_invariants(
                f"BEU {beu.beu_id} FIFO", beu.fifo, capacity,
                cluster=beu.beu_id,
            )
            busy_external = sum(
                1 for winst in beu.fifo if winst.dest_external
            )
            if beu.busybits.occupancy > beu.busybits.bits:
                yield (
                    f"BEU {beu.beu_id} busy-bit occupancy "
                    f"{beu.busybits.occupancy} exceeds {beu.busybits.bits} bits"
                )
            if beu.busybits.occupancy != busy_external:
                yield (
                    f"BEU {beu.beu_id} busy bits ({beu.busybits.occupancy}) "
                    f"disagree with queued external destinations "
                    f"({busy_external})"
                )
        yield from self.occupancy_sum_invariant("BEU FIFO", total)

    # ------------------------------------------------------------- statistics
    def beu_utilization(self) -> List[int]:
        """Instructions issued per BEU (for load-balance analyses)."""
        return [beu.instructions_issued for beu in self.beus]

    def annotate_result(self, result) -> None:
        result.extra["internal_rf_reads"] = float(
            sum(beu.internal_reads.total_grants for beu in self.beus)
        )
        result.extra["internal_rf_writes"] = float(
            sum(beu.internal_writes.total_grants for beu in self.beus)
        )
        result.extra["distribute_stalls"] = float(self.distribute_stalls)
        result.extra["busybit_sets"] = float(
            sum(beu.busybits.set_events for beu in self.beus)
        )


register_core(CoreDescriptor(
    kind=CoreKind.BRAID,
    key="braid",
    core_class=BraidCore,
    config_factory=braid_config,
    braided=True,
    description="braid microarchitecture (the paper's proposal)",
))
