"""The braid microarchitecture core (paper Figure 4, section 3.3).

Differences from the conventional core are confined to the execution core,
exactly as in the paper:

* **Distribute** replaces scheduler dispatch: the braid start bit (S)
  delimits braids; a whole braid is sent to one free BEU, and distribution
  stalls while no BEU is free or the braid overflows its FIFO.
* **BEUs** replace the out-of-order schedulers: each has a 2-entry in-order
  scheduling window at the head of a 32-entry FIFO and two functional units.
* Internal operands read the per-BEU internal register file (free of global
  port pressure); only external operands consult the busy-bit vector and
  consume external register file ports or the (1-level, 2-value) bypass.
* Instructions writing only internal registers never allocate an external
  register entry, and internal operands are never renamed — both effects are
  inherited from the annotation-aware base-class bookkeeping.
"""

from __future__ import annotations

from typing import List, Optional

from .beu import BraidExecutionUnit
from .config import MachineConfig
from .core import PARKED, TimingCore, WInst
from .workload import PreparedWorkload


class BraidCore(TimingCore):
    """Timing model of the braid microarchitecture."""

    def __init__(self, workload: PreparedWorkload, config: MachineConfig) -> None:
        super().__init__(workload, config)
        self.beus: List[BraidExecutionUnit] = [
            BraidExecutionUnit(beu_id, config) for beu_id in range(config.clusters)
        ]
        self._open_beu: Optional[BraidExecutionUnit] = None
        self._next_beu_hint = 0
        self.distribute_stalls = 0

    # ------------------------------------------------------------- distribute
    def _find_free_beu(self) -> Optional[BraidExecutionUnit]:
        count = len(self.beus)
        for offset in range(count):
            beu = self.beus[(self._next_beu_hint + offset) % count]
            if beu.can_accept_braid():
                self._next_beu_hint = (beu.beu_id + 1) % count
                return beu
        return None

    def dep_delay(self, producer: WInst, consumer: WInst) -> int:
        """Cross-cluster forwarding penalty (paper section 5.2 clustering)."""
        size = self.config.beu_cluster_size
        if size <= 0 or producer.cluster < 0 or consumer.cluster < 0:
            return 0
        if producer.cluster // size == consumer.cluster // size:
            return 0
        return self.config.inter_cluster_delay

    def on_fast_forward(self) -> None:
        # A sampling gap may cut the trace mid-braid: the next window's first
        # instruction then has no start bit, so drop the open-braid pointer
        # and let it begin a fresh braid on a free BEU.  Busy bits of drained
        # values are already clear; FIFOs are empty post-drain.
        self._open_beu = None
        for beu in self.beus:
            beu.fifo.clear()

    def dispatch_block_cause(self) -> str:
        return "structural_fifo"

    def scheduler_occupancy(self) -> int:
        return sum(len(beu.fifo) for beu in self.beus)

    def accept(self, winst: WInst, cycle: int) -> bool:
        if self.config.beu_exception_mode:
            # Exception processing (paper section 3.4): all but one BEU are
            # disabled; everything funnels through BEU 0 in order.
            beu = self.beus[0]
            if not beu.has_space():
                self.distribute_stalls += 1
                return False
            if winst.start:
                beu.start_braid()
            beu.enqueue(winst)
            winst.cluster = 0
            return True
        starts_braid = winst.start or self._open_beu is None
        if starts_braid:
            beu = self._find_free_beu()
            if beu is None:
                self.distribute_stalls += 1
                return False
            beu.start_braid()
            self._open_beu = beu
        beu = self._open_beu
        if not beu.has_space():
            # A braid longer than the FIFO stalls distribution until the
            # head drains (the Figure 10 effect).
            self.distribute_stalls += 1
            return False
        beu.enqueue(winst)
        winst.cluster = beu.beu_id
        # Busy-bit bookkeeping: external destinations become busy now and
        # ready at completion (cleared in complete handling via readiness).
        if winst.dest_external:
            beu.busybits.mark_busy(winst.seq)
        return True

    # ------------------------------------------------------------------ issue
    def issue_horizon(self, cycle):
        # Each BEU examines its scheduling window (the FIFO head in strict
        # or exception mode); pending or parked entries wake via
        # completion-side events, entries with a certified issue_wake
        # bound contribute that bound, and any entry free of both may act
        # now.
        config = self.config
        wake = None
        if config.beu_exception_mode:
            fifo = self.beus[0].fifo
            if not fifo:
                return None
            head = fifo[0]
            if head.pending:
                return None
            bound = head.issue_wake
            if bound <= cycle:
                return cycle
            return None if bound >= PARKED else bound
        window_size = config.beu_window
        strict = not config.beu_window_ooo
        for beu in self.beus:
            fifo = beu.fifo
            depth = len(fifo)
            if depth > window_size:
                depth = window_size
            if strict and depth > 1:
                depth = 1
            for i in range(depth):
                winst = fifo[i]
                if winst.pending:
                    continue
                bound = winst.issue_wake
                if bound <= cycle:
                    return cycle
                if bound < PARKED and (wake is None or bound < wake):
                    wake = bound
        return wake

    def issue_stage(self, cycle: int) -> None:
        window_size = self.config.beu_window
        strict = not self.config.beu_window_ooo
        if self.config.beu_exception_mode:
            window_size = 1  # strictly in-order during exception handling
            strict = True
        for beu in self.beus:
            fifo = beu.fifo
            if not fifo:
                continue
            if strict:
                issued = 0
                while issued < window_size and fifo:
                    winst = fifo[0]
                    # pending > 0: a producer is outstanding, try_issue
                    # would fail its dependence walk — skip the call.  A
                    # certified issue_wake bound likewise proves the call
                    # would fail until that cycle.
                    if winst.pending or winst.issue_wake > cycle:
                        break
                    if not self.try_issue(
                        winst, cycle, beu.fus,
                        internal_reads=beu.internal_reads,
                        internal_writes=beu.internal_writes,
                    ):
                        self._note_issue_block(winst, cycle)
                        break
                    fifo.popleft()
                    beu.instructions_issued += 1
                    self._note_issue(beu, winst)
                    issued += 1
            else:
                depth = min(window_size, len(fifo))
                window = [fifo[i] for i in range(depth)]
                for winst in window:
                    if winst.pending or winst.issue_wake > cycle:
                        continue
                    if not self.try_issue(
                        winst, cycle, beu.fus,
                        internal_reads=beu.internal_reads,
                        internal_writes=beu.internal_writes,
                    ):
                        self._note_issue_block(winst, cycle)
                        continue
                    fifo.remove(winst)
                    beu.instructions_issued += 1
                    self._note_issue(beu, winst)

    def _note_issue(self, beu: BraidExecutionUnit, winst: WInst) -> None:
        if winst.dest_external:
            # The busy bit clears when the value becomes ready; model the
            # event at the known completion time.
            beu.busybits.mark_ready(winst.seq)

    def core_invariants(self, cycle: int):
        if self._open_beu is not None and self._open_beu not in self.beus:
            yield "open-braid pointer references a foreign BEU"
        capacity = self.config.cluster_entries
        total = 0
        for beu in self.beus:
            if len(beu.fifo) > capacity:
                yield (
                    f"BEU {beu.beu_id} FIFO holds {len(beu.fifo)}, "
                    f"capacity {capacity}"
                )
            total += len(beu.fifo)
            busy_external = 0
            previous = -1
            for winst in beu.fifo:
                if winst.issue_cycle is not None:
                    yield (
                        f"issued instruction seq={winst.seq} still in "
                        f"BEU {beu.beu_id} FIFO"
                    )
                if winst.cluster != beu.beu_id:
                    yield (
                        f"seq={winst.seq} tagged cluster {winst.cluster} "
                        f"but queued in BEU {beu.beu_id}"
                    )
                if winst.seq <= previous:
                    yield (
                        f"BEU {beu.beu_id} FIFO out of dispatch order "
                        f"at seq={winst.seq}"
                    )
                previous = winst.seq
                if winst.dest_external:
                    busy_external += 1
            if beu.busybits.occupancy > beu.busybits.bits:
                yield (
                    f"BEU {beu.beu_id} busy-bit occupancy "
                    f"{beu.busybits.occupancy} exceeds {beu.busybits.bits} bits"
                )
            if beu.busybits.occupancy != busy_external:
                yield (
                    f"BEU {beu.beu_id} busy bits ({beu.busybits.occupancy}) "
                    f"disagree with queued external destinations "
                    f"({busy_external})"
                )
        unissued = len(self.unissued_in_flight())
        if total != unissued:
            yield (
                f"BEU FIFO occupancy sum {total} != {unissued} "
                f"dispatched-but-unissued instructions"
            )

    # ------------------------------------------------------------- statistics
    def beu_utilization(self) -> List[int]:
        """Instructions issued per BEU (for load-balance analyses)."""
        return [beu.instructions_issued for beu in self.beus]

    def annotate_result(self, result) -> None:
        result.extra["internal_rf_reads"] = float(
            sum(beu.internal_reads.total_grants for beu in self.beus)
        )
        result.extra["internal_rf_writes"] = float(
            sum(beu.internal_writes.total_grants for beu in self.beus)
        )
        result.extra["distribute_stalls"] = float(self.distribute_stalls)
        result.extra["busybit_sets"] = float(
            sum(beu.busybits.set_events for beu in self.beus)
        )
