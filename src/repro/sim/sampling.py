"""Interval-sampled timing simulation with bounded-error IPC estimation.

Every sweep point used to replay every dynamic instruction cycle by cycle.
This module implements deterministic systematic sampling in the
SMARTS/SimPoint tradition: partition the trace into intervals, simulate a
systematic subset of them in detail (an unmeasured warmup window followed
by a measured window), fast-forward the gaps, and extrapolate whole-run
cycles/IPC with a per-benchmark standard-error estimate.

The repository's two-phase design makes this unusually safe.  Phase one
(:mod:`repro.sim.workload`) precomputes branch mispredictions and cache
latencies per dynamic instruction, in trace order, independent of any
machine configuration — so skipping instructions in phase two cannot
perturb predictor or cache state.  The only state a detailed window must
rebuild is pipeline occupancy (in-flight values, queue/FIFO fill, port
pressure), which the warmup window restores.

Interval placement (:func:`plan_windows`) is anchor-aware.  The synthetic
benchmarks are outer loops over inner-loop regions, so per-interval CPI is
strongly periodic in the outer-iteration length; a fixed-size interval
lattice aliases against that period, and a small systematic sample can
land on unrepresentative phases (observed errors up to 25% on the quick
suite).  The planner therefore detects the outer-iteration anchors
(recurrences of the most evenly spaced basic block) and snaps interval
boundaries to them:

* the **cold prefix** through the first iteration is always measured — it
  runs against cold phase-one caches and has an unrepresentative CPI;
* the **tail** from the last anchor is always measured — it contains the
  epilogue and the final pipeline drain;
* the **middle iterations** are sampled systematically (every
  ``stride``-th starting at ``seed % stride``), each warmed up across the
  entire preceding iteration so the measured window enters in
  steady-state occupancy.

Adjacent detailed windows (a sampled unit whose warmup is the previous
sampled unit's measured window) are merged into one continuous run:
draining and restarting the pipeline between them was measured to bias
early-window CPI by up to +14%, while continuous execution is bit-exact
against a full run over the same span.

Skipped units are extrapolated model-assisted (a GREG-style estimator): a
ridge least-squares CPI model is fit on the sampled units against the
free phase-one covariates (load-miss excess, mispredict rate, fetch-miss
extra, and the analytic proxy-pipeline CPI per instruction),
and each skipped unit gets the model prediction
plus the piecewise-linearly interpolated residual of its nearest sampled
neighbours, clamped to the sampled CPI range.  The model absorbs
iteration-to-iteration behaviour shifts (cache warming, data-dependent
branching) and the residual interpolation tracks what it misses; an odd
default stride straddles period-2 phase alternation.  A
finite-population-corrected standard error accompanies the estimate.

When the trace has no detectable outer-loop structure, the planner falls
back to a fixed-size lattice of ``interval``-instruction windows warmed
up over ``warmup`` instructions, with the same interpolating estimator.

Determinism: sampling is systematic, not random.  For a fixed
:class:`SamplingConfig` the measured windows are a pure function of the
trace, so repeated runs are bit-identical; ``seed`` deterministically
selects which residue class of intervals is measured.

Knobs: ``--sample`` on ``python -m repro.harness`` or ``REPRO_SAMPLE``
(``1``/``on`` for defaults, or e.g. ``stride=7,seed=1``).  Exact mode
remains the default everywhere.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from .config import MachineConfig
from .results import SimResult, StallCounters
from .run import build_core
from .workload import PreparedWorkload

_ENV_SAMPLE = "REPRO_SAMPLE"

#: Plans with fewer than this many *sampled* windows fall back to exact
#: simulation: extrapolating from a single window has no error estimate
#: and no meaningful speedup.
MIN_SAMPLED_INTERVALS = 2

#: Anchor detection needs at least this many outer iterations to pay for
#: the always-measured cold and tail strata.
_MIN_ANCHORS = 8

#: Recurrences whose spacing varies more than this ratio are blocks inside
#: data-dependent control flow, not outer-iteration anchors.
_MAX_GAP_RATIO = 4.0


@dataclass(frozen=True)
class SamplingConfig:
    """Systematic-sampling parameters.

    Every ``stride``-th interval is simulated in detail, starting from the
    ``seed % stride``-th; varying ``seed`` moves the sample placement for
    cross-validation without losing determinism.  ``interval`` and
    ``warmup`` size the measured and warmup windows on traces with no
    outer-loop anchors (anchor-aligned windows size themselves to the
    iteration length and warm up across the full preceding iteration).

    The default stride is odd on purpose: several benchmarks alternate
    between two per-iteration behaviours (data-dependent diamonds), and an
    even stride would sample only one phase of that alternation.
    """

    interval: int = 500
    stride: int = 5
    warmup: int = 512
    seed: int = 0

    def __post_init__(self) -> None:
        if self.interval < 1:
            raise ValueError(f"sampling interval must be >= 1, got {self.interval}")
        if self.stride < 2:
            raise ValueError(
                f"sampling stride must be >= 2 (1 would measure everything), "
                f"got {self.stride}"
            )
        if self.warmup < 0:
            raise ValueError(f"sampling warmup must be >= 0, got {self.warmup}")
        if self.seed < 0:
            raise ValueError(f"sampling seed must be >= 0, got {self.seed}")

    def cache_token(self) -> Tuple[int, int, int, int]:
        """Hashable identity for cache keys and worker specs."""
        return (self.interval, self.stride, self.warmup, self.seed)

    def spec(self) -> str:
        """Round-trippable textual form (the ``--sample`` argument)."""
        return (
            f"interval={self.interval},stride={self.stride},"
            f"warmup={self.warmup},seed={self.seed}"
        )

    @classmethod
    def parse(cls, text: str) -> "SamplingConfig":
        """Parse ``interval=500,stride=5,warmup=512,seed=0`` (all optional)."""
        text = text.strip()
        if not text or text.lower() in ("1", "on", "true", "default"):
            return cls()
        values: Dict[str, int] = {}
        for part in text.split(","):
            part = part.strip()
            if not part:
                continue
            if "=" not in part:
                raise ValueError(
                    f"bad sampling spec {text!r}: expected key=value pairs "
                    f"(interval/stride/warmup/seed), got {part!r}"
                )
            key, _, raw = part.partition("=")
            key = key.strip()
            if key not in ("interval", "stride", "warmup", "seed"):
                raise ValueError(
                    f"bad sampling spec {text!r}: unknown key {key!r} "
                    f"(expected interval/stride/warmup/seed)"
                )
            try:
                values[key] = int(raw.strip())
            except ValueError:
                raise ValueError(
                    f"bad sampling spec {text!r}: {key} must be an integer, "
                    f"got {raw.strip()!r}"
                ) from None
        return cls(**values)


def sampling_from_env() -> Optional[SamplingConfig]:
    """Resolve ``REPRO_SAMPLE``: unset/``0``/``off`` means exact mode."""
    value = os.environ.get(_ENV_SAMPLE, "").strip()
    if not value or value.lower() in ("0", "off", "false", "no", "none", "exact"):
        return None
    return SamplingConfig.parse(value)


def detect_anchors(trace: Sequence) -> Optional[List[int]]:
    """Outer-iteration start positions, from basic-block recurrences.

    The generated benchmarks are an outer loop over inner regions, so the
    outer-loop head block recurs once per iteration at near-even spacing.
    Scans every block's occurrence list and returns the most evenly spaced
    one covering the trace, or ``None`` when nothing loops (straight-line
    kernels, tiny traces) — callers then fall back to the fixed lattice.
    """
    positions: Dict[int, List[int]] = {}
    for index, dyn in enumerate(trace):
        positions.setdefault(dyn.block, []).append(index)
    total = len(trace)
    best: Optional[Tuple[Tuple[float, int], List[int]]] = None
    for occurrences in positions.values():
        if len(occurrences) < _MIN_ANCHORS:
            continue
        if occurrences[-1] - occurrences[0] < total // 2:
            continue
        gaps = [b - a for a, b in zip(occurrences, occurrences[1:])]
        smallest = min(gaps)
        if smallest <= 0:
            continue
        evenness = max(gaps) / smallest
        score = (evenness, -len(occurrences))
        if best is None or score < best[0]:
            best = (score, occurrences)
    if best is None or best[0][0] > _MAX_GAP_RATIO:
        return None
    return best[1]


@dataclass(frozen=True)
class SamplePlan:
    """Where to simulate in detail, and how to extrapolate the rest.

    The trace is split into ``certain`` windows (cold prefix, tail —
    measured and counted exactly) and extrapolation ``units``; the
    ``chosen`` units are measured in detail and the others predicted by
    interpolating their nearest measured neighbours.  All index pairs are
    ``[start, end)`` trace positions; each chosen unit's measured window
    is preceded by warmup detail starting at ``detail_starts[i]``.
    """

    #: (detail_start, measure_start, measure_end) — exact-weighted strata
    certain: Tuple[Tuple[int, int, int], ...]
    #: every extrapolation unit as (start, end), covering the middle
    units: Tuple[Tuple[int, int], ...]
    #: indices into ``units`` measured in detail (ascending)
    chosen: Tuple[int, ...]
    #: per-chosen-unit detail start (warmup begins here)
    detail_starts: Tuple[int, ...]
    anchored: bool

    @property
    def estimated_span(self) -> int:
        """Instructions covered by extrapolation units."""
        return sum(end - start for start, end in self.units)


def plan_windows(
    trace: Sequence, sampling: SamplingConfig
) -> Optional[SamplePlan]:
    """Build the detailed-simulation plan for ``trace``.

    Returns ``None`` when the trace is too short to sample meaningfully
    (fewer than :data:`MIN_SAMPLED_INTERVALS` sampled windows) — the
    caller should fall back to exact simulation.
    """
    total = len(trace)
    anchors = detect_anchors(trace)
    if anchors is not None:
        plan = _plan_anchored(total, anchors, sampling)
        if plan is not None:
            return plan
    return _plan_lattice(total, sampling)


def _plan_anchored(
    total: int, anchors: List[int], sampling: SamplingConfig
) -> Optional[SamplePlan]:
    bounds = list(anchors)
    if bounds[0] != 0:
        # The prologue before the first anchor joins the cold stratum.
        bounds[0] = 0
    iterations = list(zip(bounds, bounds[1:] + [total]))
    if len(iterations) < _MIN_ANCHORS:
        return None
    cold_end = iterations[0][1]
    tail_start = iterations[-1][0]
    middle = iterations[1:-1]
    # Pair consecutive iterations into one extrapolation unit: several
    # benchmarks alternate between two per-iteration behaviours
    # (data-dependent diamonds flip each outer pass), and pairing
    # integrates the alternation out so the per-unit CPI varies smoothly
    # and the interpolating estimator can track it.  A leftover odd
    # iteration joins the final unit.
    units: List[Tuple[int, int]] = []
    for index in range(0, len(middle) - 1, 2):
        units.append((middle[index][0], middle[index + 1][1]))
    if len(middle) % 2:
        if units:
            units[-1] = (units[-1][0], middle[-1][1])
        else:
            units.append(middle[-1])
    first = sampling.seed % sampling.stride
    picks = set(range(first, len(units), sampling.stride))
    # Geometric early coverage: phase-one cache warming concentrates CPI
    # drift (and its curvature) in the first iterations, where a uniform
    # stride under-samples; sample units 0,1,2,4,... densely until the
    # systematic stride takes over.
    geometric = 1
    while geometric < min(2 * sampling.stride, len(units)):
        picks.add(geometric - 1)
        picks.add(geometric)
        geometric *= 2
    chosen = sorted(index for index in picks if index < len(units))
    if len(chosen) < MIN_SAMPLED_INTERVALS:
        return None
    # Warm up across the entire iteration preceding the unit (it exists
    # for every middle unit and for the tail): a short fixed warmup
    # reproduces iteration-after-cold-start behaviour, not steady state,
    # which biased measured IPC by up to 2.5% on the quick suite.
    prev_iter_start = {later: earlier for earlier, later in zip(bounds, bounds[1:])}
    detail_starts = []
    previous_end = cold_end
    for index in chosen:
        start = units[index][0]
        prev_start = prev_iter_start.get(start, cold_end)
        detail_starts.append(
            max(previous_end, min(prev_start, start - sampling.warmup))
        )
        previous_end = units[index][1]
    tail_detail = max(
        previous_end, min(iterations[-2][0], tail_start - sampling.warmup)
    )
    certain = (
        (0, 0, cold_end),
        (tail_detail, tail_start, total),
    )
    return SamplePlan(
        certain=certain,
        units=tuple(units),
        chosen=tuple(chosen),
        detail_starts=tuple(detail_starts),
        anchored=True,
    )


def _plan_lattice(total: int, sampling: SamplingConfig) -> Optional[SamplePlan]:
    intervals = total // sampling.interval
    first = sampling.seed % sampling.stride
    chosen = list(range(first, intervals, sampling.stride))
    if len(chosen) < MIN_SAMPLED_INTERVALS:
        return None
    units = [
        (i * sampling.interval, (i + 1) * sampling.interval)
        for i in range(intervals)
    ]
    if intervals * sampling.interval < total:
        # Trailing partial interval: never sampled, predicted from its
        # nearest measured neighbour like any other skipped unit.
        units.append((intervals * sampling.interval, total))
    detail_starts = []
    previous_end = 0
    for index in chosen:
        start = units[index][0]
        detail_starts.append(max(previous_end, start - sampling.warmup))
        previous_end = units[index][1]
    return SamplePlan(
        certain=(),
        units=tuple(units),
        chosen=tuple(chosen),
        detail_starts=tuple(detail_starts),
        anchored=False,
    )


#: regression covariates per unit: intercept, excess load latency per
#: instruction, mispredict rate, instruction-fetch extra per instruction,
#: and the analytic proxy-pipeline CPI (see :func:`_analytic_retire`)
_NUM_COVARIATES = 5

#: proxy-pipeline parameters for the analytic retirement walk, fixed at
#: the default 8-wide machine (``ooo_config(8)``): in-flight window
#: (ROB) reach, fetch width, and minimum misprediction penalty
#: (depth 8 + redirect 13 + 2).  The walk is a *covariate*, not an
#: estimate — the per-config ridge fit calibrates its scale — so one
#: fixed proxy serves every sweep point and keeps the column
#: config-invariant and shareable.
_PROXY_ROB = 256
_PROXY_WIDTH = 8
_PROXY_REFILL = 23


def _analytic_retire(workload: PreparedWorkload) -> List[float]:
    """Analytic retirement-time curve of the proxy pipeline, per position.

    A single O(trace) dataflow walk in the interval-analysis tradition
    (the paper's own analysis machinery): each instruction becomes ready
    at the max of its producers' completion times and its front-end
    availability, completes after its phase-one latency, and retires in
    order; fetch is gated by the in-flight window (an instruction cannot
    fetch before the one ``_PROXY_ROB`` positions earlier retired) and
    restarts ``_PROXY_REFILL`` cycles after a mispredicted branch
    resolves.  ``curve[i]`` is the retirement time of position ``i``, so
    per-unit slopes are analytic CPIs.

    This prices exactly the interaction the per-rate covariates cannot
    see: whether a unit's cache misses overlap (independent misses
    inside one window reach) or serialize (each miss's consumers gate
    the window so the next miss cannot enter until the previous
    retires).  mcf alternates between those regimes with *identical*
    per-unit miss counts, latencies and dependence shapes — only the
    window-reach walk separates them.
    """
    replay = workload.replay()
    cached = replay.analytic_retire
    if cached is not None:
        return cached
    deps = replay.deps
    load_latency = replay.load_latency
    ifetch_extra = replay.ifetch_extra
    mispredicted = workload.mispredicted
    trace = workload.trace
    n = len(trace)
    done = [0.0] * n
    retire = [0.0] * n
    fetch_clock = 0.0
    step = 1.0 / _PROXY_WIDTH
    for i in range(n):
        fetch_clock += step
        available = fetch_clock
        extra = ifetch_extra[i]
        if extra:
            available += extra
        if i >= _PROXY_ROB:
            gate = retire[i - _PROXY_ROB]
            if gate > available:
                available = gate
        ready = available
        for producer, _internal in deps[i]:
            produced = done[producer]
            if produced > ready:
                ready = produced
        latency = load_latency[i]
        done[i] = ready + (latency if latency is not None else 1)
        previous = retire[i - 1] if i else 0.0
        retire[i] = previous if done[i] <= previous else done[i]
        dyn = trace[i]
        if dyn.is_branch and dyn.seq in mispredicted:
            resume = done[i] + _PROXY_REFILL
            if resume > fetch_clock:
                fetch_clock = resume
    replay.analytic_retire = retire
    return retire


def _unit_covariates(
    workload: PreparedWorkload, units: Sequence[Tuple[int, int]]
) -> List[Tuple[float, ...]]:
    """Phase-one CPI drivers for every unit, free to compute.

    The functional phase already fixed each load's cache latency, every
    branch outcome, and the fetch-side penalty per instruction, so the
    dominant per-unit CPI drivers are known without any timing
    simulation.  Expressed as per-instruction rates they become the
    covariate row ``(1, load_excess, mispredicts, ifetch_extra,
    analytic_cpi)`` of a linear CPI model fitted to the measured units.

    The first three event columns price *how much* each event class a
    window carries; the analytic column prices how the events
    *interact*.  Per-unit slopes of the :func:`_analytic_retire` curve
    capture miss overlap versus serialization through the in-flight
    window — the dominant CPI degree of freedom on memory-bound traces
    (mcf), where windows with identical event rates differ by 2x in
    CPI depending on whether their misses fit in one window reach.
    """
    load_latency = workload.load_latency
    mispredicted = workload.mispredicted
    ifetch_extra = workload.ifetch_extra
    analytic = _analytic_retire(workload)
    rows = []
    for start, end in units:
        span = end - start
        load_excess = 0
        mispredicts = 0
        fetch_extra = 0
        for dyn in workload.trace[start:end]:
            if dyn.is_load:
                load_excess += max(0, load_latency.get(dyn.seq, 0) - 1)
            if dyn.is_branch and dyn.seq in mispredicted:
                mispredicts += 1
            fetch_extra += ifetch_extra.get(dyn.seq, 0)
        analytic_base = analytic[start - 1] if start else 0.0
        rows.append((
            1.0,
            load_excess / span,
            mispredicts / span,
            fetch_extra / span,
            (analytic[end - 1] - analytic_base) / span,
        ))
    return rows


def _fit_ridge(
    rows: Sequence[Tuple[float, ...]], targets: Sequence[float]
) -> List[float]:
    """Least-squares fit of ``targets ~ rows`` with a tiny ridge term.

    The ridge term keeps the normal equations solvable when a covariate
    is constant across the sampled units (swim has no mispredicts, some
    traces no fetch penalty) — the degenerate coefficient just shrinks
    to zero instead of blowing up the solve.
    """
    k = len(rows[0])
    gram = [
        [math.fsum(row[a] * row[b] for row in rows) for b in range(k)]
        for a in range(k)
    ]
    rhs = [
        math.fsum(row[a] * y for row, y in zip(rows, targets)) for a in range(k)
    ]
    for c in range(k):
        gram[c][c] += 1e-6 * (gram[c][c] + 1.0)
    for c in range(k):
        pivot = max(range(c, k), key=lambda r: abs(gram[r][c]))
        gram[c], gram[pivot] = gram[pivot], gram[c]
        rhs[c], rhs[pivot] = rhs[pivot], rhs[c]
        for r in range(c + 1, k):
            factor = gram[r][c] / gram[c][c]
            for cc in range(c, k):
                gram[r][cc] -= factor * gram[c][cc]
            rhs[r] -= factor * rhs[c]
    beta = [0.0] * k
    for r in range(k - 1, -1, -1):
        beta[r] = (
            rhs[r] - math.fsum(gram[r][c] * beta[c] for c in range(r + 1, k))
        ) / gram[r][r]
    return beta


def _interp_at(chosen: Sequence[int], values: Sequence[float], index: int) -> float:
    """Piecewise-linear interpolation of ``values`` (keyed by ``chosen``
    unit indices) at ``index``, clamped to the nearest measurement
    outside the sampled range."""
    if index <= chosen[0]:
        return values[0]
    if index >= chosen[-1]:
        return values[-1]
    position = 1
    while chosen[position] < index:
        position += 1
    left, right = chosen[position - 1], chosen[position]
    weight = (index - left) / (right - left)
    return values[position - 1] * (1 - weight) + values[position] * weight


def _predict_unsampled(
    units: Sequence[Tuple[int, int]],
    chosen: Sequence[int],
    cpis: Sequence[float],
    covariates: Sequence[Tuple[float, ...]],
) -> Tuple[float, List[float], int]:
    """Predicted total cycles over every *unsampled* unit.

    Model-assisted (GREG-style) estimator: fit the linear CPI model on
    the measured units, then predict each skipped unit from its own
    phase-one covariates plus the piecewise-linearly interpolated model
    residual of its neighbours.  The model explains the config-dependent
    cost of the known events (a mispredict costs a refill, a miss costs
    its latency); the residual interpolation tracks whatever drift the
    model misses.  Returns ``(cycles, residuals, dof)`` where
    ``residuals`` are the sampled units' deviations from the systematic
    component (the noise that limits accuracy) and ``dof`` the fitted
    parameter count consumed from the sample.
    """
    if len(chosen) > _NUM_COVARIATES + 1:
        sample_rows = [covariates[index] for index in chosen]
        beta = _fit_ridge(sample_rows, cpis)
        model = [
            math.fsum(b * x for b, x in zip(beta, covariates[index]))
            for index in range(len(units))
        ]
        dof = _NUM_COVARIATES
    else:
        # Too few samples to fit the model: fall back to the mean ratio
        # against the load-latency floor (covariate column 1).
        floor = [1.0 + row[1] for row in covariates]
        rho = math.fsum(
            cpis[i] / floor[index] for i, index in enumerate(chosen)
        ) / len(chosen)
        model = [rho * value for value in floor]
        dof = 1
    residuals = [cpis[i] - model[index] for i, index in enumerate(chosen)]
    low = min(cpis) * 0.5
    high = max(cpis) * 2.0
    cycles = 0.0
    position = 0
    for index, (start, end) in enumerate(units):
        if position < len(chosen) and chosen[position] == index:
            position += 1
            continue
        predicted = model[index] + _interp_at(chosen, residuals, index)
        cycles += min(high, max(low, predicted)) * (end - start)
    return cycles, residuals, dof


def simulate_sampled(
    workload: PreparedWorkload,
    config: MachineConfig,
    sampling: SamplingConfig,
    max_cycles: int = 100_000_000,
    validation=None,
    core=None,
    observe=None,
) -> SimResult:
    """Estimate ``workload``'s IPC on ``config`` from sampled intervals.

    Detailed windows run through the ordinary :class:`TimingCore`
    machinery (one core instance, one monotonic cycle clock); the gaps
    between them drain the pipeline and jump the trace cursor.  The
    result's ``cycles`` adds the exactly-measured strata to the
    interpolated estimate over the skipped units, with the estimate's
    standard error in ``cycles_stderr``; ``issued``/``stalls`` cover the
    measured windows only (warmup activity is accounted separately in
    ``extra``).

    ``validation`` attaches checkers exactly as in
    :func:`~repro.sim.run.simulate` (sampled lockstep tolerates an
    unmeasured trace tail).  ``core`` lets a caller — the validation
    runner — supply a pre-built, pre-instrumented core instead; the
    caller then owns any post-run ``finish`` bookkeeping for hooks it
    attached itself.

    ``observe`` (a :class:`~repro.obs.Observer`) attaches the
    observability layer.  CPI-stack accounting covers only the measured
    windows (warmup, drain, and fast-forward cycles are excluded by
    snapshot-diffing around each window) and is scaled up to the
    estimated total cycle count at finalize time.
    """
    total = len(workload.trace)
    plan = plan_windows(workload.trace, sampling)
    session = None
    if core is None:
        core = build_core(workload, config)
        if validation is not None and validation.enabled:
            from ..validate import attach_validation

            session = attach_validation(core, workload, validation)
    if observe is not None:
        observe.attach(core)
    if plan is None:
        result = core.run(max_cycles=max_cycles)
        result.extra["sample_fallback_exact"] = 1.0
        if session is not None:
            session.finish(expect_full=True)
        if observe is not None:
            observe.finalize(result)
        return result

    cycle = 0
    certain_cycles = 0
    sampled_cycles = 0
    sampled_insts = 0
    window_cpis: List[float] = []
    window_weights: List[int] = []
    measured_instructions = 0
    measured_cycles = 0
    warmup_instructions = 0
    warmup_cycles = 0
    measured_stalls = {name: 0 for name in core.stalls.as_dict()}
    measured_issued = 0
    measured_cpi = (
        None if observe is None
        else {cause: 0.0 for cause in observe.cpi_totals()}
    )

    windows = sorted(
        [(window, True) for window in plan.certain]
        + [
            (
                (plan.detail_starts[i], plan.units[index][0], plan.units[index][1]),
                False,
            )
            for i, index in enumerate(plan.chosen)
        ]
    )
    # Adjacent windows (next detail start == this measure end) form one
    # continuous detailed run: draining the pipeline between them would
    # charge the second window a cold restart it never has in the exact
    # run (measured at +9-14% CPI on early gcc units).  Hold the fetch
    # limit at the end of the whole adjacent run and only drain when a
    # gap is actually skipped; per-window boundary readings inside a run
    # then match continuous execution exactly.
    adjacent = [False] + [
        windows[k][0][0] == windows[k - 1][0][2] for k in range(1, len(windows))
    ]
    fetch_limits = [window[0][2] for window in windows]
    for k in range(len(windows) - 2, -1, -1):
        if adjacent[k + 1]:
            fetch_limits[k] = fetch_limits[k + 1]
    origin = 0
    for k, ((detail_start, measure_start, measure_end), exact_weight) in enumerate(
        windows
    ):
        if not adjacent[k]:
            if core._next_fetch != detail_start:
                cycle = core.drain_in_flight(cycle)
                core.fast_forward(detail_start, cycle)
                if observe is not None:
                    # Drain/fast-forward mutated state outside hooked
                    # execution; realign snapshots at the window start.
                    observe.skip_to(cycle)
            # Retirement can overshoot a target by up to the retire width,
            # so targets must be absolute trace positions, not deltas from
            # the observed retired count.
            origin = core._retired_count - detail_start
        core._fetch_limit = fetch_limits[k]
        window_start = cycle
        cycle = core._run_until(origin + measure_start, cycle, max_cycles)
        warm_cycle = cycle
        warm_stalls = core.stalls.as_dict()
        warm_issued = core._issued_count
        warm_cpi = None if observe is None else observe.cpi_totals()
        cycle = core._run_until(origin + measure_end, cycle, max_cycles)
        window_measured = cycle - warm_cycle
        window_insts = measure_end - measure_start
        if exact_weight:
            certain_cycles += window_measured
        else:
            sampled_cycles += window_measured
            sampled_insts += window_insts
            window_cpis.append(window_measured / window_insts)
            window_weights.append(window_insts)
        measured_instructions += window_insts
        measured_cycles += window_measured
        warmup_instructions += measure_start - detail_start
        warmup_cycles += warm_cycle - window_start
        for name, value in core.stalls.as_dict().items():
            measured_stalls[name] += value - warm_stalls[name]
        measured_issued += core._issued_count - warm_issued
        if observe is not None:
            for cause, value in observe.cpi_totals().items():
                measured_cpi[cause] += value - warm_cpi[cause]
    cycle = core.drain_in_flight(cycle)

    covariates = _unit_covariates(workload, plan.units)
    predicted_cycles, residuals, dof = _predict_unsampled(
        plan.units, plan.chosen, window_cpis, covariates
    )
    estimated_cycles = max(
        1, certain_cycles + sampled_cycles + round(predicted_cycles)
    )

    # Standard error of the extrapolated part, from the sampled units'
    # deviations around the fitted model, with a finite-population
    # correction.  The residual interpolation tracks part of that spread
    # too, so this estimate is conservative.
    count = len(window_cpis)
    mean_weight = sampled_insts / count
    variance = math.fsum(
        (weight / mean_weight) ** 2 * residual ** 2
        for residual, weight in zip(residuals, window_weights)
    ) / max(1, count - dof)
    fpc = 1.0
    if len(plan.units) > count:
        fpc = 1.0 - count / len(plan.units)
    extrapolated_span = plan.estimated_span - sampled_insts
    stderr_cpi = math.sqrt(max(0.0, variance * fpc) / count)

    result = SimResult(
        benchmark=workload.name,
        machine=config.name,
        cycles=estimated_cycles,
        instructions=total,
        branches=workload.stats.branches,
        mispredicts=len(workload.mispredicted),
        issued=measured_issued,
        stalls=StallCounters(**measured_stalls),
        sampled=True,
        fidelity="sampled",
        sample_intervals=count,
        sample_measured_instructions=measured_instructions,
        sample_detail_instructions=measured_instructions + warmup_instructions,
        cycles_stderr=stderr_cpi * extrapolated_span,
    )
    result.extra["sample_interval"] = float(sampling.interval)
    result.extra["sample_stride"] = float(sampling.stride)
    result.extra["sample_warmup"] = float(sampling.warmup)
    result.extra["sample_seed"] = float(sampling.seed)
    result.extra["sample_anchored"] = 1.0 if plan.anchored else 0.0
    result.extra["sample_measured_cycles"] = float(measured_cycles)
    result.extra["sample_warmup_cycles"] = float(warmup_cycles)
    result.extra["sample_warmup_instructions"] = float(warmup_instructions)
    result.extra["sample_detail_fraction"] = (
        (measured_instructions + warmup_instructions) / total
    )
    core.attach_activity(result)
    if observe is not None:
        observe.finalize(result, cpi_slots=measured_cpi)
    if session is not None:
        # Lattice plans may leave an unmeasured tail, so coverage of the
        # whole trace is not required — only consistency of what ran.
        session.finish(expect_full=False)
    return result
