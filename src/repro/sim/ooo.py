"""Aggressive conventional out-of-order core (paper Table 4, left column).

Distributed scheduling: ``clusters`` independent ``cluster_entries``-deep
out-of-order schedulers (8 × 32 by default).  Dispatch steers each
instruction to the least-occupied scheduler; wakeup is event-driven
(producers notify consumers on completion) and select is oldest-first across
all schedulers, bounded by the issue width, the shared functional units, the
register-file ports, and the bypass bandwidth.
"""

from __future__ import annotations

import heapq
from typing import List, Tuple

from ..uarch.funit import FunctionalUnitPool
from .config import MachineConfig
from .core import TimingCore, WInst
from .workload import PreparedWorkload


class OutOfOrderCore(TimingCore):
    """The paper's baseline aggressive out-of-order machine."""

    def __init__(self, workload: PreparedWorkload, config: MachineConfig) -> None:
        super().__init__(workload, config)
        self.fus = FunctionalUnitPool(config.functional_units)
        self._scheduler_load = [0] * config.clusters
        self._ready: List[Tuple[int, WInst]] = []
        self._retry: List[WInst] = []

    # -------------------------------------------------------------- dispatch
    def accept(self, winst: WInst, cycle: int) -> bool:
        load = self._scheduler_load
        best = min(range(len(load)), key=load.__getitem__)
        if load[best] >= self.config.cluster_entries:
            return False
        load[best] += 1
        winst.cluster = best
        return True

    def on_fast_forward(self) -> None:
        # Post-drain the schedulers are empty; reset occupancy and the ready
        # pool so a sampling gap starts the next window from a clean core.
        self._scheduler_load = [0] * self.config.clusters
        self._ready = []
        self._retry = []

    def scheduler_occupancy(self) -> int:
        return sum(self._scheduler_load)

    def core_invariants(self, cycle: int):
        load = self._scheduler_load
        for index, occupancy in enumerate(load):
            if not 0 <= occupancy <= self.config.cluster_entries:
                yield (
                    f"scheduler {index} occupancy {occupancy} outside "
                    f"[0, {self.config.cluster_entries}]"
                )
        unissued = len(self.unissued_in_flight())
        if sum(load) != unissued:
            yield (
                f"scheduler occupancy sum {sum(load)} != "
                f"{unissued} dispatched-but-unissued instructions"
            )
        for winst in self._ready_pool():
            if winst.issue_cycle is not None:
                yield f"issued instruction seq={winst.seq} still in ready pool"

    def _ready_pool(self):
        return [w for _, w in self._ready] + list(self._retry)

    # ----------------------------------------------------------------- wakeup
    def on_ready(self, winst: WInst, cycle: int) -> None:
        heapq.heappush(self._ready, (winst.seq, winst))

    # ------------------------------------------------------------------ issue
    def issue_idle(self, cycle: int) -> bool:
        # The ready pool only holds instructions whose operands are all
        # complete — anything in it may issue as soon as ports/FUs allow,
        # which the event heap does not model.  Never skip while one waits.
        return False

    def issue_stage(self, cycle: int) -> None:
        if not self._ready and not self._retry:
            return
        if self._retry:
            for winst in self._retry:
                heapq.heappush(self._ready, (winst.seq, winst))
            self._retry = []

        budget = self.config.issue_width
        deferred: List[WInst] = []
        while budget > 0 and self._ready:
            _, winst = heapq.heappop(self._ready)
            if self.try_issue(winst, cycle, self.fus):
                self._scheduler_load[winst.cluster] -= 1
                budget -= 1
            else:
                deferred.append(winst)
        self._retry.extend(deferred)
