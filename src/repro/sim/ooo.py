"""Aggressive conventional out-of-order core (paper Table 4, left column).

Distributed scheduling: ``clusters`` independent ``cluster_entries``-deep
out-of-order schedulers (8 × 32 by default).  Dispatch steers each
instruction to the least-occupied scheduler; wakeup is event-driven
(producers notify consumers on completion) and select is oldest-first across
all schedulers, bounded by the issue width, the shared functional units, the
register-file ports, and the bypass bandwidth.

Select is O(woken), not O(window): the age-ordered ready heap holds only
candidates that may issue *this* cycle, a deferred heap (keyed by the wake
cycle ``try_issue`` certified for the failed check) holds candidates blocked
until a known future cycle, and loads blocked on an unexecuted older store
park on that store's LSQ entry until its execution publishes a wake.  The
old implementation re-pushed every failed candidate into the ready heap
every cycle — a full-window rescan in disguise.
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Tuple

from ..uarch.funit import FunctionalUnitPool
from .config import CoreKind, MachineConfig, ooo_config
from .core import PARKED, TimingCore, WInst, flip_bit
from .registry import CoreDescriptor, register_core
from .workload import PreparedWorkload


def _inject_scheduler(core: "OutOfOrderCore", rng) -> Optional[str]:
    """Flip one bit of the distributed schedulers' bookkeeping state:
    a select-priority tag in the ready heap, or an occupancy counter."""
    load = core._scheduler_load
    mode = rng.choice(("occupancy", "priority"))
    if mode == "priority":
        pool = core._ready
        if pool:
            index = rng.randrange(len(pool))
            seq, winst = pool[index]
            bit = rng.randrange(8)
            pool[index] = (flip_bit(seq, bit), winst)
            heapq.heapify(pool)
            return (
                f"scheduler select-priority bit {bit} on seq {winst.seq}"
            )
        # fall through to the always-live occupancy counters
    index = rng.randrange(len(load))
    bit = rng.randrange(max(1, core.config.cluster_entries.bit_length()))
    load[index] = flip_bit(load[index], bit)
    return f"scheduler {index} occupancy bit {bit} -> {load[index]}"


class OutOfOrderCore(TimingCore):
    """The paper's baseline aggressive out-of-order machine."""

    fault_structures = ("scheduler",)
    fault_injectors = {"scheduler": _inject_scheduler}
    # Broadcast wakeup, full rename, value-covering checkpoints: the
    # TimingCore complexity/energy defaults describe exactly this machine.

    def __init__(self, workload: PreparedWorkload, config: MachineConfig) -> None:
        super().__init__(workload, config)
        self.fus = FunctionalUnitPool(config.functional_units)
        self._scheduler_load = [0] * config.clusters
        self._cluster_entries = config.cluster_entries
        #: age-ordered ready candidates that may issue as soon as this cycle
        self._ready: List[Tuple[int, WInst]] = []
        #: candidates certified unable to issue before their wake cycle
        self._deferred: List[Tuple[int, int, WInst]] = []

    # -------------------------------------------------------------- dispatch
    def accept(self, winst: WInst, cycle: int) -> bool:
        # First-index argmin over the (small) per-scheduler occupancy list;
        # hand-rolled because ``min(range, key=...)`` dominated dispatch.
        # The left-to-right strict-< scan keeps min()'s tie-break (first
        # minimum), and an empty scheduler can end the scan early — no
        # earlier index can beat zero.
        load = self._scheduler_load
        best = 0
        best_load = load[0]
        if best_load:
            for index in range(1, len(load)):
                occupancy = load[index]
                if occupancy < best_load:
                    best = index
                    best_load = occupancy
                    if not occupancy:
                        break
        if best_load >= self._cluster_entries:
            return False
        load[best] = best_load + 1
        winst.cluster = best
        return True

    def on_fast_forward(self) -> None:
        # Post-drain the schedulers are empty; reset occupancy and the ready
        # pools so a sampling gap starts the next window from a clean core.
        # (Parked loads cannot survive either: a drained window has retired
        # every store, emptying the LSQ and its waiter lists.)
        self._scheduler_load = [0] * self.config.clusters
        self._ready = []
        self._deferred = []

    def scheduler_occupancy(self) -> int:
        return sum(self._scheduler_load)

    def core_invariants(self, cycle: int):
        load = self._scheduler_load
        for index, occupancy in enumerate(load):
            if not 0 <= occupancy <= self.config.cluster_entries:
                yield (
                    f"scheduler {index} occupancy {occupancy} outside "
                    f"[0, {self.config.cluster_entries}]"
                )
        unissued = len(self.unissued_in_flight())
        if sum(load) != unissued:
            yield (
                f"scheduler occupancy sum {sum(load)} != "
                f"{unissued} dispatched-but-unissued instructions"
            )
        for winst in self._ready_pool():
            if winst.issue_cycle is not None:
                yield f"issued instruction seq={winst.seq} still in ready pool"
        for wake, _seq, winst in self._deferred:
            if winst.pending:
                yield (
                    f"deferred instruction seq={winst.seq} has pending "
                    f"operands (deferral is for ready candidates only)"
                )

    def _ready_pool(self):
        return [w for _, w in self._ready] + [w for _, _, w in self._deferred]

    # ----------------------------------------------------------------- wakeup
    def on_ready(self, winst: WInst, cycle: int) -> None:
        heapq.heappush(self._ready, (winst.seq, winst))

    def _wake_store_waiters(self, waiters: List[WInst], wake: int) -> None:
        # A parked load lives in no heap; the store's execution re-inserts
        # it into the deferred pool at its forwarding-ready cycle.
        deferred = self._deferred
        for winst in waiters:
            winst.issue_wake = wake
            heapq.heappush(deferred, (wake, winst.seq, winst))

    # ------------------------------------------------------------------ issue
    def issue_horizon(self, cycle: int) -> Optional[int]:
        # Anything in the ready heap may issue now (or is blocked on a
        # per-cycle resource, which the event heap cannot model): no skip.
        if self._ready:
            return cycle
        deferred = self._deferred
        if deferred:
            wake = deferred[0][0]
            return cycle if wake <= cycle else wake
        # Every ready-but-unissued candidate is parked on an unexecuted
        # store; the store's own issue is covered by another publisher.
        return None

    def issue_stage(self, cycle: int) -> None:
        ready = self._ready
        deferred = self._deferred
        if deferred:
            while deferred and deferred[0][0] <= cycle:
                _, seq, winst = heapq.heappop(deferred)
                heapq.heappush(ready, (seq, winst))
        if not ready:
            return

        budget = self.config.issue_width
        failed: List[Tuple[int, WInst]] = []
        scheduler_load = self._scheduler_load
        try_issue = self.try_issue
        fus = self.fus
        heappop = heapq.heappop
        while budget > 0 and ready:
            item = heappop(ready)
            winst = item[1]
            if try_issue(winst, cycle, fus):
                scheduler_load[winst.cluster] -= 1
                budget -= 1
            else:
                wake = self._issue_wake
                if wake > cycle:
                    winst.issue_wake = wake
                    heapq.heappush(deferred, (wake, item[0], winst))
                elif wake < 0:
                    store = self._issue_block_store
                    if store.waiters is None:
                        store.waiters = []
                    store.waiters.append(winst)
                    winst.issue_wake = PARKED
                else:
                    failed.append(item)
        for item in failed:
            heapq.heappush(ready, item)


register_core(CoreDescriptor(
    kind=CoreKind.OUT_OF_ORDER,
    key="ooo",
    core_class=OutOfOrderCore,
    config_factory=ooo_config,
    description="aggressive conventional out-of-order (paper baseline)",
))
