"""Tiered-fidelity interval model: analytic IPC from calibration windows.

The cheapest rung of the fidelity ladder (``exact`` > ``sampled`` >
``interval``).  Where :mod:`repro.sim.sampling` measures every
``stride``-th unit in detail, this model measures only a handful of
evenly spread *calibration windows* — just enough to fit the linear CPI
model whose covariates (excess load latency, mispredict rate, fetch
penalty, and the analytic proxy-pipeline CPI per instruction) phase one
already fixed — and predicts every other unit analytically.  Detail fractions land around 1-5% of the trace
instead of the sampled mode's ~20-30%, at a correspondingly looser error
bound.

The estimator is the same model-assisted (GREG-style) machinery the
sampled engine uses (:func:`~repro.sim.sampling._predict_unsampled`), so
the two tiers disagree only through sample size, never through modeling
assumptions.  The measured windows run on the ordinary
:class:`~repro.sim.core.TimingCore` — one core instance, one monotonic
cycle clock, drain + fast-forward across the gaps — so the lockstep
oracle and the observability layer attach exactly as in sampled mode.

Because the fitted coefficients price the phase-one events per
instruction, they also yield a model-derived CPI stack (intercept →
``base``, excess load latency → ``memory``, mispredicts →
``branch_flush``, fetch penalty → ``fetch_limited``; the attribution
refit uses only those interpretable columns) without attaching an
observer; an attached observer's measured-window stack takes
precedence.
"""

from __future__ import annotations

import math
import os
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .config import MachineConfig
from .results import SimResult, StallCounters
from .sampling import (
    _fit_ridge,
    _interp_at,
    _predict_unsampled,
    _unit_covariates,
)
from .workload import PreparedWorkload

_ENV_INTERVAL = "REPRO_INTERVAL"

#: config validity floor — anchoring needs a first and a last window.
#: (Fitting fewer windows than the 5-covariate model needs degenerates
#: gracefully to the ratio estimator, so 2 is usable, just coarse.)
_MIN_WINDOWS = 2


@dataclass(frozen=True)
class IntervalConfig:
    """Calibration parameters for the interval (analytic) fidelity tier.

    ``windows`` calibration windows of ``window`` instructions each are
    spread evenly across the trace (first and last units always
    included, so predictions interpolate rather than extrapolate);
    ``seed`` nudges the interior windows for cross-validation without
    losing determinism.  ``error_bound_pct`` is the *stated* IPC error
    bound the tier advertises; the run reports
    ``max(error_bound_pct, 1.96 * stderr)`` so a noisy fit can widen the
    bound but never silently narrow it.
    """

    windows: int = 12
    window: int = 500
    warmup: int = 512
    seed: int = 0
    error_bound_pct: float = 10.0

    def __post_init__(self) -> None:
        if self.windows < _MIN_WINDOWS:
            raise ValueError(
                f"interval windows must be >= {_MIN_WINDOWS}, "
                f"got {self.windows}"
            )
        if self.window < 1:
            raise ValueError(
                f"interval window must be >= 1, got {self.window}"
            )
        if self.warmup < 0:
            raise ValueError(
                f"interval warmup must be >= 0, got {self.warmup}"
            )
        if self.seed < 0:
            raise ValueError(f"interval seed must be >= 0, got {self.seed}")
        # isfinite, not just > 0: inf passes a positivity test and nan
        # fails *every* comparison, so ``nan <= 0`` would wave it through
        if not math.isfinite(self.error_bound_pct) or self.error_bound_pct <= 0:
            raise ValueError(
                f"interval error bound must be a positive finite "
                f"percentage, got {self.error_bound_pct}"
            )

    def cache_token(self) -> Tuple:
        """Hashable identity for cache keys and worker specs."""
        return (
            "interval", self.windows, self.window, self.warmup, self.seed,
            round(self.error_bound_pct, 4),
        )

    def spec(self) -> str:
        """Round-trippable textual form (the ``--interval`` argument)."""
        bound = f"{self.error_bound_pct:g}"
        return (
            f"windows={self.windows},window={self.window},"
            f"warmup={self.warmup},seed={self.seed},bound={bound}"
        )

    @classmethod
    def parse(cls, text: str) -> "IntervalConfig":
        """Parse ``windows=8,window=500,warmup=512,seed=0,bound=10``."""
        text = text.strip()
        if not text or text.lower() in ("1", "on", "true", "default"):
            return cls()
        values: Dict[str, float] = {}
        for part in text.split(","):
            part = part.strip()
            if not part:
                continue
            if "=" not in part:
                raise ValueError(
                    f"bad interval spec {text!r}: expected key=value pairs "
                    f"(windows/window/warmup/seed/bound), got {part!r}"
                )
            key, _, raw = part.partition("=")
            key = key.strip()
            if key not in ("windows", "window", "warmup", "seed", "bound"):
                raise ValueError(
                    f"bad interval spec {text!r}: unknown key {key!r} "
                    f"(expected windows/window/warmup/seed/bound)"
                )
            if key in values:
                raise ValueError(
                    f"bad interval spec {text!r}: duplicate key {key!r} "
                    f"(the second value would silently win)"
                )
            raw = raw.strip()
            try:
                values[key] = float(raw) if key == "bound" else int(raw)
            except ValueError:
                raise ValueError(
                    f"bad interval spec {text!r}: {key} must be "
                    f"{'a number' if key == 'bound' else 'an integer'}, "
                    f"got {raw!r}"
                ) from None
        if "bound" in values:
            values["error_bound_pct"] = values.pop("bound")
        return cls(**values)  # type: ignore[arg-type]


def interval_from_env() -> IntervalConfig:
    """Resolve ``REPRO_INTERVAL`` (a spec string; unset means defaults)."""
    value = os.environ.get(_ENV_INTERVAL, "").strip()
    if not value:
        return IntervalConfig()
    return IntervalConfig.parse(value)


def plan_calibration(
    total: int, interval: IntervalConfig
) -> Optional[Tuple[Tuple[Tuple[int, int], ...], Tuple[int, ...]]]:
    """Units and calibration indices, or None when exact is cheaper.

    The trace is cut into a fixed lattice of ``interval.window``-sized
    units (plus a trailing partial unit); ``interval.windows`` of them —
    always the first and the last, the rest evenly spread with a
    deterministic seed nudge — are calibrated in detail, plus
    geometrically spaced early units (1, 2, 4, ...): phase-one cache
    warming concentrates CPI drift and its curvature in the first units,
    where an even spread is blind.  Returns None when the lattice has no
    units left to predict, i.e. calibration would measure (almost) the
    whole trace anyway.
    """
    span = interval.window
    full = total // span
    units: List[Tuple[int, int]] = [
        (i * span, (i + 1) * span) for i in range(full)
    ]
    if full * span < total:
        units.append((full * span, total))
    count = len(units)
    if count <= interval.windows:
        return None
    want = interval.windows
    spread = (count - 1) / (want - 1)
    # One window per stratum, scattered inside it by a deterministic
    # PRNG rather than evenly spaced: benchmarks with periodic
    # per-iteration behaviour alias an even lattice (every window lands
    # at the same phase of the iteration), and scatter breaks the
    # alignment without losing determinism.
    rng = random.Random((interval.seed << 16) ^ count)
    picks = {0, count - 1}
    for i in range(1, want - 1):
        low = 1 + (i * (count - 2)) // (want - 1)
        high = 1 + ((i + 1) * (count - 2)) // (want - 1)
        if high > low:
            picks.add(rng.randrange(low, high))
    geometric = 1
    while geometric < min(spread, count - 1):
        picks.add(geometric)
        geometric *= 2
    if len(picks) >= count:
        return None
    return tuple(units), tuple(sorted(picks))


def simulate_interval(
    workload: PreparedWorkload,
    config: MachineConfig,
    interval: Optional[IntervalConfig] = None,
    max_cycles: int = 100_000_000,
    validation=None,
    observe=None,
) -> SimResult:
    """Estimate ``workload``'s IPC on ``config`` analytically.

    Measures only the calibration windows in detail and predicts the
    rest from the fitted linear CPI model; see the module docstring for
    the fidelity contract.  Falls back to exact simulation (and says so
    in ``extra["interval_fallback_exact"]``) when the trace is too short
    for calibration to be cheaper than measuring everything.

    ``validation`` and ``observe`` attach exactly as in
    :func:`~repro.sim.sampling.simulate_sampled`: the lockstep oracle
    checks the measured windows (tolerating the unmeasured remainder),
    and an observer's CPI accounting covers the measured windows only.
    """
    from .run import build_core

    if interval is None:
        interval = IntervalConfig()
    total = len(workload.trace)
    plan = plan_calibration(total, interval)
    core = build_core(workload, config)
    session = None
    if validation is not None and validation.enabled:
        from ..validate import attach_validation

        session = attach_validation(core, workload, validation)
    if observe is not None:
        observe.attach(core)
    if plan is None:
        result = core.run(max_cycles=max_cycles)
        result.extra["interval_fallback_exact"] = 1.0
        if session is not None:
            session.finish(expect_full=True)
        if observe is not None:
            observe.finalize(result)
        return result
    units, chosen = plan

    cycle = 0
    measured_cycles = 0
    measured_instructions = 0
    warmup_instructions = 0
    warmup_cycles = 0
    window_cpis: List[float] = []
    window_weights: List[int] = []
    measured_stalls = {name: 0 for name in core.stalls.as_dict()}
    measured_issued = 0
    measured_cpi = (
        None if observe is None
        else {cause: 0.0 for cause in observe.cpi_totals()}
    )

    # Same resumable-window mechanics as simulate_sampled: windows in
    # trace order; consecutive chosen units form one continuous detailed
    # run (no drain between them), with the fetch limit held at the end
    # of the run so boundary readings match continuous execution.
    windows = []
    previous_end = 0
    for index in chosen:
        start, end = units[index]
        windows.append((max(previous_end, start - interval.warmup), start, end))
        previous_end = end
    adjacent = [False] + [
        windows[k][0] == windows[k - 1][2] for k in range(1, len(windows))
    ]
    fetch_limits = [window[2] for window in windows]
    for k in range(len(windows) - 2, -1, -1):
        if adjacent[k + 1]:
            fetch_limits[k] = fetch_limits[k + 1]
    origin = 0
    for k, (detail_start, measure_start, measure_end) in enumerate(windows):
        if not adjacent[k]:
            if core._next_fetch != detail_start:
                cycle = core.drain_in_flight(cycle)
                core.fast_forward(detail_start, cycle)
                if observe is not None:
                    observe.skip_to(cycle)
            # Retirement can overshoot by up to the retire width, so
            # targets are absolute trace positions, not deltas.
            origin = core._retired_count - detail_start
        core._fetch_limit = fetch_limits[k]
        window_start = cycle
        cycle = core._run_until(origin + measure_start, cycle, max_cycles)
        warm_cycle = cycle
        warm_stalls = core.stalls.as_dict()
        warm_issued = core._issued_count
        warm_cpi = None if observe is None else observe.cpi_totals()
        cycle = core._run_until(origin + measure_end, cycle, max_cycles)
        window_measured = cycle - warm_cycle
        window_insts = measure_end - measure_start
        window_cpis.append(window_measured / window_insts)
        window_weights.append(window_insts)
        measured_instructions += window_insts
        measured_cycles += window_measured
        warmup_instructions += measure_start - detail_start
        warmup_cycles += warm_cycle - window_start
        for name, value in core.stalls.as_dict().items():
            measured_stalls[name] += value - warm_stalls[name]
        measured_issued += core._issued_count - warm_issued
        if observe is not None:
            for cause, value in observe.cpi_totals().items():
                measured_cpi[cause] += value - warm_cpi[cause]
    cycle = core.drain_in_flight(cycle)

    covariates = _unit_covariates(workload, units)
    predicted_cycles, residuals, dof = _predict_unsampled(
        units, chosen, window_cpis, covariates
    )
    estimated_cycles = max(1, measured_cycles + round(predicted_cycles))

    count = len(window_cpis)
    mean_weight = measured_instructions / count
    variance = math.fsum(
        (weight / mean_weight) ** 2 * residual ** 2
        for residual, weight in zip(residuals, window_weights)
    ) / max(1, count - dof)
    fpc = 1.0 - count / len(units)
    extrapolated_span = total - measured_instructions
    stderr_cycles = (
        math.sqrt(max(0.0, variance * fpc) / count) * extrapolated_span
    )
    # Stated bound: the configured floor, widened by whichever is worse —
    # the sampling-theory stderr (random window-to-window noise) or the
    # leave-one-out cross-validation error (which also sees systematic
    # bias the residual spread hides, e.g. phase drift between the
    # calibration windows).  The bound can widen, never silently narrow.
    stated_bound = interval.error_bound_pct
    if estimated_cycles:
        stated_bound = max(
            stated_bound, 100.0 * 1.96 * stderr_cycles / estimated_cycles
        )
        cv_error = _cv_relative_error(chosen, window_cpis, covariates)
        extrapolated_fraction = predicted_cycles / estimated_cycles
        stated_bound = max(
            stated_bound, 100.0 * cv_error * extrapolated_fraction
        )

    result = SimResult(
        benchmark=workload.name,
        machine=config.name,
        cycles=estimated_cycles,
        instructions=total,
        branches=workload.stats.branches,
        mispredicts=len(workload.mispredicted),
        issued=measured_issued,
        stalls=StallCounters(**measured_stalls),
        sampled=True,
        fidelity="interval",
        sample_intervals=count,
        sample_measured_instructions=measured_instructions,
        sample_detail_instructions=measured_instructions + warmup_instructions,
        cycles_stderr=stderr_cycles,
    )
    result.extra["interval_windows"] = float(count)
    result.extra["interval_window"] = float(interval.window)
    result.extra["interval_warmup"] = float(interval.warmup)
    result.extra["interval_seed"] = float(interval.seed)
    result.extra["interval_error_bound_pct"] = stated_bound
    result.extra["interval_measured_cycles"] = float(measured_cycles)
    result.extra["interval_warmup_cycles"] = float(warmup_cycles)
    result.extra["sample_detail_fraction"] = (
        (measured_instructions + warmup_instructions) / total
    )
    if observe is None and count > len(covariates[0]) + 1:
        result.cpi_stack = _model_cpi_stack(
            workload, units, chosen, window_cpis, covariates, estimated_cycles
        )
    core.attach_activity(result)
    if observe is not None:
        observe.finalize(result, cpi_slots=measured_cpi)
    if session is not None:
        # Only the calibration windows ran; require consistency of what
        # ran, not coverage of the whole trace.
        session.finish(expect_full=False)
    return result


def _cv_relative_error(
    chosen,
    cpis: List[float],
    covariates,
) -> float:
    """Leave-one-out RMS relative CPI error of the estimator.

    Re-predicts each calibration window from the remaining ones with the
    same model-plus-residual-interpolation machinery the real estimate
    uses.  Unlike the residual spread around the fitted model, this sees
    systematic prediction bias (a model refit without a window must
    still predict it).  The returned bound component is
    ``|mean error| + 1.96 * stderr(mean)``: the bias term does not
    average out over predicted units, while the random part shrinks
    with the window count like the total estimate does.
    """
    count = len(cpis)
    if count < 3:
        return 0.0
    width = len(covariates[0])
    errors = []
    for leave in range(count):
        keep = [j for j in range(count) if j != leave]
        sub_chosen = [chosen[j] for j in keep]
        sub_cpis = [cpis[j] for j in keep]
        if len(sub_chosen) > width + 1:
            beta = _fit_ridge(
                [covariates[index] for index in sub_chosen], sub_cpis
            )

            def model(index):
                return math.fsum(
                    b * x for b, x in zip(beta, covariates[index])
                )
        else:
            floor = [1.0 + row[1] for row in covariates]
            rho = math.fsum(
                cpi / floor[index]
                for cpi, index in zip(sub_cpis, sub_chosen)
            ) / len(sub_chosen)

            def model(index):
                return rho * floor[index]
        residuals = [
            cpi - model(index) for cpi, index in zip(sub_cpis, sub_chosen)
        ]
        predicted = model(chosen[leave]) + _interp_at(
            sub_chosen, residuals, chosen[leave]
        )
        predicted = min(max(sub_cpis) * 2.0, max(min(sub_cpis) * 0.5, predicted))
        actual = cpis[leave]
        if actual > 0:
            errors.append((predicted - actual) / actual)
    if len(errors) < 2:
        return 0.0
    n = len(errors)
    mean = math.fsum(errors) / n
    variance = math.fsum((e - mean) ** 2 for e in errors) / (n - 1)
    return abs(mean) + 1.96 * math.sqrt(variance / n)


def _model_cpi_stack(
    workload: PreparedWorkload,
    units,
    chosen,
    cpis,
    covariates,
    estimated_cycles: int,
) -> Dict[str, float]:
    """CPI stack from the fitted coefficients, summing to the estimate.

    Each coefficient prices one phase-one event class per instruction,
    so ``beta_j * total_covariate_mass_j`` is that cause's cycle share:
    intercept → ``base``, excess load latency → ``memory``, mispredicts
    → ``branch_flush``, fetch penalty → ``fetch_limited``.  The
    attribution refits on the first four (interpretable) columns only:
    the analytic proxy-CPI column mixes base, memory, and front-end
    cycles by construction, so pricing it into a single cause would
    misattribute — the estimator keeps it for accuracy, the stack drops
    it for attribution.  Negative fitted shares clamp to zero and the
    unexplained remainder folds into ``base``, so the stack always sums
    to ``cycles`` like an observed one (see repro.obs.cpi).
    """
    from ..obs.cpi import empty_stack

    named = [row[:4] for row in covariates]
    beta = _fit_ridge([named[index] for index in chosen], cpis)
    mass = [0.0] * len(beta)
    for (start, end), row in zip(units, named):
        span = end - start
        for j, value in enumerate(row):
            mass[j] += value * span
    stack = empty_stack()
    stack["memory"] = max(0.0, beta[1] * mass[1])
    stack["branch_flush"] = max(0.0, beta[2] * mass[2])
    stack["fetch_limited"] = max(0.0, beta[3] * mass[3])
    explained = stack["memory"] + stack["branch_flush"] + stack["fetch_limited"]
    if explained > estimated_cycles:
        scale = estimated_cycles / explained
        for cause in ("memory", "branch_flush", "fetch_limited"):
            stack[cause] *= scale
        explained = float(estimated_cycles)
    stack["base"] = estimated_cycles - explained
    return stack
