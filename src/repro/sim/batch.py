"""Batched multi-config simulation: N configs of one workload in one pass.

Every sweep figure replays the *same* prepared workload against many
machine configurations, but the per-run cost is not all config-dependent:
the decoded instruction facts (:meth:`PreparedWorkload.decode`) and the
position-indexed replay facts (:meth:`PreparedWorkload.replay` — static
dependence rows, scoreboard insert/evict schedules, flattened oracle
rows) are pure functions of the trace.  Simulating configs one
workload at a time shares all of that: phase one and phase 1.5 are
materialized exactly once and every core instance replays against the
same arrays.

:func:`simulate_batch` is the one-call form of that schedule.  It warms
the shared facts up front (an unpickled workload from the artifact cache
arrives without them), coalesces *identical* configs so each distinct
machine is simulated once, and returns results aligned with the request.
:meth:`ExperimentContext.run_many` applies the same workload-major
ordering when fanning sweep points over the worker pool, so each worker
builds the shared facts once per workload rather than once per point.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from .config import MachineConfig
from .results import SimResult
from .workload import PreparedWorkload


def batch_order(configs: Sequence[MachineConfig]) -> List[int]:
    """Indices of the distinct configs, in first-appearance order."""
    seen: Dict[MachineConfig, int] = {}
    order = []
    for index, config in enumerate(configs):
        if config not in seen:
            seen[config] = index
            order.append(index)
    return order


def simulate_batch(
    workload: PreparedWorkload,
    configs: Sequence[MachineConfig],
    max_cycles: Optional[int] = None,
    sampling=None,
    validation=None,
    fidelity: Optional[str] = None,
    interval=None,
) -> List[SimResult]:
    """Simulate ``workload`` on every config, sharing phase-one facts.

    Results come back aligned with ``configs``; duplicate configs are
    coalesced and share one :class:`~repro.sim.results.SimResult` object
    (callers that mutate results should copy first).  The keyword
    arguments forward to :func:`~repro.sim.run.simulate` and apply to
    every config in the batch.
    """
    from .run import simulate

    # Warm the config-invariant facts once, before the first core is
    # built: decode() feeds fetch/dispatch, replay() feeds the static
    # dependence capture.  Both cache on the workload object, so all N
    # cores (and any later runs) replay against the same arrays.
    workload.decode()
    workload.replay()
    memo: Dict[MachineConfig, SimResult] = {}
    results: List[SimResult] = []
    for config in configs:
        result = memo.get(config)
        if result is None:
            result = simulate(
                workload,
                config,
                max_cycles=max_cycles,
                sampling=sampling,
                validation=validation,
                fidelity=fidelity,
                interval=interval,
            )
            memo[config] = result
        results.append(result)
    return results
