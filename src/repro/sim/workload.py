"""Prepared workloads: a dynamic trace plus front-end/memory oracles.

The timing cores are execution-driven in two phases, mirroring the paper's
simulator split.  Phase one (here) runs the functional executor once and
records, per dynamic instruction:

* the correct-path dynamic stream (branch outcomes, memory addresses);
* branch-predictor outcomes, trained in fetch (program) order — the
  misprediction *set* is therefore identical across machine configurations,
  which is what lets one prepared workload drive every sweep point;
* cache latencies for instruction fetches and data accesses, simulated in
  trace order.

Phase two (the timing cores) replays the stream against the machine's
structural constraints: widths, windows, ports, bypass bandwidth, functional
units, and misprediction/refill penalties.  Wrong-path *timing* is charged
through those penalties (the paper's minimum-misprediction-penalty
formulation); wrong-path cache pollution is out of scope.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..isa.instruction import Instruction
from ..isa.program import Program
from ..isa.registers import Space
from ..uarch.branchpred import make_predictor
from ..uarch.cache import MemoryHierarchy, MemoryHierarchyConfig
from .functional import DynInst, FunctionalExecutor


class DecodedInst:
    """Decode-stage facts of one static instruction, computed once.

    The timing cores replay the same trace against many machine
    configurations; everything here depends only on the instruction word
    (opcode, operands, braid annotation bits), so it is extracted once per
    static instruction instead of being re-derived from attribute chains on
    every dynamic dispatch of every sweep point.
    """

    __slots__ = (
        "is_load", "is_store", "is_branch", "latency", "start",
        "dest_external", "dest_internal", "written_key",
        "src_keys", "ext_src_ops", "ext_dest_ops",
    )

    def __init__(self, inst: Instruction) -> None:
        annot = inst.annot
        self.is_load = inst.is_load
        self.is_store = inst.is_store
        self.is_branch = inst.is_branch
        self.latency = inst.opcode.latency
        self.start = annot.start
        written = inst.writes()
        self.dest_external = written is not None and annot.dest_external
        self.dest_internal = written is not None and annot.dest_internal
        self.written_key = (
            (written.rclass.value, written.index) if written is not None else None
        )
        #: ((register key, reads internal file), ...) for each non-zero source
        src_keys = []
        ext_src_ops = 0
        for position, reg in enumerate(inst.srcs):
            if reg.is_zero:
                continue
            internal = annot.src_space(position) is Space.INTERNAL
            src_keys.append(((reg.rclass.value, reg.index), internal))
            if not internal:
                ext_src_ops += 1
        self.src_keys: Tuple = tuple(src_keys)
        # Rename bandwidth accounting: only external operands are renamed.
        self.ext_src_ops = ext_src_ops
        self.ext_dest_ops = 1 if self.dest_external else 0

    def __getstate__(self):
        return tuple(getattr(self, name) for name in self.__slots__)

    def __setstate__(self, state):
        for name, value in zip(self.__slots__, state):
            setattr(self, name, value)


def decode_trace(trace: List[DynInst]) -> List[DecodedInst]:
    """Per-trace-entry decode facts, shared across repeats of a static inst."""
    memo: Dict[int, DecodedInst] = {}
    decoded: List[DecodedInst] = []
    for dyn in trace:
        inst = dyn.inst
        facts = memo.get(id(inst))
        if facts is None:
            facts = memo[id(inst)] = DecodedInst(inst)
        decoded.append(facts)
    return decoded


class ReplayFacts:
    """Config-invariant phase-two replay arrays, indexed by trace position.

    Everything here is a pure function of the trace and its decode facts,
    so it is computed once per workload and shared read-only by every
    timing core replaying it — including every config of a batched sweep
    (:mod:`repro.sim.batch`).  The arrays replace per-dispatch scoreboard
    walks and per-instruction dict probes in the timing cores' hot loop:

    * ``deps[i]`` — static dependence row: ``((producer_index, internal),
      ...)`` for every register source of instruction ``i`` that has an
      in-trace producer, under exactly the semantics the dynamic
      scoreboards implemented (last writer in trace order, separate
      external/internal namespaces, internal bindings dying at braid
      start bits).  Dispatch resolves each row against a small live
      table of in-flight producers instead of re-deriving it per config.
    * ``arch_reads[i]`` — external sources with *no* in-trace producer
      (architectural-file reads).  Sources whose producer retired before
      a sampling gap are added at resolve time.
    * ``insertable[i]`` — 1 if some later instruction's row references
      ``i``; only those producers enter the live table.
    * ``evictions[i]`` — producer indices whose last scoreboard binding
      instruction ``i`` overwrites (or clears, for a braid start); the
      live table drops them when ``i`` dispatches, keeping it bounded by
      the register namespace instead of growing with the trace.
    * ``ifetch_extra[i]`` / ``load_latency[i]`` / ``mem_word[i]`` — the
      phase-one dict oracles flattened to position-indexed lists
      (``None`` where absent) for O(1) un-hashed access.
    * ``store_conflict[i]`` — for a load, the trace position of the
      *youngest older* store to the same memory word (``None`` when no
      such store exists).  Because dispatch and retirement are both
      in order, this single static fact answers run-time memory
      disambiguation exactly: if that store is still in the LSQ it is
      precisely the entry a full age-ordered scan would find, and if it
      has retired then every older matching store has retired too.  The
      issue stage therefore replaces its per-attempt O(stores) LSQ scan
      with one dict probe.
    """

    __slots__ = (
        "deps", "arch_reads", "insertable", "evictions",
        "ifetch_extra", "load_latency", "mem_word", "store_conflict",
        "analytic_retire",
    )

    def __init__(self, deps, arch_reads, insertable, evictions,
                 ifetch_extra, load_latency, mem_word, store_conflict) -> None:
        self.deps = deps
        self.arch_reads = arch_reads
        self.insertable = insertable
        self.evictions = evictions
        self.ifetch_extra = ifetch_extra
        self.load_latency = load_latency
        self.mem_word = mem_word
        self.store_conflict = store_conflict
        #: lazily computed analytic retirement-time curve (see
        #: :func:`repro.sim.sampling._analytic_retire`); config-invariant
        #: like everything else here, so one walk serves every sweep point
        self.analytic_retire = None


def build_replay(trace: List[DynInst], decoded: List[DecodedInst],
                 load_latency: Dict[int, int],
                 ifetch_extra: Dict[int, int]) -> ReplayFacts:
    """Walk the trace once, building every :class:`ReplayFacts` array.

    The builder mirrors the scoreboard discipline of the dispatch stage:
    sources read the tables *before* the instruction's own start-clear and
    destination writes take effect, and consumers always resolve before
    the overwriting writer dispatches (dispatch is in trace order), so
    evict-at-overwrite is observationally identical to the dynamic maps.
    """
    n = len(trace)
    ifetch = [0] * n
    for seq, extra in ifetch_extra.items():
        ifetch[seq] = extra
    loads: List[Optional[int]] = [None] * n
    for seq, value in load_latency.items():
        loads[seq] = value

    mem: List[Optional[int]] = [None] * n
    store_conflict: List[Optional[int]] = [None] * n
    #: memory word -> trace position of its youngest store so far
    last_store: Dict[int, int] = {}
    deps: List[Tuple] = [()] * n
    arch = [0] * n
    referenced = bytearray(n)
    #: producer index -> number of scoreboard slots still binding it
    slots: Dict[int, int] = {}
    #: overwriting index -> producer indices whose last binding it kills
    dead_at: Dict[int, List[int]] = {}
    ext_last: Dict[Tuple, int] = {}
    int_last: Dict[Tuple, int] = {}

    def release(producer: int, at: int) -> None:
        remaining = slots[producer] - 1
        if remaining:
            slots[producer] = remaining
        else:
            del slots[producer]
            dead_at.setdefault(at, []).append(producer)

    for i in range(n):
        dyn = trace[i]
        facts = decoded[i]
        if dyn.mem_addr is not None:
            word = dyn.mem_addr & ~0x7
            mem[i] = word
            if facts.is_load:
                store_conflict[i] = last_store.get(word)
            elif facts.is_store:
                last_store[word] = i
        row = []
        plain_reads = 0
        for key, internal in facts.src_keys:
            producer = (int_last if internal else ext_last).get(key)
            if producer is None:
                if not internal:
                    plain_reads += 1
                continue
            row.append((producer, internal))
            referenced[producer] = 1
        if row:
            deps[i] = tuple(row)
        arch[i] = plain_reads
        if facts.start and int_last:
            # Internal values never cross braid boundaries.
            for producer in int_last.values():
                release(producer, i)
            int_last.clear()
        key = facts.written_key
        if key is not None:
            if facts.dest_internal:
                previous = int_last.get(key)
                int_last[key] = i
                slots[i] = slots.get(i, 0) + 1
                if previous is not None:
                    release(previous, i)
            if facts.dest_external:
                previous = ext_last.get(key)
                ext_last[key] = i
                slots[i] = slots.get(i, 0) + 1
                if previous is not None:
                    release(previous, i)

    evictions: List[Optional[Tuple[int, ...]]] = [None] * n
    for at, dying in dead_at.items():
        pruned = tuple(p for p in dying if referenced[p])
        if pruned:
            evictions[at] = pruned
    return ReplayFacts(
        deps=deps,
        arch_reads=arch,
        insertable=referenced,
        evictions=evictions,
        ifetch_extra=ifetch,
        load_latency=loads,
        mem_word=mem,
        store_conflict=store_conflict,
    )


@dataclass
class WorkloadStats:
    """Phase-one facts about a prepared workload."""

    dynamic_instructions: int = 0
    branches: int = 0
    mispredicts: int = 0
    loads: int = 0
    stores: int = 0
    l1d_miss_rate: float = 0.0
    l1i_miss_rate: float = 0.0

    @property
    def branch_accuracy(self) -> float:
        if not self.branches:
            return 1.0
        return 1.0 - self.mispredicts / self.branches


@dataclass
class PreparedWorkload:
    """Everything a timing core needs to replay one benchmark."""

    name: str
    program: Program
    trace: List[DynInst]
    #: sequence numbers of mispredicted branches
    mispredicted: Set[int]
    #: per-load total data-cache latency (seq -> cycles)
    load_latency: Dict[int, int]
    #: per-instruction *extra* fetch latency beyond the L1I hit time
    ifetch_extra: Dict[int, int]
    stats: WorkloadStats = field(default_factory=WorkloadStats)
    #: lazily computed decode facts, aligned with ``trace`` (see :meth:`decode`)
    decoded: Optional[List[DecodedInst]] = field(
        default=None, repr=False, compare=False
    )
    #: lazily computed replay arrays (see :meth:`replay`); dropped from
    #: pickles — they rebuild in one linear pass and would triple the
    #: artifact-cache footprint
    replay_facts: Optional[ReplayFacts] = field(
        default=None, repr=False, compare=False
    )

    def __len__(self) -> int:
        return len(self.trace)

    def decode(self) -> List[DecodedInst]:
        """Decode facts for every trace entry, computed once per workload."""
        if self.decoded is None:
            self.decoded = decode_trace(self.trace)
        return self.decoded

    def replay(self) -> ReplayFacts:
        """Replay arrays shared by every timing core driving this workload."""
        if self.replay_facts is None:
            self.replay_facts = build_replay(
                self.trace, self.decode(), self.load_latency, self.ifetch_extra
            )
        return self.replay_facts

    def __getstate__(self):
        state = self.__dict__.copy()
        state["replay_facts"] = None
        return state


def prepare_workload(
    program: Program,
    predictor: str = "perceptron",
    memory: Optional[MemoryHierarchyConfig] = None,
    perfect: bool = False,
    max_instructions: int = 200_000,
    warmup_passes: int = 2,
) -> PreparedWorkload:
    """Run phase one on ``program``.

    ``perfect=True`` gives the Figure 1 study's ideal front end: no
    mispredictions and flat L1-hit memory latencies.

    ``warmup_passes`` trains the branch predictor over the trace before the
    measured pass.  The paper simulates MinneSPEC runs of millions of
    instructions where predictor training is amortized to nothing; the
    reproduction's traces are short samples, so warm-up models the same
    steady state instead of measuring cold-start aliasing.
    """
    executor = FunctionalExecutor(program, max_instructions=max_instructions)
    trace = list(executor.trace())

    stats = WorkloadStats(
        dynamic_instructions=len(trace),
        branches=executor.stats.dynamic_branches,
        loads=executor.stats.loads,
        stores=executor.stats.stores,
    )

    mispredicted: Set[int] = set()
    load_latency: Dict[int, int] = {}
    ifetch_extra: Dict[int, int] = {}

    hierarchy = MemoryHierarchy(memory)
    l1_hit = hierarchy.config.l1d_latency

    if perfect:
        for dyn in trace:
            if dyn.is_load:
                load_latency[dyn.seq] = l1_hit
        return PreparedWorkload(
            name=program.name,
            program=program,
            trace=trace,
            mispredicted=mispredicted,
            load_latency=load_latency,
            ifetch_extra=ifetch_extra,
            stats=stats,
        )

    branch_predictor = make_predictor(predictor)
    for _ in range(max(0, warmup_passes)):
        for dyn in trace:
            if dyn.is_branch:
                branch_predictor.predict(dyn.pc)
                branch_predictor.update(dyn.pc, bool(dyn.taken))

    previous_line = -1
    line_bytes = hierarchy.config.line_bytes

    for dyn in trace:
        line = dyn.pc // line_bytes
        if line != previous_line:
            latency = hierarchy.instruction_fetch(dyn.pc)
            extra = latency - hierarchy.config.l1i_latency
            if extra > 0:
                ifetch_extra[dyn.seq] = extra
            previous_line = line

        if dyn.is_branch:
            prediction = branch_predictor.predict(dyn.pc)
            actual = bool(dyn.taken)
            branch_predictor.update(dyn.pc, actual)
            if prediction != actual:
                mispredicted.add(dyn.seq)
        elif dyn.is_load:
            load_latency[dyn.seq] = hierarchy.data_access(dyn.mem_addr)
        elif dyn.is_store:
            hierarchy.data_access(dyn.mem_addr)

    stats.mispredicts = len(mispredicted)
    stats.l1d_miss_rate = hierarchy.l1d.stats.miss_rate
    stats.l1i_miss_rate = hierarchy.l1i.stats.miss_rate
    return PreparedWorkload(
        name=program.name,
        program=program,
        trace=trace,
        mispredicted=mispredicted,
        load_latency=load_latency,
        ifetch_extra=ifetch_extra,
        stats=stats,
    )
