"""Prepared workloads: a dynamic trace plus front-end/memory oracles.

The timing cores are execution-driven in two phases, mirroring the paper's
simulator split.  Phase one (here) runs the functional executor once and
records, per dynamic instruction:

* the correct-path dynamic stream (branch outcomes, memory addresses);
* branch-predictor outcomes, trained in fetch (program) order — the
  misprediction *set* is therefore identical across machine configurations,
  which is what lets one prepared workload drive every sweep point;
* cache latencies for instruction fetches and data accesses, simulated in
  trace order.

Phase two (the timing cores) replays the stream against the machine's
structural constraints: widths, windows, ports, bypass bandwidth, functional
units, and misprediction/refill penalties.  Wrong-path *timing* is charged
through those penalties (the paper's minimum-misprediction-penalty
formulation); wrong-path cache pollution is out of scope.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from ..isa.program import Program
from ..uarch.branchpred import make_predictor
from ..uarch.cache import MemoryHierarchy, MemoryHierarchyConfig
from .functional import DynInst, FunctionalExecutor


@dataclass
class WorkloadStats:
    """Phase-one facts about a prepared workload."""

    dynamic_instructions: int = 0
    branches: int = 0
    mispredicts: int = 0
    loads: int = 0
    stores: int = 0
    l1d_miss_rate: float = 0.0
    l1i_miss_rate: float = 0.0

    @property
    def branch_accuracy(self) -> float:
        if not self.branches:
            return 1.0
        return 1.0 - self.mispredicts / self.branches


@dataclass
class PreparedWorkload:
    """Everything a timing core needs to replay one benchmark."""

    name: str
    program: Program
    trace: List[DynInst]
    #: sequence numbers of mispredicted branches
    mispredicted: Set[int]
    #: per-load total data-cache latency (seq -> cycles)
    load_latency: Dict[int, int]
    #: per-instruction *extra* fetch latency beyond the L1I hit time
    ifetch_extra: Dict[int, int]
    stats: WorkloadStats = field(default_factory=WorkloadStats)

    def __len__(self) -> int:
        return len(self.trace)


def prepare_workload(
    program: Program,
    predictor: str = "perceptron",
    memory: Optional[MemoryHierarchyConfig] = None,
    perfect: bool = False,
    max_instructions: int = 200_000,
    warmup_passes: int = 2,
) -> PreparedWorkload:
    """Run phase one on ``program``.

    ``perfect=True`` gives the Figure 1 study's ideal front end: no
    mispredictions and flat L1-hit memory latencies.

    ``warmup_passes`` trains the branch predictor over the trace before the
    measured pass.  The paper simulates MinneSPEC runs of millions of
    instructions where predictor training is amortized to nothing; the
    reproduction's traces are short samples, so warm-up models the same
    steady state instead of measuring cold-start aliasing.
    """
    executor = FunctionalExecutor(program, max_instructions=max_instructions)
    trace = list(executor.trace())

    stats = WorkloadStats(
        dynamic_instructions=len(trace),
        branches=executor.stats.dynamic_branches,
        loads=executor.stats.loads,
        stores=executor.stats.stores,
    )

    mispredicted: Set[int] = set()
    load_latency: Dict[int, int] = {}
    ifetch_extra: Dict[int, int] = {}

    hierarchy = MemoryHierarchy(memory)
    l1_hit = hierarchy.config.l1d_latency

    if perfect:
        for dyn in trace:
            if dyn.is_load:
                load_latency[dyn.seq] = l1_hit
        return PreparedWorkload(
            name=program.name,
            program=program,
            trace=trace,
            mispredicted=mispredicted,
            load_latency=load_latency,
            ifetch_extra=ifetch_extra,
            stats=stats,
        )

    branch_predictor = make_predictor(predictor)
    for _ in range(max(0, warmup_passes)):
        for dyn in trace:
            if dyn.is_branch:
                branch_predictor.predict(dyn.pc)
                branch_predictor.update(dyn.pc, bool(dyn.taken))

    previous_line = -1
    line_bytes = hierarchy.config.line_bytes

    for dyn in trace:
        line = dyn.pc // line_bytes
        if line != previous_line:
            latency = hierarchy.instruction_fetch(dyn.pc)
            extra = latency - hierarchy.config.l1i_latency
            if extra > 0:
                ifetch_extra[dyn.seq] = extra
            previous_line = line

        if dyn.is_branch:
            prediction = branch_predictor.predict(dyn.pc)
            actual = bool(dyn.taken)
            branch_predictor.update(dyn.pc, actual)
            if prediction != actual:
                mispredicted.add(dyn.seq)
        elif dyn.is_load:
            load_latency[dyn.seq] = hierarchy.data_access(dyn.mem_addr)
        elif dyn.is_store:
            hierarchy.data_access(dyn.mem_addr)

    stats.mispredicts = len(mispredicted)
    stats.l1d_miss_rate = hierarchy.l1d.stats.miss_rate
    stats.l1i_miss_rate = hierarchy.l1i.stats.miss_rate
    return PreparedWorkload(
        name=program.name,
        program=program,
        trace=trace,
        mispredicted=mispredicted,
        load_latency=load_latency,
        ifetch_extra=ifetch_extra,
        stats=stats,
    )
