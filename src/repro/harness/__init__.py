"""Experiment harness: regenerate every table and figure of the paper."""

from .artifacts import ArtifactCache, CACHE_FORMAT_VERSION, default_cache_dir
from .context import ExperimentContext, benchmarks_from_env, scale_from_env
from .parallel import jobs_from_env, run_points_parallel
from .sweep import Cell, SweepPoint, sweep_experiment
from .experiments import (
    abl_beu_occupancy,
    abl_internal_reg_limit,
    cpi_stack_experiment,
    disc_pipeline_length,
    fig1_width_potential,
    fig5_ooo_registers,
    fig6_braid_ext_registers,
    fig7_braid_rf_ports,
    fig8_braid_bypass,
    fig9_braid_beus,
    fig10_braid_fifo,
    fig11_braid_window,
    fig12_braid_window_fus,
    fig13_paradigms,
    fig14_equal_fus,
    sampling_validation,
    sec1_value_characterization,
    tab1_braids_per_block,
    tab2_braid_size_width,
    tab3_braid_io,
)
from .figures import render_bars, render_series, render_stacked
from .reporting import ExperimentResult, normalize_rows

ALL_EXPERIMENTS = {
    "F1": fig1_width_potential,
    "VC": sec1_value_characterization,
    "T1": tab1_braids_per_block,
    "T2": tab2_braid_size_width,
    "T3": tab3_braid_io,
    "F5": fig5_ooo_registers,
    "F6": fig6_braid_ext_registers,
    "F7": fig7_braid_rf_ports,
    "F8": fig8_braid_bypass,
    "F9": fig9_braid_beus,
    "F10": fig10_braid_fifo,
    "F11": fig11_braid_window,
    "F12": fig12_braid_window_fus,
    "F13": fig13_paradigms,
    "F14": fig14_equal_fus,
    "D1": disc_pipeline_length,
    "A1": abl_beu_occupancy,
    "A2": abl_internal_reg_limit,
    "SV": sampling_validation,
    "CS": cpi_stack_experiment,
}

__all__ = [
    "ExperimentContext",
    "benchmarks_from_env",
    "scale_from_env",
    "jobs_from_env",
    "run_points_parallel",
    "ArtifactCache",
    "CACHE_FORMAT_VERSION",
    "default_cache_dir",
    "SweepPoint",
    "Cell",
    "sweep_experiment",
    "render_bars",
    "render_series",
    "render_stacked",
    "ExperimentResult",
    "normalize_rows",
    "ALL_EXPERIMENTS",
] + [fn.__name__ for fn in ALL_EXPERIMENTS.values()]
