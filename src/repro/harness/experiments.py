"""Experiment definitions: one function per paper table/figure.

Each function returns an :class:`ExperimentResult` whose shape mirrors the
paper's artifact (same series, same normalization).  Timing figures are
expressed declaratively as grids of :class:`~repro.harness.sweep.Cell`s and
run through :func:`~repro.harness.sweep.sweep_experiment`, so every point of
a figure is batched through ``ExperimentContext.run_many`` — the single
place where memoization, the persistent artifact cache, and the
multiprocessing pool apply.  Analysis-only tables (VC, T1-T3) read the
compiler and traces directly.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Iterable, List, Sequence, Tuple

from ..analysis.braidstats import braid_statistics
from ..analysis.values import average_fractions, characterize_values
from ..sim.config import braid_config, depsteer_config, inorder_config, ooo_config
from ..sim.registry import core_registry
from ..uarch.regfile import RegFileSpec
from .context import ExperimentContext
from .reporting import ExperimentResult
from .sweep import Cell, SweepPoint, sweep_experiment


def _ooo8_baseline(name: str) -> SweepPoint:
    """The paper's universal normalization point: 8-wide out-of-order."""
    return SweepPoint(name, ooo_config(8))


# ---------------------------------------------------------------------------
# Figure 1 — potential performance at wider issue widths (perfect front end)
# ---------------------------------------------------------------------------
def fig1_width_potential(ctx: ExperimentContext) -> ExperimentResult:
    """Figure 1: OoO speedup at 8/16-wide over 4-wide, perfect front end."""
    widths = (4, 8, 16)
    cells = [
        Cell(name, f"{width}w",
             SweepPoint(name, ooo_config(width), perfect=True))
        for name in ctx.benchmarks
        for width in widths
    ]
    return sweep_experiment(
        ctx,
        experiment_id="F1",
        title="speedup of 8/16-wide over 4-wide out-of-order, "
              "perfect branch prediction and caches",
        paper_expectation="average speedup 1.44x at 8-wide, 1.83x at 16-wide",
        columns=[f"{w}w" for w in widths],
        cells=cells,
        normalize_to="4w",
    )


# ---------------------------------------------------------------------------
# Section 1.1 — value fanout and lifetime characterization
# ---------------------------------------------------------------------------
def sec1_value_characterization(ctx: ExperimentContext) -> ExperimentResult:
    """Section 1.1: value fanout and lifetime distributions."""
    result = ExperimentResult(
        experiment_id="VC",
        title="value fanout and lifetime",
        paper_expectation=">70% single-use, ~90% used at most twice, "
                          "~4% unused, ~80% lifetime <= 32 instructions",
        columns=["single", "le2", "unused", "life32"],
    )
    characterizations = []
    for name in ctx.benchmarks:
        chars = characterize_values(
            ctx.program(name), max_instructions=ctx.max_instructions
        )
        characterizations.append(chars)
        result.rows[name] = {
            "single": chars.fraction_single_use,
            "le2": chars.fraction_at_most_two_uses,
            "unused": chars.fraction_unused,
            "life32": chars.fraction_short_lived,
        }
    headline = average_fractions(characterizations)
    result.averages = {
        "single": headline["single_use"],
        "le2": headline["at_most_two_uses"],
        "unused": headline["unused"],
        "life32": headline["lifetime_le_32"],
    }
    return result


# ---------------------------------------------------------------------------
# Tables 1-3 — braid statistics
# ---------------------------------------------------------------------------
def _stats_experiment(
    ctx: ExperimentContext,
    experiment_id: str,
    title: str,
    expectation: str,
    metrics: Sequence[Tuple[str, str, bool]],
) -> ExperimentResult:
    """Shared Tables 1-3 driver: metrics are (column, attr, exclude_singles)."""
    result = ExperimentResult(
        experiment_id=experiment_id,
        title=title,
        paper_expectation=expectation,
        columns=[column for column, _, _ in metrics],
    )
    for name in ctx.benchmarks:
        stats = braid_statistics(ctx.compilation(name), suite=ctx.suite_of(name))
        result.rows[name] = {
            column: getattr(stats, attr)(exclude)
            for column, attr, exclude in metrics
        }
    result.finalize_averages()
    return result


def tab1_braids_per_block(ctx: ExperimentContext) -> ExperimentResult:
    """Table 1: braids per basic block, with/without singles."""
    return _stats_experiment(
        ctx,
        "T1",
        "braids per basic block",
        "int 2.8 (1.1 excluding singles), fp 3.8 (1.5 excluding singles)",
        [
            ("braids/bb", "braids_per_block", False),
            ("excl-single", "braids_per_block", True),
        ],
    )


def tab2_braid_size_width(ctx: ExperimentContext) -> ExperimentResult:
    """Table 2: braid size and width."""
    return _stats_experiment(
        ctx,
        "T2",
        "braid size and width",
        "size int 2.5 (4.7 excl singles) / fp 3.6 (7.6); width ~1.1",
        [
            ("size", "mean_size", False),
            ("size*", "mean_size", True),
            ("width", "mean_width", False),
            ("width*", "mean_width", True),
        ],
    )


def tab3_braid_io(ctx: ExperimentContext) -> ExperimentResult:
    """Table 3: internal values, external inputs/outputs per braid."""
    return _stats_experiment(
        ctx,
        "T3",
        "braid internal values, external inputs/outputs",
        "int internals 1.7 / ext-in 1.7 / ext-out 0.7; "
        "fp internals 3.0 / ext-in 2.2 / ext-out 0.8",
        [
            ("internal", "mean_internals", False),
            ("ext-in", "mean_external_inputs", False),
            ("ext-out", "mean_external_outputs", False),
        ],
    )


# ---------------------------------------------------------------------------
# Figure 5 — out-of-order register file entries
# ---------------------------------------------------------------------------
def fig5_ooo_registers(
    ctx: ExperimentContext, entries: Iterable[int] = (256, 64, 32, 16, 8)
) -> ExperimentResult:
    """Figure 5: out-of-order IPC vs register file entries."""
    entries = tuple(entries)

    def config_for(count: int):
        config = ooo_config(8)
        return replace(
            config,
            name=f"ooo-8w-rf{count}",
            regfile=RegFileSpec(count, config.regfile.read_ports,
                                config.regfile.write_ports),
        )

    cells = [
        Cell(name, str(count), SweepPoint(name, config_for(count)))
        for name in ctx.benchmarks
        for count in entries
    ]
    return sweep_experiment(
        ctx,
        experiment_id="F5",
        title="out-of-order performance vs register file entries",
        paper_expectation="32 entries cost ~8%, 16 entries ~21%",
        columns=[str(e) for e in entries],
        cells=cells,
        normalize_to=str(entries[0]),
    )


# ---------------------------------------------------------------------------
# Figure 6 — braid external register file entries
# ---------------------------------------------------------------------------
def fig6_braid_ext_registers(
    ctx: ExperimentContext, entries: Iterable[int] = (256, 32, 16, 8, 4, 2, 1)
) -> ExperimentResult:
    """Figure 6: braid IPC vs external register file entries."""
    entries = tuple(entries)

    def config_for(count: int):
        config = braid_config(8)
        return replace(
            config,
            name=f"braid-8w-ext{count}",
            regfile=RegFileSpec(count, config.regfile.read_ports,
                                config.regfile.write_ports),
        )

    cells = [
        Cell(name, str(count),
             SweepPoint(name, config_for(count), braided=True))
        for name in ctx.benchmarks
        for count in entries
    ]
    return sweep_experiment(
        ctx,
        experiment_id="F6",
        title="braid performance vs external register file entries",
        paper_expectation="8 entries match a 256-entry file; "
                          "degradation only below 8",
        columns=[str(e) for e in entries],
        cells=cells,
        normalize_to=str(entries[0]),
    )


# ---------------------------------------------------------------------------
# Figure 7 — braid external register file ports
# ---------------------------------------------------------------------------
def fig7_braid_rf_ports(
    ctx: ExperimentContext,
    ports: Iterable[Tuple[int, int]] = ((16, 8), (8, 4), (6, 3), (4, 2)),
) -> ExperimentResult:
    """Figure 7: braid IPC vs external register file ports."""
    ports = tuple(ports)

    def config_for(read_ports: int, write_ports: int):
        config = braid_config(8)
        return replace(
            config,
            name=f"braid-8w-p{read_ports}:{write_ports}",
            regfile=RegFileSpec(config.regfile.entries, read_ports, write_ports),
        )

    cells = [
        Cell(name, f"{r},{w}", SweepPoint(name, config_for(r, w), braided=True))
        for name in ctx.benchmarks
        for r, w in ports
    ]
    return sweep_experiment(
        ctx,
        experiment_id="F7",
        title="braid performance vs external register file ports (read,write)",
        paper_expectation="6 read / 3 write ports within 0.5% of a full port set",
        columns=[f"{r},{w}" for r, w in ports],
        cells=cells,
        normalize_to=f"{ports[0][0]},{ports[0][1]}",
    )


# ---------------------------------------------------------------------------
# Figure 8 — braid bypass bandwidth
# ---------------------------------------------------------------------------
def fig8_braid_bypass(
    ctx: ExperimentContext, widths: Iterable[int] = (8, 4, 2, 1)
) -> ExperimentResult:
    """Figure 8: braid IPC vs bypass paths per cycle."""
    widths = tuple(widths)
    cells = [
        Cell(
            name,
            str(width),
            SweepPoint(
                name,
                replace(braid_config(8), name=f"braid-8w-bp{width}",
                        bypass_width=width),
                braided=True,
            ),
        )
        for name in ctx.benchmarks
        for width in widths
    ]
    return sweep_experiment(
        ctx,
        experiment_id="F8",
        title="braid performance vs bypass paths per cycle",
        paper_expectation="2 bypass values per cycle within 1% of a full network",
        columns=[str(w) for w in widths],
        cells=cells,
        normalize_to=str(widths[0]),
    )


# ---------------------------------------------------------------------------
# Figure 9 — number of BEUs
# ---------------------------------------------------------------------------
def fig9_braid_beus(
    ctx: ExperimentContext, beus: Iterable[int] = (1, 2, 4, 8, 16)
) -> ExperimentResult:
    """Figure 9: braid IPC vs number of BEUs."""
    beus = tuple(beus)
    cells = [
        Cell(
            name,
            str(count),
            SweepPoint(
                name,
                replace(braid_config(8), name=f"braid-{count}beu",
                        clusters=count),
                braided=True,
            ),
            baseline=_ooo8_baseline(name),
        )
        for name in ctx.benchmarks
        for count in beus
    ]
    return sweep_experiment(
        ctx,
        experiment_id="F9",
        title="braid performance vs number of BEUs "
              "(normalized to 8-wide out-of-order)",
        paper_expectation="performance rises with BEU count; more ready braids "
                          "than BEUs",
        columns=[str(b) for b in beus],
        cells=cells,
    )


# ---------------------------------------------------------------------------
# Figure 10 — BEU FIFO depth
# ---------------------------------------------------------------------------
def fig10_braid_fifo(
    ctx: ExperimentContext, entries: Iterable[int] = (4, 8, 16, 32, 64)
) -> ExperimentResult:
    """Figure 10: braid IPC vs FIFO entries per BEU."""
    entries = tuple(entries)
    cells = [
        Cell(
            name,
            str(count),
            SweepPoint(
                name,
                replace(braid_config(8), name=f"braid-fifo{count}",
                        cluster_entries=count),
                braided=True,
            ),
            baseline=_ooo8_baseline(name),
        )
        for name in ctx.benchmarks
        for count in entries
    ]
    return sweep_experiment(
        ctx,
        experiment_id="F10",
        title="braid performance vs FIFO entries per BEU "
              "(normalized to 8-wide out-of-order)",
        paper_expectation="32 entries capture almost all performance "
                          "(99% of braids are <= 32 instructions)",
        columns=[str(e) for e in entries],
        cells=cells,
    )


# ---------------------------------------------------------------------------
# Figure 11 — BEU scheduling window
# ---------------------------------------------------------------------------
def fig11_braid_window(
    ctx: ExperimentContext, windows: Iterable[int] = (1, 2, 4, 8)
) -> ExperimentResult:
    """Figure 11: braid IPC vs scheduling window size."""
    windows = tuple(windows)
    cells = [
        Cell(
            name,
            str(window),
            SweepPoint(
                name,
                replace(braid_config(8), name=f"braid-win{window}",
                        beu_window=window),
                braided=True,
            ),
            baseline=_ooo8_baseline(name),
        )
        for name in ctx.benchmarks
        for window in windows
    ]
    return sweep_experiment(
        ctx,
        experiment_id="F11",
        title="braid performance vs FIFO scheduling window size "
              "(normalized to 8-wide out-of-order)",
        paper_expectation="steep rise from 1 to 2, plateau beyond 2",
        columns=[str(w) for w in windows],
        cells=cells,
    )


# ---------------------------------------------------------------------------
# Figure 12 — window size and functional units together
# ---------------------------------------------------------------------------
def fig12_braid_window_fus(
    ctx: ExperimentContext, sizes: Iterable[int] = (1, 2, 4, 8)
) -> ExperimentResult:
    """Figure 12: braid IPC vs window size == FUs per BEU."""
    sizes = tuple(sizes)
    cells = [
        Cell(
            name,
            str(size),
            SweepPoint(
                name,
                replace(
                    braid_config(8),
                    name=f"braid-wf{size}",
                    beu_window=size,
                    beu_functional_units=size,
                ),
                braided=True,
            ),
            baseline=_ooo8_baseline(name),
        )
        for name in ctx.benchmarks
        for size in sizes
    ]
    return sweep_experiment(
        ctx,
        experiment_id="F12",
        title="braid performance vs window size == functional units per BEU "
              "(normalized to 8-wide out-of-order)",
        paper_expectation="same plateau as Figure 11: braid ILP is ~2",
        columns=[str(s) for s in sizes],
        cells=cells,
    )


# ---------------------------------------------------------------------------
# Figure 13 — four paradigms at three widths
# ---------------------------------------------------------------------------
def fig13_paradigms(
    ctx: ExperimentContext, widths: Iterable[int] = (4, 8, 16)
) -> ExperimentResult:
    """Figure 13: the four paradigms at 4/8/16-wide."""
    widths = tuple(widths)
    columns: List[str] = []
    for width in widths:
        columns.extend(
            [f"io-{width}", f"dep-{width}", f"braid-{width}", f"ooo-{width}"]
        )
    cells = []
    for name in ctx.benchmarks:
        baseline = _ooo8_baseline(name)
        for width in widths:
            paradigms = [
                (f"io-{width}", SweepPoint(name, inorder_config(width))),
                (f"dep-{width}", SweepPoint(name, depsteer_config(width))),
                (f"braid-{width}",
                 SweepPoint(name, braid_config(width), braided=True)),
                (f"ooo-{width}", SweepPoint(name, ooo_config(width))),
            ]
            cells.extend(
                Cell(name, column, point, baseline=baseline)
                for column, point in paradigms
            )
    return sweep_experiment(
        ctx,
        experiment_id="F13",
        title="in-order / dependence-steering / braid / out-of-order IPC, "
              "normalized to 8-wide out-of-order",
        paper_expectation="braid within 9% of 8-wide out-of-order; "
                          "gap closes as width grows; "
                          "ordering in-order < dep < braid < out-of-order",
        columns=columns,
        cells=cells,
    )


# ---------------------------------------------------------------------------
# Figure 14 — equal functional unit resources
# ---------------------------------------------------------------------------
def fig14_equal_fus(ctx: ExperimentContext) -> ExperimentResult:
    """Figure 14: equal-FU braid configurations."""
    cells = []
    for name in ctx.benchmarks:
        default = SweepPoint(name, braid_config(8), braided=True)
        few_wide = SweepPoint(
            name,
            replace(braid_config(8), name="braid-4beu-2fu", clusters=4),
            braided=True,
        )
        many_narrow = SweepPoint(
            name,
            replace(braid_config(8), name="braid-8beu-1fu",
                    beu_functional_units=1),
            braided=True,
        )
        cells.extend([
            Cell(name, "4x2", few_wide, baseline=default),
            Cell(name, "8x1", many_narrow, baseline=default),
            Cell(name, "8x2", default, baseline=default),
        ])
    return sweep_experiment(
        ctx,
        experiment_id="F14",
        title="equal-FU braid configurations, normalized to the default "
              "(8 BEUs x 2 FUs)",
        paper_expectation="more BEUs with fewer FUs each wins: "
                          "8 BEU x 1 FU > 4 BEU x 2 FU",
        columns=["4x2", "8x1", "8x2"],
        cells=cells,
    )


# ---------------------------------------------------------------------------
# Section 5.1 — pipeline-length discussion (19 vs 23 cycle penalty)
# ---------------------------------------------------------------------------
def disc_pipeline_length(ctx: ExperimentContext) -> ExperimentResult:
    """Section 5.1: gain from the 4-stage-shorter pipeline."""
    long_front = replace(braid_config(8).front_end, depth=8, redirect=13)
    cells = []
    for name in ctx.benchmarks:
        short = SweepPoint(name, braid_config(8), braided=True)
        long = SweepPoint(
            name,
            replace(braid_config(8), name="braid-8w-longpipe",
                    front_end=long_front),
            braided=True,
        )
        cells.extend([
            Cell(name, "short", short),
            Cell(name, "long", long),
            Cell(name, "gain", short, baseline=long),
        ])
    return sweep_experiment(
        ctx,
        experiment_id="D1",
        title="braid speedup from the 4-stage-shorter pipeline "
              "(19- vs 23-cycle minimum misprediction penalty)",
        paper_expectation="average gain ~2.19%",
        columns=["short", "long", "gain"],
        cells=cells,
    )


# ---------------------------------------------------------------------------
# Ablations (DESIGN.md section 3)
# ---------------------------------------------------------------------------
def abl_beu_occupancy(ctx: ExperimentContext) -> ExperimentResult:
    """Ablation A1: single braid per BEU vs queued braids."""
    cells = []
    for name in ctx.benchmarks:
        single = SweepPoint(name, braid_config(8), braided=True)
        queued = SweepPoint(
            name,
            replace(braid_config(8), name="braid-8w-queued",
                    beu_queue_braids=True),
            braided=True,
        )
        cells.extend([
            Cell(name, "single", single, baseline=single),
            Cell(name, "queued", queued, baseline=single),
        ])
    return sweep_experiment(
        ctx,
        experiment_id="A1",
        title="single braid per BEU vs queued braids (normalized to single)",
        paper_expectation="the paper's one-braid-at-a-time rule; queueing "
                          "suffers head-of-line blocking",
        columns=["single", "queued"],
        cells=cells,
    )


def abl_internal_reg_limit(
    ctx: ExperimentContext, limits: Iterable[int] = (4, 8, 16)
) -> ExperimentResult:
    """Ablation A2: internal register limit sweep."""
    limits = tuple(limits)
    result = ExperimentResult(
        experiment_id="A2",
        title="internal register limit: braids broken and performance "
              "(normalized to limit 8)",
        paper_expectation="8 internal registers suffice; breaking affects "
                          "~2% of braids",
        columns=[f"ipc-{k}" for k in limits] + [f"splits-{k}" for k in limits],
    )

    def point_for(name: str, limit: int) -> SweepPoint:
        config = replace(
            braid_config(8),
            name=f"braid-8w-int{limit}",
            internal_regfile=RegFileSpec(limit, 4, 2),
        )
        return SweepPoint(name, config, braided=True, internal_limit=limit)

    # Batch every timing point up front (splits come from the compiler).
    ctx.run_many(
        [point_for(name, limit) for name in ctx.benchmarks for limit in limits]
    )
    for name in ctx.benchmarks:
        row: Dict[str, float] = {}
        base = None
        for limit in limits:
            compilation = ctx.compilation(name, internal_limit=limit)
            point = point_for(name, limit)
            ipc = ctx.run(
                name, point.config, braided=True, internal_limit=limit
            ).ipc
            if limit == 8:
                base = ipc
            row[f"ipc-{limit}"] = ipc
            row[f"splits-{limit}"] = float(
                compilation.report.splits.pressure_splits
            )
        if base:
            for limit in limits:
                row[f"ipc-{limit}"] /= base
        result.rows[name] = row
    result.finalize_averages()
    return result


# ---------------------------------------------------------------------------
# Sampling validation — sampled vs exact IPC on every core kind
# ---------------------------------------------------------------------------
def sampling_validation(ctx: ExperimentContext) -> ExperimentResult:
    """SV: interval-sampled over exact IPC, per (benchmark, core kind).

    Validates the sampling error budget end to end: every cell simulates
    its point twice — exactly and with the context's sampling
    configuration (default :class:`~repro.sim.sampling.SamplingConfig`
    when the context runs exact) — and reports the IPC ratio.  The
    anchored sample plan needs enough outer-loop iterations to engage
    (``--scale`` >= 2 or so); on shorter traces sampling falls back to
    exact mode and every cell is exactly 1.00.
    """
    from ..sim.run import simulate
    from ..sim.sampling import SamplingConfig

    sampling = ctx.sampling if ctx.sampling is not None else SamplingConfig()
    configs = {
        key: (descriptor.config_factory(8), descriptor.braided)
        for key, descriptor in core_registry().items()
    }
    result = ExperimentResult(
        experiment_id="SV",
        title="sampled / exact IPC ratio per core kind",
        paper_expectation="every point within ±2% of 1.00 at bench scale "
                          "(scale 64, stride 16)",
        columns=list(configs),
    )
    worst = 0.0
    fallbacks = 0
    for name in ctx.benchmarks:
        row: Dict[str, float] = {}
        for label, (config, braided) in configs.items():
            workload = ctx.workload(name, braided=braided)
            exact = simulate(workload, config)
            sampled = simulate(workload, config, sampling=sampling)
            ratio = sampled.ipc / exact.ipc if exact.ipc else 0.0
            worst = max(worst, abs(ratio - 1.0))
            fallbacks += 0 if sampled.sampled else 1
            row[label] = ratio
        result.rows[name] = row
    result.finalize_averages()
    result.notes.append(
        f"max |IPC error| {100 * worst:.2f}% with sampling "
        f"({sampling.spec()})"
    )
    if fallbacks:
        result.notes.append(
            f"{fallbacks} point(s) fell back to exact simulation "
            f"(trace too short for a sample plan)"
        )
    return result


# ---------------------------------------------------------------------------
# CPI stacks — where every cycle goes, per core kind
# ---------------------------------------------------------------------------
def cpi_stack_experiment(ctx: ExperimentContext) -> ExperimentResult:
    """CS: CPI stall-attribution stacks for every (benchmark, core kind).

    Each row is one (benchmark, core) cell decomposed into CPI components
    from the :data:`~repro.obs.cpi.STALL_CAUSES` taxonomy: per-cycle
    retirement-slot accounting charges used slots to ``base`` and every
    empty slot to exactly one cause, so the columns of a row sum to that
    cell's CPI (exactly in exact mode, within rounding for sampled runs).
    The stacked-bar rendering (``--format bars``) makes the paper's core
    comparison visual: the braid core's residual over out-of-order should
    appear as data-dependence and FIFO-structural segments, not as base.
    """
    from ..obs import STALL_CAUSES, Observer
    from ..sim.run import simulate

    configs = {
        key: (descriptor.config_factory(8), descriptor.braided)
        for key, descriptor in core_registry().items()
    }
    result = ExperimentResult(
        experiment_id="CS",
        title="CPI stacks by stall cause (cycles per instruction)",
        paper_expectation="braid residual over ooo concentrates in "
                          "data-dependence and FIFO-structural slots",
        columns=list(STALL_CAUSES),
        stacked=True,
    )
    for name in ctx.benchmarks:
        for label, (config, braided) in configs.items():
            workload = ctx.workload(name, braided=braided)
            observe = Observer(cpi=True)
            cell = simulate(
                workload, config, sampling=ctx.sampling, observe=observe
            )
            instructions = cell.instructions or 1
            result.rows[f"{name}/{label}"] = {
                cause: cell.cpi_stack.get(cause, 0.0) / instructions
                for cause in STALL_CAUSES
            }
    result.finalize_averages()
    result.notes.append(
        "each row sums to the cell's CPI; empty retirement slots are "
        "charged to exactly one cause per cycle"
    )
    return result
