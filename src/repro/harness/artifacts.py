"""Persistent on-disk cache for phase-one experiment artifacts.

Every fresh session used to recompute program generation, braid compilation,
functional traces, and predictor/cache oracles from scratch even though they
are pure functions of ``(benchmark, scale, perfect, internal_limit,
predictor, max_instructions)``.  This module stores those artifacts
(:class:`~repro.sim.workload.PreparedWorkload`,
:class:`~repro.core.pipeline.BraidCompilation`) as pickles under a cache
directory so repeated bench runs skip phase one entirely.

Layout and knobs:

* the cache root is ``$REPRO_CACHE_DIR`` or ``~/.cache/repro``;
* ``$REPRO_NO_CACHE=1`` (or ``ArtifactCache(enabled=False)``, or the harness
  ``--no-cache`` flag) disables all reads and writes;
* every key embeds :data:`CACHE_FORMAT_VERSION` — bump it whenever the
  pickled artifact layout or the phase-one semantics change, and stale
  entries are simply never looked up again;
* unreadable or truncated entries are deleted and recomputed, so a crashed
  writer cannot poison later runs; writes go through a temp file plus
  ``os.replace`` so concurrent workers only ever see complete entries.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from pathlib import Path
from typing import Any, Optional, Tuple

#: Bump when artifact pickles or phase-one semantics change shape.
CACHE_FORMAT_VERSION = 1

_ENV_DIR = "REPRO_CACHE_DIR"
_ENV_DISABLE = "REPRO_NO_CACHE"


def default_cache_dir() -> Path:
    """Resolve the cache root from ``REPRO_CACHE_DIR`` (or ``~/.cache/repro``)."""
    env = os.environ.get(_ENV_DIR, "").strip()
    if env:
        return Path(env).expanduser()
    return Path.home() / ".cache" / "repro"


def cache_disabled_by_env() -> bool:
    value = os.environ.get(_ENV_DISABLE, "").strip().lower()
    return value not in ("", "0", "false", "no")


class ArtifactCache:
    """Content-addressed pickle store for phase-one artifacts."""

    def __init__(self, root: Optional[Path] = None, enabled: bool = True) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()
        self.enabled = enabled
        self.hits = 0
        self.misses = 0

    @classmethod
    def from_env(cls) -> "ArtifactCache":
        return cls(enabled=not cache_disabled_by_env())

    # ------------------------------------------------------------------ paths
    @staticmethod
    def _digest(key: Tuple) -> str:
        return hashlib.sha256(repr(key).encode("utf-8")).hexdigest()

    def path_for(self, key: Tuple) -> Path:
        """File that stores ``key`` (first element names the artifact kind)."""
        return self.root / f"{key[0]}-{self._digest(key)}.pkl"

    # -------------------------------------------------------------------- api
    def get(self, key: Tuple) -> Optional[Any]:
        """The cached artifact, or None on a miss (corrupt entries evicted)."""
        if not self.enabled:
            return None
        path = self.path_for(key)
        try:
            with open(path, "rb") as handle:
                value = pickle.load(handle)
        except FileNotFoundError:
            self.misses += 1
            return None
        except Exception:
            # Truncated/incompatible pickle: evict so the slot heals itself.
            self.misses += 1
            try:
                path.unlink()
            except OSError:
                pass
            return None
        self.hits += 1
        return value

    def put(self, key: Tuple, value: Any) -> None:
        """Store ``value`` atomically; failures are silent (cache is advisory)."""
        if not self.enabled:
            return
        path = self.path_for(key)
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(
                dir=str(self.root), prefix=path.name, suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "wb") as handle:
                    pickle.dump(value, handle, protocol=pickle.HIGHEST_PROTOCOL)
                os.replace(tmp_name, path)
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
        except OSError:
            pass

    # ------------------------------------------------------------ key helpers
    @staticmethod
    def workload_key(
        benchmark: str,
        scale: float,
        braided: bool,
        perfect: bool,
        internal_limit: int,
        predictor: str,
        max_instructions: int,
    ) -> Tuple:
        return (
            "workload",
            CACHE_FORMAT_VERSION,
            benchmark,
            scale,
            braided,
            perfect,
            internal_limit,
            predictor,
            max_instructions,
        )

    @staticmethod
    def compilation_key(benchmark: str, scale: float, internal_limit: int) -> Tuple:
        return ("compilation", CACHE_FORMAT_VERSION, benchmark, scale,
                internal_limit)
