"""Persistent on-disk cache for phase-one experiment artifacts.

Every fresh session used to recompute program generation, braid compilation,
functional traces, and predictor/cache oracles from scratch even though they
are pure functions of ``(benchmark, scale, perfect, internal_limit,
predictor, max_instructions)``.  This module stores those artifacts
(:class:`~repro.sim.workload.PreparedWorkload`,
:class:`~repro.core.pipeline.BraidCompilation`) as pickles under a cache
directory so repeated bench runs skip phase one entirely.

Layout and knobs:

* the cache root is ``$REPRO_CACHE_DIR`` or ``~/.cache/repro``;
* ``$REPRO_NO_CACHE=1`` (or ``ArtifactCache(enabled=False)``, or the harness
  ``--no-cache`` flag) disables all reads and writes;
* ``$REPRO_CACHE_LIMIT_MB`` bounds the cache size: after every write the
  least-recently-used entries (reads touch mtime) are evicted until the
  total is back under the limit;
* ``python -m repro.harness cache-info`` / ``cache-clear`` inspect and wipe
  the store from the command line;
* every key embeds :data:`CACHE_FORMAT_VERSION` — bump it whenever the
  pickled artifact layout or the phase-one semantics change, and stale
  entries are simply never looked up again;
* unreadable or truncated entries are *quarantined* (moved aside into
  ``quarantine/`` for post-mortem, bounded to the newest few) and
  recomputed, so a crashed writer cannot poison later runs — each logs a
  one-line warning to stderr and is counted in ``stats()["corruptions"]``;
  writes go through a temp file plus ``os.replace`` so concurrent workers
  only ever see complete entries;
* LRU eviction is safe under concurrent writers: before unlinking, each
  candidate is re-checked against the scan — an entry republished or
  touched since the scan is skipped, so eviction can race a writer
  publishing the same slot without destroying the fresh entry
  (``stats()["evictions"]`` counts what was actually removed).

Besides phase-one artifacts the cache can hold finished timing results
(``result_key``), used by the opt-in ``REPRO_RESULT_CACHE`` knob; result
keys embed the machine configuration and the sampling configuration, so
exact and sampled runs of the same point never collide.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import sys
import tempfile
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

#: Bump when artifact pickles or phase-one semantics change shape.
#: v2: SimResult grew observability fields (cpi_stack, metrics).
#: v3: SimResult grew the fidelity field; result keys carry a fidelity
#: token so exact/sampled/interval runs of one point never collide.
#: v4: core registry landed (blockooo paradigm, registry-ordered
#: sweeps), so cached experiment tables can change column sets.
CACHE_FORMAT_VERSION = 4

_ENV_DIR = "REPRO_CACHE_DIR"
_ENV_DISABLE = "REPRO_NO_CACHE"
_ENV_LIMIT = "REPRO_CACHE_LIMIT_MB"

#: ``*.tmp`` files older than this are orphans from a killed writer; a
#: younger one may belong to a concurrently-running worker, so leave it.
_ORPHAN_TMP_AGE_SECONDS = 3600.0

#: corrupt entries kept aside for post-mortem; older ones are dropped
_QUARANTINE_KEEP = 32


def default_cache_dir() -> Path:
    """Resolve the cache root from ``REPRO_CACHE_DIR`` (or ``~/.cache/repro``)."""
    env = os.environ.get(_ENV_DIR, "").strip()
    if env:
        return Path(env).expanduser()
    return Path.home() / ".cache" / "repro"


def cache_disabled_by_env() -> bool:
    value = os.environ.get(_ENV_DISABLE, "").strip().lower()
    return value not in ("", "0", "false", "no")


def cache_limit_from_env() -> Optional[int]:
    """Size bound in bytes from ``REPRO_CACHE_LIMIT_MB`` (None: unbounded)."""
    value = os.environ.get(_ENV_LIMIT, "").strip()
    if not value:
        return None
    try:
        megabytes = float(value)
    except ValueError:
        raise ValueError(
            f"{_ENV_LIMIT} must be a number of megabytes, got {value!r}"
        ) from None
    if megabytes <= 0:
        raise ValueError(f"{_ENV_LIMIT} must be positive, got {value!r}")
    return int(megabytes * 1024 * 1024)


class ArtifactCache:
    """Content-addressed pickle store for phase-one artifacts."""

    def __init__(
        self,
        root: Optional[Path] = None,
        enabled: bool = True,
        limit_bytes: Optional[int] = None,
    ) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()
        self.enabled = enabled
        self.limit_bytes = limit_bytes
        self.hits = 0
        self.misses = 0
        self.corruptions = 0
        #: entries removed by the LRU bound (this process)
        self.evictions = 0
        #: corrupt entries moved into ``quarantine/`` (this process)
        self.quarantined = 0
        #: stale ``*.tmp`` orphans removed when this cache was opened
        self.tmp_swept = 0
        if self.enabled:
            self.tmp_swept = self._sweep_orphans()

    @classmethod
    def from_env(cls) -> "ArtifactCache":
        return cls(
            enabled=not cache_disabled_by_env(),
            limit_bytes=cache_limit_from_env(),
        )

    def _sweep_orphans(self) -> int:
        """Remove stale ``*.tmp`` files a killed writer left behind.

        :meth:`put` writes through a temp file plus ``os.replace``; a
        worker killed mid-write (OOM, SIGKILL, fault-campaign watchdog)
        orphans its temp file forever.  Swept on open rather than lazily
        so the count is visible in :meth:`stats` before any access.
        """
        removed = 0
        try:
            now = time.time()
            for path in self.root.glob("*.tmp"):
                try:
                    if now - path.stat().st_mtime >= _ORPHAN_TMP_AGE_SECONDS:
                        path.unlink()
                        removed += 1
                except OSError:
                    continue
        except OSError:
            pass
        return removed

    # ------------------------------------------------------------------ paths
    @staticmethod
    def _digest(key: Tuple) -> str:
        return hashlib.sha256(repr(key).encode("utf-8")).hexdigest()

    def path_for(self, key: Tuple) -> Path:
        """File that stores ``key`` (first element names the artifact kind)."""
        return self.root / f"{key[0]}-{self._digest(key)}.pkl"

    # -------------------------------------------------------------------- api
    def get(self, key: Tuple) -> Optional[Any]:
        """The cached artifact, or None on a miss (corrupt entries evicted)."""
        if not self.enabled:
            return None
        path = self.path_for(key)
        try:
            with open(path, "rb") as handle:
                value = pickle.load(handle)
        except FileNotFoundError:
            self.misses += 1
            return None
        except Exception as error:
            # Truncated/incompatible pickle: quarantine so the slot heals
            # itself — but never silently, so a recurring corruption (bad
            # disk, two incompatible checkouts sharing one cache dir)
            # stays visible *and* inspectable post-mortem.
            self.misses += 1
            self.corruptions += 1
            print(
                f"[repro.harness] warning: quarantining corrupt cache "
                f"entry {path.name} ({type(error).__name__}: {error})",
                file=sys.stderr,
            )
            self._quarantine(path)
            return None
        self.hits += 1
        try:
            # Touch so the LRU bound evicts cold entries, not hot ones.
            os.utime(path, None)
        except OSError:
            pass
        return value

    def put(self, key: Tuple, value: Any) -> None:
        """Store ``value`` atomically; failures are silent (cache is advisory)."""
        if not self.enabled:
            return
        path = self.path_for(key)
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(
                dir=str(self.root), prefix=path.name, suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "wb") as handle:
                    pickle.dump(value, handle, protocol=pickle.HIGHEST_PROTOCOL)
                os.replace(tmp_name, path)
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
            if self.limit_bytes is not None:
                self.enforce_limit()
        except OSError:
            pass

    def _quarantine(self, path: Path) -> None:
        """Move a corrupt entry aside (atomic rename) instead of deleting.

        The slot becomes a miss either way; keeping the bytes makes a
        recurring corruption debuggable.  The quarantine directory is
        bounded: only the newest :data:`_QUARANTINE_KEEP` stay.
        """
        quarantine = self.root / "quarantine"
        try:
            quarantine.mkdir(parents=True, exist_ok=True)
            os.replace(path, quarantine / path.name)
            self.quarantined += 1
        except OSError:
            # Fall back to plain eviction (e.g. quarantine on another fs).
            try:
                path.unlink()
            except OSError:
                pass
            return
        try:
            kept = sorted(
                quarantine.glob("*.pkl"),
                key=lambda p: p.stat().st_mtime,
                reverse=True,
            )
            for stale in kept[_QUARANTINE_KEEP:]:
                stale.unlink()
        except OSError:
            pass

    # ------------------------------------------------------------- management
    def entries(self) -> List[Tuple[Path, int, float]]:
        """Every cache entry as ``(path, size_bytes, mtime)``."""
        found = []
        try:
            for path in self.root.glob("*.pkl"):
                stat = path.stat()
                found.append((path, stat.st_size, stat.st_mtime))
        except OSError:
            pass
        return found

    def stats(self) -> Dict[str, Any]:
        """Entry counts and sizes, grouped by artifact kind."""
        entries = self.entries()
        by_kind: Dict[str, Dict[str, int]] = {}
        for path, size, _ in entries:
            kind = path.name.split("-", 1)[0]
            bucket = by_kind.setdefault(kind, {"entries": 0, "bytes": 0})
            bucket["entries"] += 1
            bucket["bytes"] += size
        return {
            "root": str(self.root),
            "enabled": self.enabled,
            "entries": len(entries),
            "bytes": sum(size for _, size, _ in entries),
            "limit_bytes": self.limit_bytes,
            "corruptions": self.corruptions,
            "evictions": self.evictions,
            "quarantined": self.quarantined,
            "tmp_swept": self.tmp_swept,
            "by_kind": by_kind,
        }

    def publish_metrics(self, registry, prefix: str = "cache") -> None:
        """Surface the cache counters through a ``MetricsRegistry``."""
        registry.counter(f"{prefix}.hits", self.hits)
        registry.counter(f"{prefix}.misses", self.misses)
        registry.counter(f"{prefix}.corruptions", self.corruptions)
        registry.counter(f"{prefix}.evictions", self.evictions)
        registry.counter(f"{prefix}.quarantined", self.quarantined)
        registry.counter(f"{prefix}.tmp_swept", self.tmp_swept)

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for path, _, _ in self.entries():
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def enforce_limit(self, limit_bytes: Optional[int] = None) -> int:
        """Evict least-recently-used entries until under the size bound.

        Returns the number of entries evicted.  No-op when neither the
        argument nor ``self.limit_bytes`` gives a bound.
        """
        bound = limit_bytes if limit_bytes is not None else self.limit_bytes
        if bound is None:
            return 0
        entries = self.entries()
        total = sum(size for _, size, _ in entries)
        evicted = 0
        # Oldest mtime first: reads touch entries, so this is LRU order.
        for path, size, scanned_mtime in sorted(
            entries, key=lambda item: item[2]
        ):
            if total <= bound:
                break
            # Re-check against the scan before removing: a concurrent
            # writer may have republished this slot (os.replace gives it
            # a fresh mtime), or a reader may have touched it.  Either
            # way it is no longer the cold entry the scan saw — skip it
            # rather than destroy a fresh artifact.
            try:
                current = path.stat()
            except OSError:
                continue  # already gone: someone else evicted it
            if current.st_mtime != scanned_mtime:
                continue
            try:
                path.unlink()
            except OSError:
                continue
            total -= size
            evicted += 1
            self.evictions += 1
        return evicted

    # ------------------------------------------------------------ key helpers
    @staticmethod
    def workload_key(
        benchmark: str,
        scale: float,
        braided: bool,
        perfect: bool,
        internal_limit: int,
        predictor: str,
        max_instructions: int,
    ) -> Tuple:
        return (
            "workload",
            CACHE_FORMAT_VERSION,
            benchmark,
            scale,
            braided,
            perfect,
            internal_limit,
            predictor,
            max_instructions,
        )

    @staticmethod
    def compilation_key(benchmark: str, scale: float, internal_limit: int) -> Tuple:
        return ("compilation", CACHE_FORMAT_VERSION, benchmark, scale,
                internal_limit)

    @staticmethod
    def result_key(
        benchmark: str,
        scale: float,
        braided: bool,
        perfect: bool,
        internal_limit: int,
        predictor: str,
        max_instructions: int,
        config: Any,
        sampling_token: Optional[Tuple] = None,
        fidelity_token: Optional[Tuple] = None,
    ) -> Tuple:
        """Key for a finished timing result (``REPRO_RESULT_CACHE``).

        ``config`` is the full :class:`~repro.sim.config.MachineConfig`
        (its dataclass repr is part of the digest, so any knob change is a
        new key); ``sampling_token`` distinguishes exact runs (``None``)
        from each sampled configuration, and ``fidelity_token`` (the
        resolved fidelity plus its tier config token) keeps the
        exact/sampled/interval tiers of one point apart.
        """
        return (
            "result",
            CACHE_FORMAT_VERSION,
            benchmark,
            scale,
            braided,
            perfect,
            internal_limit,
            predictor,
            max_instructions,
            config,
            sampling_token,
            fidelity_token,
        )
