"""Experiment context: caches programs, compilations, workloads, and runs.

Every figure sweeps many machine configurations over the same benchmarks, so
the expensive phase-one artifacts (program generation, braid compilation,
functional traces, branch/cache oracles) are computed once per benchmark and
shared.  Environment knobs:

* ``REPRO_BENCHMARKS`` — comma-separated benchmark names, ``quick`` (the
  four-program subset), or ``full`` (all 26; the default);
* ``REPRO_SCALE`` — dynamic-length multiplier (default 1.0).
"""

from __future__ import annotations

import os
from typing import Dict, Iterable, Optional, Tuple

from ..core.pipeline import BraidCompilation, braidify
from ..isa.program import Program
from ..sim.config import MachineConfig
from ..sim.results import SimResult
from ..sim.run import simulate
from ..sim.workload import PreparedWorkload, prepare_workload
from ..workloads.profiles import ALL_BENCHMARKS, FP_BENCHMARKS, INT_BENCHMARKS
from ..workloads.suite import QUICK_BENCHMARKS, build_program


def benchmarks_from_env(default: str = "full") -> Tuple[str, ...]:
    """Resolve the benchmark selection from ``REPRO_BENCHMARKS``."""
    value = os.environ.get("REPRO_BENCHMARKS", default).strip()
    if value == "full":
        return ALL_BENCHMARKS
    if value == "quick":
        return QUICK_BENCHMARKS
    names = tuple(name.strip() for name in value.split(",") if name.strip())
    unknown = [name for name in names if name not in ALL_BENCHMARKS]
    if unknown:
        raise ValueError(f"unknown benchmarks in REPRO_BENCHMARKS: {unknown}")
    return names


def scale_from_env(default: float = 1.0) -> float:
    """Resolve the dynamic-length multiplier from ``REPRO_SCALE``."""
    return float(os.environ.get("REPRO_SCALE", default))


class ExperimentContext:
    """Shared, cached state for one experiment session."""

    def __init__(
        self,
        benchmarks: Optional[Iterable[str]] = None,
        scale: Optional[float] = None,
        max_instructions: int = 60_000,
    ) -> None:
        self.benchmarks: Tuple[str, ...] = (
            tuple(benchmarks) if benchmarks is not None else benchmarks_from_env()
        )
        self.scale = scale if scale is not None else scale_from_env()
        self.max_instructions = max_instructions
        self._programs: Dict[str, Program] = {}
        self._compilations: Dict[Tuple[str, int], BraidCompilation] = {}
        self._workloads: Dict[Tuple[str, bool, bool, int], PreparedWorkload] = {}

    def suite_of(self, name: str) -> str:
        if name in INT_BENCHMARKS:
            return "int"
        if name in FP_BENCHMARKS:
            return "fp"
        return "kernel"

    # ------------------------------------------------------------------ caches
    def program(self, name: str) -> Program:
        if name not in self._programs:
            self._programs[name] = build_program(name, scale=self.scale)
        return self._programs[name]

    def compilation(self, name: str, internal_limit: int = 8) -> BraidCompilation:
        key = (name, internal_limit)
        if key not in self._compilations:
            self._compilations[key] = braidify(
                self.program(name), internal_limit=internal_limit
            )
        return self._compilations[key]

    def workload(
        self,
        name: str,
        braided: bool = False,
        perfect: bool = False,
        internal_limit: int = 8,
    ) -> PreparedWorkload:
        key = (name, braided, perfect, internal_limit)
        if key not in self._workloads:
            program = (
                self.compilation(name, internal_limit).translated
                if braided
                else self.program(name)
            )
            self._workloads[key] = prepare_workload(
                program,
                perfect=perfect,
                max_instructions=self.max_instructions,
            )
        return self._workloads[key]

    # -------------------------------------------------------------------- runs
    def run(
        self,
        name: str,
        config: MachineConfig,
        braided: bool = False,
        perfect: bool = False,
        internal_limit: int = 8,
    ) -> SimResult:
        workload = self.workload(
            name, braided=braided, perfect=perfect, internal_limit=internal_limit
        )
        return simulate(workload, config)
