"""Experiment context: caches programs, compilations, workloads, and runs.

Every figure sweeps many machine configurations over the same benchmarks, so
the expensive phase-one artifacts (program generation, braid compilation,
functional traces, branch/cache oracles) are computed once per benchmark and
shared — in memory within a session, and across sessions through the
persistent :class:`~repro.harness.artifacts.ArtifactCache`.  Timing results
themselves are memoized per sweep point, so figures that share points (e.g.
the 8-wide out-of-order baseline used by F5/F9–F14) simulate them once.

Environment knobs:

* ``REPRO_BENCHMARKS`` — comma-separated benchmark names, ``quick`` (the
  four-program subset), ``int`` / ``fp`` (one SPEC suite), or ``full``
  (all 26; the default);
* ``REPRO_SCALE`` — dynamic-length multiplier (default 1.0);
* ``REPRO_JOBS`` — worker processes for sweeps (default: CPU count);
* ``REPRO_SAMPLE`` — interval-sampled timing simulation: unset/``off`` is
  exact mode (the default), ``1``/``default`` enables sampling with the
  default :class:`~repro.sim.sampling.SamplingConfig`, and a spec like
  ``stride=16,warmup=512`` tunes it;
* ``REPRO_FIDELITY`` — explicit fidelity tier for every timing run:
  ``exact``, ``sampled``, or ``interval`` (the analytic tier); unset keeps
  the legacy rule (sampled when a sampling config is active, else exact);
* ``REPRO_INTERVAL`` — tuning spec for the interval tier, e.g.
  ``windows=8,window=500,bound=10``
  (see :class:`~repro.sim.interval.IntervalConfig`);
* ``REPRO_RESULT_CACHE`` — opt-in persistence of finished timing results
  (keyed by machine and sampling configuration) in the artifact cache;
* ``REPRO_CACHE_DIR`` / ``REPRO_NO_CACHE`` / ``REPRO_CACHE_LIMIT_MB`` —
  persistent artifact cache location / kill switch / LRU size bound.
"""

from __future__ import annotations

import os
import time
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.pipeline import BraidCompilation, braidify
from ..isa.program import Program
from ..sim.config import MachineConfig
from ..sim.interval import IntervalConfig, interval_from_env
from ..sim.results import SimResult
from ..sim.run import FIDELITIES, simulate
from ..sim.sampling import SamplingConfig, sampling_from_env
from ..sim.workload import PreparedWorkload, prepare_workload
from ..obs.metrics import MetricsRegistry
from ..obs.runlog import RunLog
from ..workloads.profiles import ALL_BENCHMARKS, FP_BENCHMARKS, INT_BENCHMARKS
from ..workloads.suite import QUICK_BENCHMARKS, build_program
from .artifacts import ArtifactCache
from .parallel import (
    effective_jobs,
    jobs_from_env,
    run_point_groups_parallel,
)
from .sweep import SweepPoint

_ENV_RESULT_CACHE = "REPRO_RESULT_CACHE"
_ENV_FIDELITY = "REPRO_FIDELITY"


def result_cache_from_env() -> bool:
    """Resolve the timing-result persistence opt-in (``REPRO_RESULT_CACHE``)."""
    value = os.environ.get(_ENV_RESULT_CACHE, "").strip().lower()
    return value not in ("", "0", "false", "no", "off")


def fidelity_from_env() -> Optional[str]:
    """Resolve ``REPRO_FIDELITY``: unset/``auto`` keeps the legacy rule."""
    value = os.environ.get(_ENV_FIDELITY, "").strip().lower()
    if not value or value == "auto":
        return None
    if value not in FIDELITIES:
        raise ValueError(
            f"{_ENV_FIDELITY} must be one of {FIDELITIES} (or 'auto'), "
            f"got {value!r}"
        )
    return value


def benchmarks_from_env(default: str = "full") -> Tuple[str, ...]:
    """Resolve the benchmark selection from ``REPRO_BENCHMARKS``.

    Accepts ``full`` (all 26), ``quick`` (the four-program subset), the
    suite selectors ``int`` / ``fp``, or an explicit comma-separated list.
    """
    value = os.environ.get("REPRO_BENCHMARKS", default).strip()
    if value == "full":
        return ALL_BENCHMARKS
    if value == "quick":
        return QUICK_BENCHMARKS
    if value == "int":
        return INT_BENCHMARKS
    if value == "fp":
        return FP_BENCHMARKS
    names = tuple(name.strip() for name in value.split(",") if name.strip())
    unknown = [name for name in names if name not in ALL_BENCHMARKS]
    if unknown:
        raise ValueError(f"unknown benchmarks in REPRO_BENCHMARKS: {unknown}")
    return names


def scale_from_env(default: float = 1.0) -> float:
    """Resolve the dynamic-length multiplier from ``REPRO_SCALE``."""
    value = os.environ.get("REPRO_SCALE", "").strip()
    if not value:
        return default
    try:
        return float(value)
    except ValueError:
        raise ValueError(
            f"REPRO_SCALE must be a number (dynamic-length multiplier), "
            f"got {value!r}"
        ) from None


class ExperimentContext:
    """Shared, cached state for one experiment session."""

    #: branch predictor trained by phase one (part of every artifact key)
    predictor = "perceptron"

    def __init__(
        self,
        benchmarks: Optional[Iterable[str]] = None,
        scale: Optional[float] = None,
        max_instructions: int = 60_000,
        jobs: Optional[int] = None,
        cache: Optional[ArtifactCache] = None,
        sampling: Optional[SamplingConfig] = None,
        result_cache: Optional[bool] = None,
        fidelity: Optional[str] = None,
        interval: Optional[IntervalConfig] = None,
    ) -> None:
        self.benchmarks: Tuple[str, ...] = (
            tuple(benchmarks) if benchmarks is not None else benchmarks_from_env()
        )
        self.scale = scale if scale is not None else scale_from_env()
        self.max_instructions = max_instructions
        self.jobs = jobs if jobs is not None else jobs_from_env()
        self.cache = cache if cache is not None else ArtifactCache.from_env()
        #: None simulates every instruction; a SamplingConfig switches all
        #: timing runs of this context to interval-sampled estimation.
        self.sampling = sampling if sampling is not None else sampling_from_env()
        self.result_cache = (
            result_cache if result_cache is not None else result_cache_from_env()
        )
        #: explicit fidelity tier for every timing run (None: legacy rule —
        #: sampled when a sampling config is active, exact otherwise)
        self.fidelity = fidelity if fidelity is not None else fidelity_from_env()
        #: tuning for the analytic interval tier (used when the effective
        #: fidelity is "interval")
        self.interval = interval if interval is not None else interval_from_env()
        #: harness-level telemetry (run_many dedup/memoization counters)
        self.telemetry = MetricsRegistry()
        #: structured JSONL sweep telemetry (REPRO_RUNLOG; defaults to a
        #: runlog.jsonl next to the artifact cache when that is enabled)
        self.runlog = RunLog.from_env(self.cache)
        self._programs: Dict[str, Program] = {}
        self._compilations: Dict[Tuple[str, int], BraidCompilation] = {}
        self._workloads: Dict[Tuple[str, bool, bool, int], PreparedWorkload] = {}
        self._results: Dict[SweepPoint, SimResult] = {}

    def suite_of(self, name: str) -> str:
        if name in INT_BENCHMARKS:
            return "int"
        if name in FP_BENCHMARKS:
            return "fp"
        return "kernel"

    # ------------------------------------------------------------------ caches
    def program(self, name: str) -> Program:
        if name not in self._programs:
            self._programs[name] = build_program(name, scale=self.scale)
        return self._programs[name]

    def compilation(self, name: str, internal_limit: int = 8) -> BraidCompilation:
        key = (name, internal_limit)
        if key not in self._compilations:
            disk_key = self.cache.compilation_key(name, self.scale, internal_limit)
            compilation = self.cache.get(disk_key)
            if compilation is None:
                compilation = braidify(
                    self.program(name), internal_limit=internal_limit
                )
                self.cache.put(disk_key, compilation)
            self._compilations[key] = compilation
        return self._compilations[key]

    def workload(
        self,
        name: str,
        braided: bool = False,
        perfect: bool = False,
        internal_limit: int = 8,
    ) -> PreparedWorkload:
        key = (name, braided, perfect, internal_limit)
        if key not in self._workloads:
            disk_key = self.cache.workload_key(
                name, self.scale, braided, perfect, internal_limit,
                self.predictor, self.max_instructions,
            )
            workload = self.cache.get(disk_key)
            if workload is None:
                program = (
                    self.compilation(name, internal_limit).translated
                    if braided
                    else self.program(name)
                )
                workload = prepare_workload(
                    program,
                    predictor=self.predictor,
                    perfect=perfect,
                    max_instructions=self.max_instructions,
                )
                # Decode before storing so warm sessions skip that pass too.
                workload.decode()
                self.cache.put(disk_key, workload)
            self._workloads[key] = workload
        return self._workloads[key]

    # -------------------------------------------------------------------- runs
    @property
    def effective_fidelity(self) -> str:
        """The tier every timing run of this context actually uses."""
        if self.fidelity is not None:
            return self.fidelity
        return "sampled" if self.sampling is not None else "exact"

    def _fidelity_token(self) -> Tuple:
        """Cache-key component identifying the resolved fidelity tier."""
        mode = self.effective_fidelity
        if mode == "interval":
            return self.interval.cache_token()
        return (mode,)

    def run(
        self,
        name: str,
        config: MachineConfig,
        braided: bool = False,
        perfect: bool = False,
        internal_limit: int = 8,
        progress=None,
    ) -> SimResult:
        point = SweepPoint(name, config, braided, perfect, internal_limit)
        result = self._results.get(point)
        if result is None:
            started = time.perf_counter()
            hits_before = self.cache.hits
            misses_before = self.cache.misses
            disk_key = None
            result_cache_hit = False
            if self.result_cache:
                disk_key = self.cache.result_key(
                    name, self.scale, braided, perfect, internal_limit,
                    self.predictor, self.max_instructions, config,
                    self.sampling.cache_token()
                    if self.sampling is not None else None,
                    self._fidelity_token(),
                )
                result = self.cache.get(disk_key)
                result_cache_hit = result is not None
            if result is None:
                workload = self.workload(
                    name, braided=braided, perfect=perfect,
                    internal_limit=internal_limit,
                )
                result = simulate(
                    workload, config, sampling=self.sampling,
                    fidelity=self.fidelity, interval=self.interval,
                    progress=progress,
                )
                if disk_key is not None:
                    self.cache.put(disk_key, result)
            self._results[point] = result
            self.runlog.log(
                event="cell",
                benchmark=name,
                machine=config.name,
                braided=braided,
                perfect=perfect,
                internal_limit=internal_limit,
                sampled=result.sampled,
                fidelity=result.fidelity,
                sample_intervals=result.sample_intervals,
                sample_detail_fraction=result.extra.get(
                    "sample_detail_fraction", 0.0
                ),
                cycles=result.cycles,
                instructions=result.instructions,
                ipc=round(result.ipc, 4),
                seconds=round(time.perf_counter() - started, 4),
                result_cache_hit=result_cache_hit,
                artifact_hits=self.cache.hits - hits_before,
                artifact_misses=self.cache.misses - misses_before,
            )
        return result

    def run_many(
        self, points: Sequence[SweepPoint]
    ) -> Dict[SweepPoint, SimResult]:
        """Simulate a batch of sweep points, deduplicated and memoized.

        Identical requests — same (workload, config, sampling, fidelity)
        — coalesce to one simulation; the context-wide sampling/fidelity
        settings make point identity sufficient.  Coalesced and
        already-memoized requests are counted in the context's telemetry
        registry (``run_many.deduped`` / ``run_many.memoized``).

        The fresh points are scheduled *workload-major*: all configs of
        one prepared workload run together (see :mod:`repro.sim.batch`),
        so the shared decode/replay facts are built once per workload —
        per worker — instead of once per point.  With ``jobs > 1`` the
        workload groups fan out over the process pool (deterministic,
        submission-ordered results; large groups split to keep every
        worker busy); with ``jobs = 1`` they run serially in-process,
        exactly like :meth:`run`.  The requested worker count is clamped
        to the pending work and falls back to the serial path on
        single-CPU hosts (see :func:`~repro.harness.parallel.effective_jobs`).
        """
        fresh: List[SweepPoint] = []
        seen = set()
        deduped = 0
        memoized = 0
        for point in points:
            if point in self._results:
                memoized += 1
                continue
            if point in seen:
                deduped += 1
                continue
            seen.add(point)
            fresh.append(point)
        if deduped:
            self.telemetry.counter("run_many.deduped", deduped)
        if memoized:
            self.telemetry.counter("run_many.memoized", memoized)
        groups: Dict[Tuple[str, bool, bool, int], List[SweepPoint]] = {}
        for point in fresh:
            key = (
                point.benchmark, point.braided, point.perfect,
                point.internal_limit,
            )
            groups.setdefault(key, []).append(point)
        tasks: List[List[SweepPoint]] = list(groups.values())
        workers = effective_jobs(self.jobs, len(fresh))
        # Few workloads but many configs would idle most of the pool at
        # group granularity; split the largest groups (still workload-
        # major within each task) until every worker has work.
        while tasks and len(tasks) < workers:
            largest = max(range(len(tasks)), key=lambda i: len(tasks[i]))
            group = tasks[largest]
            if len(group) < 2:
                break
            half = len(group) // 2
            tasks[largest:largest + 1] = [group[:half], group[half:]]
        if workers > 1 and len(tasks) > 1:
            for group, results in zip(
                tasks, run_point_groups_parallel(self, tasks, workers)
            ):
                for point, result in zip(group, results):
                    self._results[point] = result
        else:
            for group in tasks:
                for point in group:
                    self.run(
                        point.benchmark,
                        point.config,
                        braided=point.braided,
                        perfect=point.perfect,
                        internal_limit=point.internal_limit,
                    )
        return {point: self._results[point] for point in points}
