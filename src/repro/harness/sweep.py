"""Declarative sweep points: the unit of work every figure is made of.

A paper figure is a grid of timing simulations: rows are benchmarks, columns
are machine-configuration sweep values, and each cell is the IPC of one
``(benchmark, config, braided, perfect, internal_limit)`` point, often
normalized to another point (the paper's 8-wide out-of-order baseline, or
the leftmost column).  Expressing figures as :class:`Cell` grids instead of
nested ``ctx.run`` loops lets one driver — :func:`sweep_experiment` — batch
every point of a figure through :meth:`ExperimentContext.run_many`, which
deduplicates shared points and fans the rest out over the worker pool.  No
figure carries its own parallelism or caching code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

from ..sim.config import MachineConfig
from .reporting import ExperimentResult, normalize_rows


@dataclass(frozen=True)
class SweepPoint:
    """One timing simulation: a benchmark replayed on one machine config."""

    benchmark: str
    config: MachineConfig
    braided: bool = False
    perfect: bool = False
    internal_limit: int = 8


@dataclass(frozen=True)
class Cell:
    """One figure cell: a sweep point, optionally normalized to a baseline.

    ``value = IPC(point)`` or ``IPC(point) / IPC(baseline)`` when a baseline
    point is given.  Baselines are ordinary sweep points, so a baseline
    shared by many cells (or many figures) is simulated exactly once.
    """

    row: str
    column: str
    point: SweepPoint
    baseline: Optional[SweepPoint] = None


def sweep_experiment(
    ctx,
    *,
    experiment_id: str,
    title: str,
    paper_expectation: str,
    columns: Sequence[str],
    cells: Iterable[Cell],
    normalize_to: Optional[str] = None,
) -> ExperimentResult:
    """Run a figure expressed as a cell grid and render it as a result.

    All distinct points behind ``cells`` (baselines included) are handed to
    ``ctx.run_many`` in one batch — the single place where memoization, the
    persistent artifact cache, and the multiprocessing pool apply.
    """
    cells = list(cells)
    result = ExperimentResult(
        experiment_id=experiment_id,
        title=title,
        paper_expectation=paper_expectation,
        columns=list(columns),
    )
    points: List[SweepPoint] = []
    for cell in cells:
        points.append(cell.point)
        if cell.baseline is not None:
            points.append(cell.baseline)
    results = ctx.run_many(points)
    sampled = [r for r in results.values() if r.sampled]
    if sampled:
        worst_ci = max(
            r.ipc_ci95 / r.ipc if r.ipc else 0.0 for r in sampled
        )
        result.notes.append(
            f"{len(sampled)}/{len(results)} points interval-sampled; "
            f"worst IPC 95% CI ±{100 * worst_ci:.2f}%"
        )
    for cell in cells:
        value = results[cell.point].ipc
        if cell.baseline is not None:
            base = results[cell.baseline].ipc
            value = value / base if base else 0.0
        result.rows.setdefault(cell.row, {})[cell.column] = value
    if normalize_to is not None:
        normalize_rows(result, normalize_to)
    result.finalize_averages()
    return result
