"""Command-line experiment runner.

Regenerate any of the paper's tables/figures directly::

    python -m repro.harness F13 T1          # specific experiments
    python -m repro.harness all             # everything
    REPRO_BENCHMARKS=quick python -m repro.harness F9 F10
    python -m repro.harness F9 --scale 64 --sample stride=16   # sampled mode
    python -m repro.harness F9 --fidelity interval             # analytic mode
    python -m repro.harness cache-info      # persistent cache report
    python -m repro.harness cache-clear     # wipe the persistent cache

Experiment ids follow DESIGN.md section 3 (F1, VC, T1-T3, F5-F14, D1,
A1-A2).  ``--sample`` (or ``REPRO_SAMPLE``) switches the timing runs to
interval-sampled estimation; sampled figures carry a note with the worst
IPC confidence interval of their points.  ``--fidelity`` (or
``REPRO_FIDELITY``) picks the tier explicitly — ``exact``, ``sampled``,
or ``interval``, the cheapest analytic model, tunable via ``--interval``
(``REPRO_INTERVAL``).

``validate`` runs the differential validation sweep instead of an
experiment: every selected benchmark on every selected core under the
lockstep architectural oracle (plus the sampled engine when ``--sample``
is given, per-cycle invariants with ``--invariants``), then the
translator fuzzer::

    python -m repro.harness validate                       # quick suite
    python -m repro.harness validate --benchmarks gcc,mcf,swim
    python -m repro.harness validate --sample --invariants --fuzz 500

``faults`` runs a transient-fault injection campaign (:mod:`repro.faults`)
and prints the per-structure AVF figure; the campaign journals every
classified injection and ``--resume`` continues a killed campaign without
rerunning completed work::

    python -m repro.harness faults --cores braid,ooo --runs 32 --seed 7
    python -m repro.harness faults --structures rob,scheduler --jobs 4
    python -m repro.harness faults --resume

``trace`` records a cycle-level pipeline trace of one benchmark on one
core and writes it for a pipeline viewer — Konata text or Chrome
trace-event JSON (Perfetto / ``chrome://tracing``)::

    python -m repro.harness trace --bench gcc --core braid --format konata
    python -m repro.harness trace --bench mcf --core ooo --format chrome \
        --out mcf.trace.json

``submit`` / ``serve`` / ``status`` / ``events`` / ``metrics`` drive the
durable simulation service
(:mod:`repro.service`): submissions are journaled crash-safe, identical
requests dedup onto one run, and a supervisor schedules jobs onto the
hardened worker fleet with quotas and full SIGKILL recovery::

    python -m repro.harness submit simulate benchmark=gcc core=braid
    python -m repro.harness serve --jobs 4 --drain-when-idle
    python -m repro.harness status

``CS`` (an ordinary experiment id) prints CPI stall-attribution stacks;
``--format bars`` renders them as stacked bars.  ``--profile`` wraps the
run (workers included) in cProfile and prints an aggregated top-N report.
"""

from __future__ import annotations

import argparse
import sys
import time

from . import ALL_EXPERIMENTS, ExperimentContext

_CACHE_COMMANDS = ("cache-info", "cache-clear")


def _run_cache_command(command: str) -> None:
    from .artifacts import ArtifactCache

    cache = ArtifactCache.from_env()
    if command == "cache-info":
        stats = cache.stats()
        limit = stats["limit_bytes"]
        print(f"cache root:  {stats['root']}")
        print(f"enabled:     {stats['enabled']}")
        print(f"entries:     {stats['entries']}")
        print(f"total size:  {stats['bytes'] / 1e6:.1f} MB")
        print(f"size limit:  "
              f"{'none' if limit is None else f'{limit / 1e6:.1f} MB'}")
        for kind, bucket in sorted(stats["by_kind"].items()):
            print(f"  {kind:12s} {bucket['entries']:5d} entries  "
                  f"{bucket['bytes'] / 1e6:8.1f} MB")
    else:
        removed = cache.clear()
        print(f"removed {removed} cache entr{'y' if removed == 1 else 'ies'} "
              f"from {cache.root}")


def _run_validate(args, parser) -> int:
    """The ``validate`` command: differential validation sweep + fuzzing."""
    from ..validate import DEFAULT_CORES, run_validation
    from . import ExperimentContext
    from .artifacts import ArtifactCache

    sampling = None
    if args.sample is not None:
        from ..sim.sampling import SamplingConfig

        try:
            sampling = SamplingConfig.parse(args.sample)
        except ValueError as error:
            parser.error(f"--sample: {error}")

    if args.benchmarks in (None, "quick"):
        from ..workloads import QUICK_BENCHMARKS

        benchmarks = QUICK_BENCHMARKS
    elif args.benchmarks == "full":
        from ..workloads.profiles import ALL_BENCHMARKS

        benchmarks = ALL_BENCHMARKS
    else:
        benchmarks = tuple(
            name.strip() for name in args.benchmarks.split(",") if name.strip()
        )

    cores = DEFAULT_CORES
    if args.cores:
        cores = tuple(
            key.strip() for key in args.cores.split(",") if key.strip()
        )

    cache = ArtifactCache(enabled=False) if args.no_cache else None
    context = ExperimentContext(
        benchmarks=benchmarks, scale=args.scale, jobs=1, cache=cache,
    )
    try:
        report = run_validation(
            context,
            benchmarks,
            cores=cores,
            sampling=sampling,
            invariants=args.invariants,
            fuzz_samples=args.fuzz,
            fuzz_seed=args.fuzz_seed,
        )
    except ValueError as error:
        parser.error(str(error))
    print(report.render())
    return 0 if report.passed else 1


def _run_faults(args, parser) -> int:
    """The ``faults`` command: transient-fault injection campaign + AVF."""
    from pathlib import Path

    from ..faults import CampaignError, CampaignSpec, run_campaign
    from ..validate import DEFAULT_CORES
    from . import ExperimentContext
    from .artifacts import ArtifactCache
    from .parallel import jobs_from_env

    # Injection campaigns default to one small benchmark at a reduced
    # scale: each (structure, run) cell is a full simulation, so the grid
    # multiplies fast.
    if args.benchmarks in (None, "quick"):
        benchmarks = ("gcc",)
    elif args.benchmarks == "full":
        from ..workloads.profiles import ALL_BENCHMARKS

        benchmarks = ALL_BENCHMARKS
    else:
        benchmarks = tuple(
            name.strip() for name in args.benchmarks.split(",") if name.strip()
        )

    cores = DEFAULT_CORES
    if args.cores:
        cores = tuple(
            key.strip() for key in args.cores.split(",") if key.strip()
        )
    structures = None
    if args.structures:
        structures = tuple(
            name.strip() for name in args.structures.split(",") if name.strip()
        )

    scale = args.scale if args.scale is not None else 0.2
    jobs = args.jobs if args.jobs is not None else jobs_from_env()
    cache = ArtifactCache(enabled=False) if args.no_cache else None
    context = ExperimentContext(
        benchmarks=benchmarks, scale=scale, jobs=1, cache=cache,
    )
    spec = CampaignSpec(
        benchmarks=benchmarks,
        cores=cores,
        structures=structures,
        runs=args.runs,
        seed=args.seed,
        scale=scale,
        timeout=args.timeout,
        jobs=jobs,
    )
    journal_path = Path(args.journal) if args.journal else None
    started = time.time()
    try:
        report = run_campaign(
            context, spec, journal_path=journal_path, resume=args.resume,
        )
    except CampaignError as error:
        parser.error(str(error))
    print(report.render())
    # Timings and paths go to stderr: stdout is the deterministic
    # artifact the CI smoke job diffs across same-seed runs.
    print(
        f"[repro.harness] faults: {time.time() - started:.1f}s, journal at "
        f"{journal_path or 'cache default'}",
        file=sys.stderr,
    )
    return 0 if report.passed else 1


def _run_trace(args, parser) -> int:
    """The ``trace`` command: one observed run, exported for a viewer."""
    from pathlib import Path

    from ..obs import (
        Observer,
        chrome_schema_errors,
        export_chrome,
        export_konata,
    )
    from ..sim.run import simulate
    from ..validate import CORE_FACTORIES
    from . import ExperimentContext
    from .artifacts import ArtifactCache

    fmt = args.format if args.format in ("konata", "chrome") else "chrome"
    bench = args.bench
    core_key = args.core
    if core_key not in CORE_FACTORIES:
        parser.error(
            f"--core: unknown core {core_key!r}; "
            f"choose from {', '.join(sorted(CORE_FACTORIES))}"
        )
    sampling = None
    if args.sample is not None:
        from ..sim.sampling import SamplingConfig

        try:
            sampling = SamplingConfig.parse(args.sample)
        except ValueError as error:
            parser.error(f"--sample: {error}")

    cache = ArtifactCache(enabled=False) if args.no_cache else None
    context = ExperimentContext(
        benchmarks=(bench,), scale=args.scale, jobs=1, cache=cache,
    )
    factory, braided = CORE_FACTORIES[core_key]
    config = factory()
    try:
        workload = context.workload(bench, braided=braided)
    except KeyError:
        parser.error(f"--bench: unknown benchmark {bench!r}")
    observer = Observer(
        trace=True, cpi=True, metrics=True, trace_capacity=args.limit,
    )
    result = simulate(workload, config, sampling=sampling, observe=observer)

    records = observer.trace_records()
    suffix = "konata" if fmt == "konata" else "json"
    out = Path(args.out) if args.out else Path(
        f"trace-{bench}-{core_key}.{suffix}"
    )
    if fmt == "konata":
        out.write_text(export_konata(records), encoding="utf-8")
    else:
        import json

        doc = export_chrome(records, benchmark=bench, machine=config.name)
        errors = chrome_schema_errors(doc)
        if errors:
            print("trace export failed schema validation:", file=sys.stderr)
            for error in errors:
                print(f"  {error}", file=sys.stderr)
            return 1
        out.write_text(json.dumps(doc), encoding="utf-8")

    print(result.summary())
    dropped = int(result.extra.get("trace_dropped", 0))
    print(
        f"trace: {len(records)} instruction(s) -> {out} ({fmt})"
        + (f", {dropped} dropped by the {args.limit}-entry ring" if dropped
           else "")
    )
    if result.cpi_stack:
        instructions = result.instructions or 1
        stack = ", ".join(
            f"{cause}={value / instructions:.3f}"
            for cause, value in result.cpi_stack.items()
            if value > 0
        )
        print(f"cpi stack: {stack}")
    return 0


_SERVICE_COMMANDS = ("serve", "submit", "status", "events", "metrics")


def main(argv=None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    # Service subcommands have their own argument grammar (subparsers,
    # key=value params) — hand the whole line to the service CLI before
    # the experiment parser can misread it.
    if argv and argv[0] in _SERVICE_COMMANDS:
        from ..service.cli import main as service_main

        return service_main(argv)

    from ..sim.registry import core_keys

    registered = ",".join(core_keys())
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiments",
        nargs="+",
        help=f"experiment ids ({', '.join(ALL_EXPERIMENTS)}), 'all', "
             f"or a cache command ({', '.join(_CACHE_COMMANDS)})",
    )
    parser.add_argument(
        "--benchmarks",
        default=None,
        help="comma-separated benchmark names, 'quick', or 'full' "
             "(overrides REPRO_BENCHMARKS)",
    )
    parser.add_argument(
        "--scale", type=float, default=None,
        help="dynamic-length multiplier (overrides REPRO_SCALE)",
    )
    parser.add_argument(
        "--format",
        choices=("table", "bars", "series", "konata", "chrome"),
        default="table",
        help="output style: per-benchmark table (default), grouped bar "
             "chart, or compact suite-average series; for the trace "
             "command: konata or chrome (default chrome)",
    )
    parser.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes for timing sweeps (overrides REPRO_JOBS; "
             "default: CPU count; 1 runs everything in-process)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="skip the persistent artifact cache (REPRO_CACHE_DIR) entirely",
    )
    parser.add_argument(
        "--sample", nargs="?", const="default", default=None, metavar="SPEC",
        help="interval-sampled timing simulation (overrides REPRO_SAMPLE): "
             "bare --sample uses the default configuration, or pass a spec "
             "like stride=16,warmup=512,interval=500,seed=0",
    )
    parser.add_argument(
        "--fidelity", choices=("exact", "sampled", "interval"), default=None,
        help="fidelity tier for timing runs (overrides REPRO_FIDELITY): "
             "exact simulation, sampled estimation, or the analytic "
             "interval model; default: sampled when --sample is given, "
             "exact otherwise",
    )
    parser.add_argument(
        "--interval", nargs="?", const="default", default=None, metavar="SPEC",
        help="interval-tier tuning (overrides REPRO_INTERVAL), e.g. "
             "windows=8,window=500,warmup=512,seed=0,bound=10; implies "
             "--fidelity interval when no tier is named",
    )
    parser.add_argument(
        "--result-cache", action="store_true",
        help="also persist finished timing results in the artifact cache "
             "(overrides REPRO_RESULT_CACHE)",
    )
    parser.add_argument(
        "--cores", default=None, metavar="LIST",
        help="validate: comma-separated timing cores to check "
             f"(default: every registered core — {registered})",
    )
    parser.add_argument(
        "--invariants", action="store_true",
        help="validate: also run per-cycle µarch invariant checking "
             "(much slower)",
    )
    parser.add_argument(
        "--fuzz", type=int, default=200, metavar="N",
        help="validate: random programs for the translator fuzzer "
             "(default 200; 0 skips fuzzing)",
    )
    parser.add_argument(
        "--fuzz-seed", type=int, default=0, metavar="SEED",
        help="validate: deterministic seed for the translator fuzzer",
    )
    parser.add_argument(
        "--runs", type=int, default=32, metavar="N",
        help="faults: injections per (benchmark, core, structure) cell "
             "(default 32)",
    )
    parser.add_argument(
        "--structures", default=None, metavar="LIST",
        help="faults: comma-separated structures to inject into "
             "(default: every structure of each selected core)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, metavar="SEED",
        help="faults: campaign seed; same-seed campaigns classify "
             "bit-identically",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="faults: resume from the campaign journal, skipping "
             "completed injections",
    )
    parser.add_argument(
        "--journal", default=None, metavar="PATH",
        help="faults: journal file (default: a digest-named file under "
             "the artifact cache, so --resume finds it automatically)",
    )
    parser.add_argument(
        "--timeout", type=float, default=120.0, metavar="SECONDS",
        help="faults: per-injection wall-clock budget before the "
             "hardened runner kills the worker (default 120)",
    )
    parser.add_argument(
        "--bench", default="gcc", metavar="NAME",
        help="trace: the benchmark to record (default gcc)",
    )
    parser.add_argument(
        "--core", default="braid", metavar="KIND",
        help="trace: the timing core to record "
             f"({registered}; default braid)",
    )
    parser.add_argument(
        "--out", default=None, metavar="PATH",
        help="trace: output file (default trace-<bench>-<core>.<ext>)",
    )
    parser.add_argument(
        "--limit", type=int, default=20000, metavar="N",
        help="trace: ring-buffer capacity in instructions; older "
             "instructions are dropped beyond this (default 20000)",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="wrap the run (worker processes included) in cProfile and "
             "print an aggregated top-N report to stderr",
    )
    args = parser.parse_args(argv)

    if args.jobs is not None and args.jobs < 1:
        parser.error("--jobs must be >= 1")

    cache_commands = [e for e in args.experiments if e in _CACHE_COMMANDS]
    if cache_commands:
        if len(cache_commands) != len(args.experiments):
            parser.error(
                "cache commands cannot be mixed with experiment ids"
            )
        for command in cache_commands:
            _run_cache_command(command)
        return 0

    if "validate" in args.experiments:
        if args.experiments != ["validate"]:
            parser.error(
                "'validate' cannot be mixed with experiment ids"
            )
        return _run_validate(args, parser)

    if "faults" in args.experiments:
        if args.experiments != ["faults"]:
            parser.error(
                "'faults' cannot be mixed with experiment ids"
            )
        return _run_faults(args, parser)

    if "trace" in args.experiments:
        if args.experiments != ["trace"]:
            parser.error(
                "'trace' cannot be mixed with experiment ids"
            )
        return _run_trace(args, parser)

    selected = list(ALL_EXPERIMENTS) if "all" in args.experiments else []
    for experiment_id in args.experiments:
        if experiment_id == "all":
            continue
        if experiment_id not in ALL_EXPERIMENTS:
            parser.error(
                f"unknown experiment {experiment_id!r}; "
                f"choose from {', '.join(ALL_EXPERIMENTS)} or 'all'"
            )
        selected.append(experiment_id)

    sampling = None
    if args.sample is not None:
        from ..sim.sampling import SamplingConfig

        try:
            sampling = SamplingConfig.parse(args.sample)
        except ValueError as error:
            parser.error(f"--sample: {error}")

    interval = None
    if args.interval is not None:
        from ..sim.interval import IntervalConfig

        try:
            interval = IntervalConfig.parse(args.interval)
        except ValueError as error:
            parser.error(f"--interval: {error}")
    fidelity = args.fidelity
    if fidelity is None and interval is not None:
        fidelity = "interval"

    benchmarks = None
    if args.benchmarks == "quick":
        from ..workloads import QUICK_BENCHMARKS

        benchmarks = QUICK_BENCHMARKS
    elif args.benchmarks and args.benchmarks != "full":
        benchmarks = tuple(
            name.strip() for name in args.benchmarks.split(",") if name.strip()
        )

    from .figures import render_bars, render_series, render_stacked

    renderers = {
        "table": lambda result: result.render(),
        "bars": lambda result: (
            render_stacked(result) if getattr(result, "stacked", False)
            else render_bars(result)
        ),
        "series": render_series,
    }
    if args.format not in renderers:
        parser.error(
            f"--format {args.format} only applies to the trace command"
        )
    render = renderers[args.format]

    from .artifacts import ArtifactCache

    cache = ArtifactCache(enabled=False) if args.no_cache else None
    context = ExperimentContext(
        benchmarks=benchmarks, scale=args.scale, jobs=args.jobs, cache=cache,
        sampling=sampling, result_cache=True if args.result_cache else None,
        fidelity=fidelity, interval=interval,
    )

    profile_tmp = None
    if args.profile:
        import os
        import tempfile

        from ..obs.profiling import ENV_PROFILE_DIR

        profile_tmp = tempfile.TemporaryDirectory(prefix="repro-profile-")
        # Workers inherit the environment at fork time, so exporting here
        # covers the whole sweep, pool included.
        os.environ[ENV_PROFILE_DIR] = profile_tmp.name
    try:
        from ..obs.profiling import maybe_profiled

        for experiment_id in selected:
            started = time.time()
            result = maybe_profiled(
                lambda: ALL_EXPERIMENTS[experiment_id](context)
            )
            print(render(result))
            print(f"   [{time.time() - started:.1f}s]")
            print()
        if profile_tmp is not None:
            from ..obs.profiling import aggregate_profiles

            print(aggregate_profiles(profile_tmp.name), file=sys.stderr)
    finally:
        if profile_tmp is not None:
            import os

            os.environ.pop(ENV_PROFILE_DIR, None)
            profile_tmp.cleanup()
    return 0


if __name__ == "__main__":
    sys.exit(main())
