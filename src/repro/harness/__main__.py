"""Command-line experiment runner.

Regenerate any of the paper's tables/figures directly::

    python -m repro.harness F13 T1          # specific experiments
    python -m repro.harness all             # everything
    REPRO_BENCHMARKS=quick python -m repro.harness F9 F10

Experiment ids follow DESIGN.md section 3 (F1, VC, T1-T3, F5-F14, D1,
A1-A2).
"""

from __future__ import annotations

import argparse
import sys
import time

from . import ALL_EXPERIMENTS, ExperimentContext


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiments",
        nargs="+",
        help=f"experiment ids ({', '.join(ALL_EXPERIMENTS)}) or 'all'",
    )
    parser.add_argument(
        "--benchmarks",
        default=None,
        help="comma-separated benchmark names, 'quick', or 'full' "
             "(overrides REPRO_BENCHMARKS)",
    )
    parser.add_argument(
        "--scale", type=float, default=None,
        help="dynamic-length multiplier (overrides REPRO_SCALE)",
    )
    parser.add_argument(
        "--format", choices=("table", "bars", "series"), default="table",
        help="output style: per-benchmark table (default), grouped bar "
             "chart, or compact suite-average series",
    )
    parser.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes for timing sweeps (overrides REPRO_JOBS; "
             "default: CPU count; 1 runs everything in-process)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="skip the persistent artifact cache (REPRO_CACHE_DIR) entirely",
    )
    args = parser.parse_args(argv)

    if args.jobs is not None and args.jobs < 1:
        parser.error("--jobs must be >= 1")

    selected = list(ALL_EXPERIMENTS) if "all" in args.experiments else []
    for experiment_id in args.experiments:
        if experiment_id == "all":
            continue
        if experiment_id not in ALL_EXPERIMENTS:
            parser.error(
                f"unknown experiment {experiment_id!r}; "
                f"choose from {', '.join(ALL_EXPERIMENTS)} or 'all'"
            )
        selected.append(experiment_id)

    benchmarks = None
    if args.benchmarks == "quick":
        from ..workloads import QUICK_BENCHMARKS

        benchmarks = QUICK_BENCHMARKS
    elif args.benchmarks and args.benchmarks != "full":
        benchmarks = tuple(
            name.strip() for name in args.benchmarks.split(",") if name.strip()
        )

    from .figures import render_bars, render_series

    renderers = {
        "table": lambda result: result.render(),
        "bars": render_bars,
        "series": render_series,
    }
    render = renderers[args.format]

    from .artifacts import ArtifactCache

    cache = ArtifactCache(enabled=False) if args.no_cache else None
    context = ExperimentContext(
        benchmarks=benchmarks, scale=args.scale, jobs=args.jobs, cache=cache,
    )
    for experiment_id in selected:
        started = time.time()
        result = ALL_EXPERIMENTS[experiment_id](context)
        print(render(result))
        print(f"   [{time.time() - started:.1f}s]")
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
