"""Experiment result containers and table rendering."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class ExperimentResult:
    """One regenerated table or figure.

    ``rows`` maps benchmark -> {column label -> value}; ``averages`` holds
    the suite-level summary the paper quotes in its prose.
    """

    experiment_id: str
    title: str
    paper_expectation: str
    columns: List[str]
    rows: Dict[str, Dict[str, float]] = field(default_factory=dict)
    averages: Dict[str, float] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)
    #: columns are additive components of one quantity per row (CPI stacks);
    #: the bar renderer then stacks segments instead of grouping bars
    stacked: bool = False

    def column_average(self, column: str) -> float:
        values = [row[column] for row in self.rows.values() if column in row]
        return sum(values) / len(values) if values else 0.0

    def column_geomean(self, column: str) -> float:
        values = [
            row[column]
            for row in self.rows.values()
            if column in row and row[column] > 0
        ]
        if not values:
            return 0.0
        return math.exp(sum(math.log(v) for v in values) / len(values))

    def finalize_averages(self, geometric: bool = False) -> None:
        for column in self.columns:
            self.averages[column] = (
                self.column_geomean(column) if geometric
                else self.column_average(column)
            )

    # -------------------------------------------------------------- rendering
    def render(self, precision: int = 2, width: Optional[int] = None) -> str:
        """ASCII table in the style of the paper's figures."""
        name_width = max(
            [len("benchmark")] + [len(name) for name in self.rows]
        ) + 1
        col_width = max([7] + [len(c) + 1 for c in self.columns])

        def fmt(value: float) -> str:
            return f"{value:{col_width}.{precision}f}"

        lines = [
            f"== {self.experiment_id}: {self.title}",
            f"   paper: {self.paper_expectation}",
        ]
        header = "benchmark".ljust(name_width) + "".join(
            column.rjust(col_width) for column in self.columns
        )
        lines.append(header)
        lines.append("-" * len(header))
        for name, row in self.rows.items():
            cells = "".join(
                fmt(row[column]) if column in row else " " * col_width
                for column in self.columns
            )
            lines.append(name.ljust(name_width) + cells)
        if self.averages:
            lines.append("-" * len(header))
            cells = "".join(
                fmt(self.averages.get(column, float("nan")))
                for column in self.columns
            )
            lines.append("average".ljust(name_width) + cells)
        for note in self.notes:
            lines.append(f"   note: {note}")
        return "\n".join(lines)


def normalize_rows(
    result: ExperimentResult, baseline_column: str
) -> ExperimentResult:
    """Divide every row by its value in ``baseline_column`` (paper style)."""
    for row in result.rows.values():
        base = row.get(baseline_column)
        if not base:
            continue
        for column in list(row):
            row[column] = row[column] / base
    return result
