"""ASCII figure rendering: grouped bar charts in the style of the paper.

The paper's figures are per-benchmark grouped bars (normalized performance);
:func:`render_bars` draws the same thing in a terminal so a bench run's
output visually matches the artifact it reproduces.
"""

from __future__ import annotations

from typing import Optional

from .reporting import ExperimentResult

_BAR_CHARS = "#*+o@x%&=~"


def render_bars(
    result: ExperimentResult,
    bar_width: int = 50,
    max_value: Optional[float] = None,
    include_average: bool = True,
) -> str:
    """Render an experiment as horizontal grouped bars, one group per
    benchmark and one bar per column (series)."""
    values = [
        value
        for row in result.rows.values()
        for value in row.values()
    ]
    if not values:
        return f"== {result.experiment_id}: (no data)"
    peak = max_value if max_value is not None else max(values)
    if peak <= 0:
        peak = 1.0

    name_width = max(
        [len("benchmark")] + [len(name) for name in result.rows]
    )
    label_width = max(len(column) for column in result.columns)

    def bar(value: float, mark: str) -> str:
        filled = int(round(bar_width * min(value, peak) / peak))
        return mark * filled

    lines = [
        f"== {result.experiment_id}: {result.title}",
        f"   paper: {result.paper_expectation}",
        f"   scale: full bar = {peak:.2f}",
    ]
    for name, row in result.rows.items():
        lines.append(f"{name}")
        for index, column in enumerate(result.columns):
            if column not in row:
                continue
            mark = _BAR_CHARS[index % len(_BAR_CHARS)]
            lines.append(
                f"  {column:>{label_width}s} {row[column]:6.2f} "
                f"{bar(row[column], mark)}"
            )
    if include_average and result.averages:
        lines.append("average")
        for index, column in enumerate(result.columns):
            if column not in result.averages:
                continue
            mark = _BAR_CHARS[index % len(_BAR_CHARS)]
            value = result.averages[column]
            lines.append(
                f"  {column:>{label_width}s} {value:6.2f} "
                f"{bar(value, mark)}"
            )
    return "\n".join(lines)


def render_stacked(result: ExperimentResult, bar_width: int = 60) -> str:
    """Render rows whose columns are additive components (CPI stacks).

    One horizontal bar per row; each column contributes a run of its own
    marker character, proportional to its share of the row total.  All
    bars share one scale (the largest row total), so bar length compares
    CPI across rows and segment length attributes it.
    """
    totals = {
        name: sum(row.get(column, 0.0) for column in result.columns)
        for name, row in result.rows.items()
    }
    if not totals:
        return f"== {result.experiment_id}: (no data)"
    peak = max(totals.values()) or 1.0
    name_width = max(len(name) for name in result.rows)
    lines = [
        f"== {result.experiment_id}: {result.title}",
        f"   paper: {result.paper_expectation}",
        f"   scale: full bar = {peak:.2f}",
        "   legend: " + "  ".join(
            f"{_BAR_CHARS[i % len(_BAR_CHARS)]}={column}"
            for i, column in enumerate(result.columns)
        ),
    ]
    for name, row in result.rows.items():
        segments = []
        carried = 0.0  # accumulate sub-cell components so none vanish
        for index, column in enumerate(result.columns):
            value = row.get(column, 0.0) + carried
            cells = int(round(bar_width * value / peak))
            carried = value - cells * peak / bar_width
            mark = _BAR_CHARS[index % len(_BAR_CHARS)]
            segments.append(mark * cells)
        lines.append(
            f"  {name:>{name_width}s} {totals[name]:6.2f} "
            f"{''.join(segments)}"
        )
    for note in result.notes:
        lines.append(f"   note: {note}")
    return "\n".join(lines)


def render_series(result: ExperimentResult, bar_width: int = 50) -> str:
    """Render only the suite averages as one bar per sweep point — the
    compact view for single-parameter sweeps (Figures 5-12)."""
    if not result.averages:
        result.finalize_averages()
    peak = max(result.averages.values()) or 1.0
    label_width = max(len(column) for column in result.columns)
    lines = [
        f"== {result.experiment_id}: {result.title} (suite average)",
        f"   paper: {result.paper_expectation}",
    ]
    for column in result.columns:
        value = result.averages.get(column)
        if value is None:
            continue
        filled = int(round(bar_width * value / peak))
        lines.append(f"  {column:>{label_width}s} {value:6.3f} {'#' * filled}")
    return "\n".join(lines)
