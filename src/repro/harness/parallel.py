"""Parallel sweep engine: fan sweep points out over a process pool.

The timing cores are pure Python, so threads cannot scale them; this module
uses worker processes instead.  Each worker holds one long-lived
:class:`~repro.harness.context.ExperimentContext`, so phase-one artifacts
(programs, braid compilations, prepared workloads) are materialized at most
once per worker — and usually not even that, because the parent pre-warms
phase one before the pool starts:

* on fork platforms the workers inherit the parent's warm context
  copy-on-write and pay nothing;
* on spawn platforms (or when a worker sees a benchmark the parent did not
  warm) the worker reads the persistent artifact cache and pays one
  unpickle.

Results come back in submission order, so a parallel sweep is
deterministically equal to the serial one (``jobs=1`` bypasses the pool
entirely — tests and debugging see the plain in-process path).  A worker
that dies mid-task (OOM kill, segfault, interpreter abort) no longer loses
the whole sweep: completed results are kept, the in-flight task is logged,
and the unfinished points are re-run serially in the parent
(:func:`_collect_resilient`).

For workloads that are *expected* to wedge or kill their workers —
fault-injection campaigns (:mod:`repro.faults`) — :func:`run_tasks_hardened`
provides a separate, sturdier dispatch path: dedicated worker processes
with per-task wall-clock deadlines and watchdog kill, bounded
retry-with-backoff for infrastructure failures, and quarantine (not abort)
of tasks that keep destroying their workers.

Knobs: ``REPRO_JOBS`` / ``--jobs`` on ``python -m repro.harness``; the
default is ``os.cpu_count()``.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import queue as queue_module
import sys
import tempfile
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from ..service.retry import PERMANENT, RetryPolicy
from ..sim.results import SimResult
from .sweep import SweepPoint

_ENV_JOBS = "REPRO_JOBS"


def jobs_from_env(default: Optional[int] = None) -> int:
    """Resolve the worker count from ``REPRO_JOBS`` (default: CPU count)."""
    value = os.environ.get(_ENV_JOBS, "").strip()
    if value:
        try:
            jobs = int(value)
        except ValueError:
            raise ValueError(
                f"{_ENV_JOBS} must be a positive integer, got {value!r}"
            ) from None
        if jobs < 1:
            raise ValueError(f"{_ENV_JOBS} must be >= 1, got {jobs}")
        return jobs
    if default is not None:
        return default
    return os.cpu_count() or 1


_NOTED: Set[str] = set()


def _note_once(message: str) -> None:
    """Log a scheduling note to stderr, once per distinct message."""
    if message not in _NOTED:
        _NOTED.add(message)
        print(f"[repro.harness] note: {message}", file=sys.stderr)


def effective_jobs(jobs: int, pending: int) -> int:
    """Workers the pool would actually help with.

    Clamps the requested worker count to the number of pending points (a
    pool larger than its work only pays fork cost) and to the host CPU
    count (extra workers would only time-slice), and falls back to the
    serial in-process path when the clamp leaves one worker or the host
    exposes a single CPU (workers would time-slice one core, adding pool
    and pickling overhead for nothing).  Every adjustment logs a note so a
    ``--jobs N`` request never degrades silently.
    """
    cpus = os.cpu_count() or 1
    capped = max(1, min(jobs, pending))
    if capped < jobs and pending > 0:
        _note_once(
            f"clamping --jobs {jobs} to {capped}: "
            f"only {pending} sweep point(s) pending"
        )
    if capped > cpus > 1:
        _note_once(
            f"clamping --jobs {jobs} to {cpus}: host exposes {cpus} CPUs"
        )
        capped = cpus
    if capped > 1 and cpus == 1:
        _note_once(
            "host exposes a single CPU: running sweep points serially "
            "in-process (a worker pool would only add fork overhead)"
        )
        return 1
    return capped


#: Worker-side context; under fork this aliases the parent's warm context.
_WORKER_CONTEXT = None
#: Set by run_points_parallel just before the pool forks.
_PARENT_CONTEXT = None


def _init_worker(spec: Tuple) -> None:
    global _WORKER_CONTEXT
    if _PARENT_CONTEXT is not None:
        # Fork start method: reuse the parent's context (and its warm
        # program/compilation/workload caches) copy-on-write.
        _WORKER_CONTEXT = _PARENT_CONTEXT
        return
    from ..sim.interval import IntervalConfig
    from ..sim.sampling import SamplingConfig
    from .artifacts import ArtifactCache
    from .context import ExperimentContext

    (
        benchmarks,
        scale,
        max_instructions,
        cache_root,
        cache_enabled,
        sampling_spec,
        result_cache,
        fidelity,
        interval_spec,
    ) = spec
    _WORKER_CONTEXT = ExperimentContext(
        benchmarks=benchmarks,
        scale=scale,
        max_instructions=max_instructions,
        jobs=1,
        cache=ArtifactCache(root=cache_root, enabled=cache_enabled),
        result_cache=result_cache,
    )
    # Assign directly: the constructor treats None as "consult the
    # environment" for sampling and fidelity, but the worker must mirror
    # the parent's *resolved* modes even when the parent overrode them.
    _WORKER_CONTEXT.sampling = (
        SamplingConfig.parse(sampling_spec) if sampling_spec else None
    )
    _WORKER_CONTEXT.fidelity = fidelity
    _WORKER_CONTEXT.interval = (
        IntervalConfig.parse(interval_spec) if interval_spec
        else IntervalConfig()
    )


def _context_spec(context) -> Tuple:
    """The picklable context identity shipped to spawn-start workers."""
    return (
        context.benchmarks,
        context.scale,
        context.max_instructions,
        str(context.cache.root),
        context.cache.enabled,
        context.sampling.spec() if context.sampling is not None else None,
        context.result_cache,
        context.fidelity,
        context.interval.spec() if context.interval is not None else None,
    )


def _run_group(points: Tuple[SweepPoint, ...]) -> List[SimResult]:
    from ..obs.profiling import maybe_profiled

    # maybe_profiled is a straight call unless the parent exported
    # REPRO_PROFILE_DIR (--profile); then each worker dumps cProfile data
    # the parent aggregates after the sweep.  Points of one task share a
    # workload (run_many groups workload-major), so the context's warm
    # caches make every point after the first reuse the decode/replay
    # facts the first one built.
    return maybe_profiled(
        lambda: [
            _WORKER_CONTEXT.run(
                point.benchmark,
                point.config,
                braided=point.braided,
                perfect=point.perfect,
                internal_limit=point.internal_limit,
            )
            for point in points
        ]
    )


def _run_point_serial(context, point: SweepPoint) -> SimResult:
    """One sweep point on the caller's own context (no worker pool)."""
    return context.run(
        point.benchmark,
        point.config,
        braided=point.braided,
        perfect=point.perfect,
        internal_limit=point.internal_limit,
    )


def _collect_resilient(
    futures: Sequence,
    labels: Sequence[str],
    serial_fn: Callable[[int], Any],
) -> List[Any]:
    """Gather future results, surviving worker deaths.

    A worker that dies mid-task (OOM kill, segfault) breaks the whole
    executor: every unfinished future raises :class:`BrokenProcessPool`.
    Instead of surfacing that as a bare exception and losing all completed
    work, keep every result that finished, log which task was in flight
    when the pool broke, and recompute the unfinished tasks through
    ``serial_fn(index)`` in the calling process.
    """
    results: List[Any] = [None] * len(futures)
    unfinished: List[int] = []
    broken: Optional[str] = None
    for index, future in enumerate(futures):
        if broken is None:
            try:
                results[index] = future.result()
                continue
            except BrokenProcessPool:
                broken = labels[index]
        # Pool already broken: cancel/skim without blocking.  Futures that
        # finished before the break still hold their results.
        if future.done() and not future.cancelled():
            error = future.exception()
            if error is None:
                results[index] = future.result()
                continue
        unfinished.append(index)
    if broken is not None:
        _note_once(
            f"a worker process died while running {broken!r}; keeping "
            f"{len(futures) - len(unfinished)} completed result(s) and "
            f"re-running {len(unfinished)} unfinished task(s) serially"
        )
        for index in unfinished:
            results[index] = serial_fn(index)
    return results


def run_point_groups_parallel(
    context, groups: Sequence[Sequence[SweepPoint]], jobs: int
) -> List[List[SimResult]]:
    """Simulate point groups on ``jobs`` workers; results in submission order.

    Each group is one pool task (one worker runs its points back to
    back), so callers that group workload-major —
    :meth:`ExperimentContext.run_many` — amortize the shared
    decode/replay facts across every config of a workload.  Results come
    back as one list per group, aligned with the request.
    """
    global _PARENT_CONTEXT
    groups = [list(group) for group in groups]
    if not groups:
        return []
    jobs = min(jobs, len(groups))

    # Warm phase one in the parent so forked workers share it copy-on-write
    # and the persistent cache covers spawn-start platforms.
    for key in {
        (p.benchmark, p.braided, p.perfect, p.internal_limit)
        for group in groups
        for p in group
    }:
        benchmark, braided, perfect, internal_limit = key
        context.workload(
            benchmark,
            braided=braided,
            perfect=perfect,
            internal_limit=internal_limit,
        )

    spec = _context_spec(context)

    def _serial_group(group: Sequence[SweepPoint]) -> List[SimResult]:
        return [_run_point_serial(context, point) for point in group]

    def _label(group: Sequence[SweepPoint]) -> str:
        first = group[0]
        label = f"{first.benchmark} on {first.config.name}"
        if len(group) > 1:
            label += f" (+{len(group) - 1} more)"
        return label

    try:
        mp_context = multiprocessing.get_context("fork")
    except ValueError:
        # Spawn-only platforms (Windows, some macOS configs) would re-import
        # every worker from scratch and re-unpickle phase one per process;
        # with the warm in-process context already holding the artifacts,
        # serial execution is both simpler and usually faster.  Never
        # degrade silently (mirrors the 1-CPU clamp in effective_jobs).
        _note_once(
            "fork start method unavailable on this platform: running "
            "sweep points serially in-process"
        )
        return [_serial_group(group) for group in groups]

    _PARENT_CONTEXT = context
    try:
        with ProcessPoolExecutor(
            max_workers=jobs,
            mp_context=mp_context,
            initializer=_init_worker,
            initargs=(spec,),
        ) as pool:
            futures = [
                pool.submit(_run_group, tuple(group)) for group in groups
            ]
            results = _collect_resilient(
                futures,
                labels=[_label(group) for group in groups],
                serial_fn=lambda index: _serial_group(groups[index]),
            )
    finally:
        _PARENT_CONTEXT = None
    return results


def run_points_parallel(
    context, points: Sequence[SweepPoint], jobs: int
) -> List[SimResult]:
    """Simulate ``points`` on ``jobs`` workers; results in submission order.

    One task per point — the pre-batching dispatch shape, kept for
    callers that schedule their own grouping.
    """
    groups = run_point_groups_parallel(
        context, [(point,) for point in points], jobs
    )
    return [group[0] for group in groups]


# --------------------------------------------------------------------------
# Hardened task dispatch (fault-injection campaigns)
# --------------------------------------------------------------------------

@dataclass
class TaskOutcome:
    """Final fate of one hardened task.

    ``status``:

    * ``"ok"`` — the worker function returned; ``result`` holds the value.
    * ``"quarantined"`` — the task could not produce a result: either
      every attempt ended in a retryable infrastructure failure (worker
      death, wall-clock timeout, delivery failure), or one attempt
      failed *permanently* (an ordinary exception escaping the worker
      function — deterministic, so retrying is waste; ``permanent`` is
      True).  ``error`` describes the last failure.  Quarantine is
      per-task: the campaign continues.
    """

    task_id: str
    status: str
    result: Any = None
    error: Optional[str] = None
    attempts: int = 0
    failures: List[str] = field(default_factory=list)
    #: the final failure was classified permanent (task bug, not infra)
    permanent: bool = False

    @property
    def ok(self) -> bool:
        return self.status == "ok"


def _deliver_message(inbox: str, message: Tuple) -> None:
    """Atomically deliver one result message into the parent's inbox.

    Results travel through the filesystem, not a shared
    ``multiprocessing.Queue``, deliberately: a queue's writer side is a
    pipe guarded by a cross-process lock, and a worker that dies (or is
    watchdog-killed) while its feeder thread holds that lock leaks the
    lock forever, wedging every *other* worker's deliveries.  A pickle
    written to a private temp file and published with ``os.replace`` is
    immune — any kill point leaves either no message or a complete one,
    the same crash-safety idiom the artifact cache and the campaign
    journal use.
    """
    fd, tmp_name = tempfile.mkstemp(dir=inbox, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            pickle.dump(message, handle, protocol=pickle.HIGHEST_PROTOCOL)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    global _MESSAGE_COUNTER
    _MESSAGE_COUNTER += 1
    final = os.path.join(
        inbox, f"{os.getpid()}-{_MESSAGE_COUNTER}.msg"
    )
    os.replace(tmp_name, final)


#: per-process message sequence number (workers inherit 0 after fork)
_MESSAGE_COUNTER = 0


def _drain_inbox(inbox: str) -> List[Tuple]:
    """Collect and remove every complete message currently in the inbox."""
    messages: List[Tuple] = []
    try:
        names = sorted(os.listdir(inbox))
    except OSError:
        return messages
    for name in names:
        if not name.endswith(".msg"):
            continue
        path = os.path.join(inbox, name)
        try:
            with open(path, "rb") as handle:
                messages.append(pickle.load(handle))
        except (OSError, pickle.UnpicklingError, EOFError):
            continue  # should be impossible (rename is atomic); skip
        finally:
            try:
                os.unlink(path)
            except OSError:
                pass
    return messages


def _hardened_worker(fn, task_queue, inbox) -> None:
    """Worker loop: run tasks until the ``None`` sentinel arrives.

    Exceptions from ``fn`` are reported as infrastructure errors — domain
    outcomes (an injected run crashing its simulator) are classified
    *inside* ``fn`` and come back as ordinary results.  The idle wait is
    bounded so a worker orphaned by a SIGKILLed parent (daemon flags only
    act on normal interpreter exit) notices the re-parenting and exits
    instead of blocking on the queue forever.
    """
    while True:
        try:
            item = task_queue.get(timeout=5.0)
        except queue_module.Empty:
            if os.getppid() == 1:  # parent died; we were re-parented
                return
            continue
        if item is None:
            return
        task_id, attempt, payload = item
        # Publish the attempt number where the task function (and the
        # service progress publisher) can read it without a signature
        # change: ProgressPublisher.from_env consumes it.
        os.environ["REPRO_TASK_ATTEMPT"] = str(attempt)
        try:
            result = fn(payload)
            message = (task_id, attempt, "ok", result, None)
        except BaseException as error:  # noqa: BLE001 - report, don't die
            message = (task_id, attempt, "error", None,
                       f"{type(error).__name__}: {error}")
        try:
            _deliver_message(inbox, message)
        except BaseException as error:  # e.g. the result does not pickle
            _deliver_message(
                inbox,
                (task_id, attempt, "error", None,
                 f"result delivery failed: "
                 f"{type(error).__name__}: {error}"),
            )


@dataclass
class _Assignment:
    """One in-flight task on one hardened worker."""

    index: int
    task_id: str
    attempt: int
    #: monotonic kill deadline (extended while heartbeats show progress)
    deadline: float
    #: monotonic dispatch time (bounds total extension)
    dispatched: float
    #: last heartbeat snapshot seen at a deadline check
    last_beat: Optional[Dict[str, Any]] = None


class _HardenedWorker:
    """One dedicated worker process plus its private task queue.

    The task queue is safe against worker death: the parent is its only
    writer (so no worker can leak its write lock) and the worker its
    only reader (a leaked read lock dies with the queue, which is
    discarded on respawn).  Results come back through the inbox
    directory — see :func:`_deliver_message`.
    """

    def __init__(self, mp_context, fn, inbox) -> None:
        self.task_queue = mp_context.Queue()
        self.process = mp_context.Process(
            target=_hardened_worker,
            args=(fn, self.task_queue, inbox),
            daemon=True,
        )
        self.process.start()
        self.assignment: Optional[_Assignment] = None

    def kill(self) -> None:
        try:
            self.process.kill()
            self.process.join(timeout=5.0)
        except (OSError, ValueError):
            pass
        try:
            self.task_queue.close()
        except (OSError, ValueError):
            pass

    def stop(self) -> None:
        """Graceful shutdown: sentinel, short join, then kill."""
        try:
            self.task_queue.put(None)
        except (OSError, ValueError):
            pass
        self.process.join(timeout=1.0)
        if self.process.is_alive():
            self.kill()


def _run_tasks_serial(
    fn, tasks, policy: RetryPolicy, on_result=None
) -> List[TaskOutcome]:
    """In-process fallback (jobs=1 / no fork): retries but no watchdog."""
    outcomes = []
    for task_id, payload in tasks:
        outcome = TaskOutcome(task_id=task_id, status="quarantined")
        for attempt in range(1, policy.max_attempts + 1):
            outcome.attempts = attempt
            os.environ["REPRO_TASK_ATTEMPT"] = str(attempt)
            try:
                outcome.result = fn(payload)
            except Exception as error:
                message = f"{type(error).__name__}: {error}"
                outcome.failures.append(f"attempt {attempt}: {message}")
                outcome.error = outcome.failures[-1]
                if policy.classify_error(error) == PERMANENT:
                    # Deterministic task error: retrying cannot help.
                    outcome.permanent = True
                    break
                if attempt < policy.max_attempts:
                    time.sleep(policy.delay(task_id, attempt))
            else:
                outcome.status = "ok"
                outcome.error = None
                break
        outcomes.append(outcome)
        if on_result is not None:
            on_result(outcome)
    return outcomes


def _describe_beat(snapshot: Optional[Dict]) -> str:
    """Heartbeat description for watchdog notes and error messages."""
    from ..service.telemetry import describe_progress

    return describe_progress(snapshot)


def _deadline_extension_ok(
    assignment: _Assignment,
    snapshot: Optional[Dict],
    now: float,
    deadline: float,
    hang_grace: float,
    extension_cap: float,
) -> bool:
    """Is this deadline miss a *slow but progressing* task, not a hang?

    Requires a heartbeat no older than ``hang_grace`` seconds whose
    progress key (cells, instructions, cycles) advanced since the last
    deadline check, and total wall clock still inside ``extension_cap``
    deadlines — a publisher that keeps heartbeating identical state (or
    stops) is treated as hung.
    """
    from ..service.telemetry import heartbeat_age

    if snapshot is None:
        return False
    if now - assignment.dispatched + deadline > deadline * extension_cap:
        return False
    age = heartbeat_age(snapshot)
    if age is None or age > hang_grace:
        return False

    def key(beat: Optional[Dict]) -> Tuple[int, int, int]:
        if beat is None:
            return (-1, -1, -1)
        return (
            int(beat.get("cells_done", 0) or 0),
            int(beat.get("instructions", 0) or 0),
            int(beat.get("cycles", 0) or 0),
        )

    return key(snapshot) > key(assignment.last_beat)


def run_tasks_hardened(
    fn: Callable[[Any], Any],
    tasks: Sequence[Tuple[str, Any]],
    jobs: int = 1,
    timeout: Optional[float] = None,
    max_attempts: int = 3,
    backoff: float = 0.5,
    on_result: Optional[Callable[[TaskOutcome], None]] = None,
    policy: Optional[RetryPolicy] = None,
    progress_probe: Optional[Callable[[str], Optional[Dict]]] = None,
    hang_grace: float = 2.0,
    extension_cap: float = 4.0,
) -> List[TaskOutcome]:
    """Run ``fn`` over ``tasks`` on workers that are allowed to die.

    ``tasks`` is a sequence of ``(task_id, payload)``; outcomes come back
    in task order.  Guarantees the campaign runner and the service
    supervisor need:

    * **watchdog kill** — a task that exceeds the policy deadline of wall
      clock gets its worker killed and respawned;
    * **classified, bounded retry with backoff** — *retryable*
      infrastructure failures (worker death, watchdog timeout, delivery
      failure, OSError-family exceptions) are retried up to the policy's
      attempt budget, each retry delayed by capped exponential backoff
      with deterministic per-(task, attempt) jitter; *permanent* task
      errors (any other exception escaping ``fn``) quarantine
      immediately — they would fail identically every time;
    * **quarantine, not abort** — a task that exhausts its attempts (or
      fails permanently) is marked ``"quarantined"`` and the remaining
      tasks keep running;
    * **incremental delivery** — ``on_result`` fires as each task settles
      (the campaign journal appends there), so a SIGKILL of the *parent*
      loses at most the in-flight tasks.

    ``policy`` is the shared :class:`~repro.service.retry.RetryPolicy`;
    the legacy ``timeout``/``max_attempts``/``backoff`` arguments build
    one when it is omitted (``timeout`` defaults to 120 seconds).

    ``progress_probe`` (optional, ``task_id -> heartbeat snapshot dict
    or None`` — the service passes
    :func:`~repro.service.telemetry.progress_probe`) lets the watchdog
    distinguish *hung* from *slow but progressing* at the deadline: a
    task whose last heartbeat is at most ``hang_grace`` seconds old
    **and** shows forward progress since the previous check gets its
    deadline extended by one ``policy.deadline``, up to
    ``extension_cap`` deadlines of total wall clock — after which (or
    with a stale/absent heartbeat) the worker is killed, and the error
    text records the last heartbeat age and reported progress so the
    retired job is diagnosable post-mortem.

    ``jobs=1`` (or a platform without the fork start method) runs tasks
    serially in-process with the same classification/retry/quarantine
    semantics but no wall-clock watchdog — an in-simulator watchdog
    (:class:`~repro.sim.core.SimulationHang`) still bounds hangs there.
    """
    if policy is None:
        policy = RetryPolicy(
            max_attempts=max_attempts,
            backoff=backoff,
            deadline=timeout if timeout is not None else 120.0,
        )
    elif timeout is not None:
        policy = RetryPolicy(
            max_attempts=policy.max_attempts,
            backoff=policy.backoff,
            backoff_cap=policy.backoff_cap,
            deadline=timeout,
            seed=policy.seed,
        )
    tasks = list(tasks)
    if not tasks:
        return []
    if jobs > 1:
        try:
            mp_context = multiprocessing.get_context("fork")
        except ValueError:
            _note_once(
                "fork start method unavailable on this platform: running "
                "hardened tasks serially in-process (no wall-clock watchdog)"
            )
            jobs = 1
    if jobs <= 1:
        return _run_tasks_serial(fn, tasks, policy, on_result)

    jobs = min(jobs, len(tasks), os.cpu_count() or 1)
    jobs = max(jobs, 1)
    inbox_dir = tempfile.TemporaryDirectory(prefix="repro-hardened-")
    inbox = inbox_dir.name
    workers = [
        _HardenedWorker(mp_context, fn, inbox) for _ in range(jobs)
    ]
    outcomes: Dict[int, TaskOutcome] = {}
    partial: Dict[int, TaskOutcome] = {
        index: TaskOutcome(task_id=task_id, status="quarantined")
        for index, (task_id, _) in enumerate(tasks)
    }
    #: (not_before, index, attempt)
    pending: List[Tuple[float, int, int]] = [
        (0.0, index, 1) for index in range(len(tasks))
    ]

    def settle(
        index: int, status: str, result=None, error=None,
        permanent: bool = False,
    ) -> None:
        outcome = partial[index]
        outcome.status = status
        outcome.result = result
        outcome.error = error
        outcome.permanent = permanent
        outcomes[index] = outcome
        if on_result is not None:
            on_result(outcome)

    def fail_attempt(index: int, attempt: int, reason: str) -> None:
        outcome = partial[index]
        outcome.failures.append(f"attempt {attempt}: {reason}")
        task_id = tasks[index][0]
        if policy.classify(reason) == PERMANENT:
            # A deterministic task error reproduces on every retry;
            # quarantine now instead of burning the attempt budget.
            settle(
                index, "quarantined", error=outcome.failures[-1],
                permanent=True,
            )
        elif attempt >= policy.max_attempts:
            settle(index, "quarantined", error=outcome.failures[-1])
        else:
            not_before = time.monotonic() + policy.delay(task_id, attempt)
            pending.append((not_before, index, attempt + 1))

    try:
        while len(outcomes) < len(tasks):
            now = time.monotonic()
            # Dispatch ready tasks to idle workers.
            for worker in workers:
                if worker.assignment is not None or not pending:
                    continue
                slot = None
                for position, item in enumerate(pending):
                    if item[0] <= now:
                        slot = position
                        break
                if slot is None:
                    continue
                _, index, attempt = pending.pop(slot)
                task_id, payload = tasks[index]
                partial[index].attempts = attempt
                worker.task_queue.put((task_id, attempt, payload))
                worker.assignment = _Assignment(
                    index=index, task_id=task_id, attempt=attempt,
                    deadline=now + policy.deadline, dispatched=now,
                )
            # Drain delivered results (short sleep keeps deadlines
            # responsive when the inbox is empty).
            messages = _drain_inbox(inbox)
            if not messages:
                time.sleep(0.02)
            for task_id, attempt, status, result, error in messages:
                for worker in workers:
                    if (
                        worker.assignment is not None
                        and worker.assignment.task_id == task_id
                        and worker.assignment.attempt == attempt
                    ):
                        index = worker.assignment.index
                        worker.assignment = None
                        if status == "ok":
                            settle(index, "ok", result=result)
                        else:
                            fail_attempt(index, attempt, error)
                        break
                # Unmatched messages are stale (their worker was already
                # killed for a deadline miss) and are dropped.
            # Enforce deadlines and detect dead workers.
            now = time.monotonic()
            for position, worker in enumerate(workers):
                if worker.assignment is None:
                    if not worker.process.is_alive():
                        worker.kill()
                        workers[position] = _HardenedWorker(
                            mp_context, fn, inbox
                        )
                    continue
                assignment = worker.assignment
                task_id = assignment.task_id
                attempt = assignment.attempt
                reason = None
                snapshot = None
                if now > assignment.deadline:
                    if progress_probe is not None:
                        snapshot = progress_probe(task_id)
                    if _deadline_extension_ok(
                        assignment, snapshot, now, policy.deadline,
                        hang_grace, extension_cap,
                    ):
                        assignment.deadline = now + policy.deadline
                        assignment.last_beat = snapshot
                        _note_once(
                            f"hardened task {task_id!r}: slow but "
                            f"progressing ({_describe_beat(snapshot)}); "
                            f"deadline extended"
                        )
                        continue
                    elapsed = now - assignment.dispatched
                    reason = (
                        f"wall-clock timeout after {elapsed:.1f}s "
                        f"(worker killed; {_describe_beat(snapshot)})"
                        if progress_probe is not None else
                        f"wall-clock timeout after {elapsed:.1f}s "
                        f"(worker killed)"
                    )
                elif not worker.process.is_alive():
                    code = worker.process.exitcode
                    reason = f"worker died mid-task (exit code {code})"
                    if progress_probe is not None:
                        snapshot = progress_probe(task_id)
                        reason += f"; {_describe_beat(snapshot)}"
                if reason is not None:
                    _note_once(
                        f"hardened task {task_id!r}: {reason}; "
                        f"attempt {attempt}/{policy.max_attempts}"
                    )
                    worker.kill()
                    workers[position] = _HardenedWorker(
                        mp_context, fn, inbox
                    )
                    fail_attempt(assignment.index, attempt, reason)
    finally:
        for worker in workers:
            worker.stop()
        inbox_dir.cleanup()
    return [outcomes[index] for index in range(len(tasks))]
