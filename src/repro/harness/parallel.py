"""Parallel sweep engine: fan sweep points out over a process pool.

The timing cores are pure Python, so threads cannot scale them; this module
uses a ``multiprocessing`` pool instead.  Each worker holds one long-lived
:class:`~repro.harness.context.ExperimentContext`, so phase-one artifacts
(programs, braid compilations, prepared workloads) are materialized at most
once per worker — and usually not even that, because the parent pre-warms
phase one before the pool starts:

* on fork platforms the workers inherit the parent's warm context
  copy-on-write and pay nothing;
* on spawn platforms (or when a worker sees a benchmark the parent did not
  warm) the worker reads the persistent artifact cache and pays one
  unpickle.

Results come back in submission order, so a parallel sweep is
deterministically equal to the serial one (``jobs=1`` bypasses the pool
entirely — tests and debugging see the plain in-process path).

Knobs: ``REPRO_JOBS`` / ``--jobs`` on ``python -m repro.harness``; the
default is ``os.cpu_count()``.
"""

from __future__ import annotations

import multiprocessing
import os
import sys
from typing import List, Optional, Sequence, Set, Tuple

from ..sim.results import SimResult
from .sweep import SweepPoint

_ENV_JOBS = "REPRO_JOBS"


def jobs_from_env(default: Optional[int] = None) -> int:
    """Resolve the worker count from ``REPRO_JOBS`` (default: CPU count)."""
    value = os.environ.get(_ENV_JOBS, "").strip()
    if value:
        try:
            jobs = int(value)
        except ValueError:
            raise ValueError(
                f"{_ENV_JOBS} must be a positive integer, got {value!r}"
            ) from None
        if jobs < 1:
            raise ValueError(f"{_ENV_JOBS} must be >= 1, got {jobs}")
        return jobs
    if default is not None:
        return default
    return os.cpu_count() or 1


_NOTED: Set[str] = set()


def _note_once(message: str) -> None:
    """Log a scheduling note to stderr, once per distinct message."""
    if message not in _NOTED:
        _NOTED.add(message)
        print(f"[repro.harness] note: {message}", file=sys.stderr)


def effective_jobs(jobs: int, pending: int) -> int:
    """Workers the pool would actually help with.

    Clamps the requested worker count to the number of pending points (a
    pool larger than its work only pays fork cost) and to the host CPU
    count (extra workers would only time-slice), and falls back to the
    serial in-process path when the clamp leaves one worker or the host
    exposes a single CPU (workers would time-slice one core, adding pool
    and pickling overhead for nothing).  Every adjustment logs a note so a
    ``--jobs N`` request never degrades silently.
    """
    cpus = os.cpu_count() or 1
    capped = max(1, min(jobs, pending))
    if capped < jobs and pending > 0:
        _note_once(
            f"clamping --jobs {jobs} to {capped}: "
            f"only {pending} sweep point(s) pending"
        )
    if capped > cpus > 1:
        _note_once(
            f"clamping --jobs {jobs} to {cpus}: host exposes {cpus} CPUs"
        )
        capped = cpus
    if capped > 1 and cpus == 1:
        _note_once(
            "host exposes a single CPU: running sweep points serially "
            "in-process (a worker pool would only add fork overhead)"
        )
        return 1
    return capped


#: Worker-side context; under fork this aliases the parent's warm context.
_WORKER_CONTEXT = None
#: Set by run_points_parallel just before the pool forks.
_PARENT_CONTEXT = None


def _init_worker(spec: Tuple) -> None:
    global _WORKER_CONTEXT
    if _PARENT_CONTEXT is not None:
        # Fork start method: reuse the parent's context (and its warm
        # program/compilation/workload caches) copy-on-write.
        _WORKER_CONTEXT = _PARENT_CONTEXT
        return
    from ..sim.sampling import SamplingConfig
    from .artifacts import ArtifactCache
    from .context import ExperimentContext

    (
        benchmarks,
        scale,
        max_instructions,
        cache_root,
        cache_enabled,
        sampling_spec,
        result_cache,
    ) = spec
    _WORKER_CONTEXT = ExperimentContext(
        benchmarks=benchmarks,
        scale=scale,
        max_instructions=max_instructions,
        jobs=1,
        cache=ArtifactCache(root=cache_root, enabled=cache_enabled),
        result_cache=result_cache,
    )
    # Assign directly: the constructor treats None as "consult REPRO_SAMPLE",
    # but the worker must mirror the parent's *resolved* sampling mode even
    # when the parent overrode the environment.
    _WORKER_CONTEXT.sampling = (
        SamplingConfig.parse(sampling_spec) if sampling_spec else None
    )


def _run_point(point: SweepPoint) -> SimResult:
    return _WORKER_CONTEXT.run(
        point.benchmark,
        point.config,
        braided=point.braided,
        perfect=point.perfect,
        internal_limit=point.internal_limit,
    )


def _run_point_serial(context, point: SweepPoint) -> SimResult:
    """One sweep point on the caller's own context (no worker pool)."""
    return context.run(
        point.benchmark,
        point.config,
        braided=point.braided,
        perfect=point.perfect,
        internal_limit=point.internal_limit,
    )


def run_points_parallel(
    context, points: Sequence[SweepPoint], jobs: int
) -> List[SimResult]:
    """Simulate ``points`` on ``jobs`` workers; results in submission order."""
    global _PARENT_CONTEXT
    points = list(points)
    if not points:
        return []
    jobs = min(jobs, len(points))

    # Warm phase one in the parent so forked workers share it copy-on-write
    # and the persistent cache covers spawn-start platforms.
    for key in {
        (p.benchmark, p.braided, p.perfect, p.internal_limit) for p in points
    }:
        benchmark, braided, perfect, internal_limit = key
        context.workload(
            benchmark,
            braided=braided,
            perfect=perfect,
            internal_limit=internal_limit,
        )

    spec = (
        context.benchmarks,
        context.scale,
        context.max_instructions,
        str(context.cache.root),
        context.cache.enabled,
        context.sampling.spec() if context.sampling is not None else None,
        context.result_cache,
    )
    try:
        mp_context = multiprocessing.get_context("fork")
    except ValueError:
        # Spawn-only platforms (Windows, some macOS configs) would re-import
        # every worker from scratch and re-unpickle phase one per process;
        # with the warm in-process context already holding the artifacts,
        # serial execution is both simpler and usually faster.  Never
        # degrade silently (mirrors the 1-CPU clamp in effective_jobs).
        _note_once(
            "fork start method unavailable on this platform: running "
            "sweep points serially in-process"
        )
        return [_run_point_serial(context, point) for point in points]

    chunksize = max(1, len(points) // (jobs * 4))
    _PARENT_CONTEXT = context
    try:
        with mp_context.Pool(
            processes=jobs, initializer=_init_worker, initargs=(spec,)
        ) as pool:
            results = pool.map(_run_point, points, chunksize=chunksize)
    finally:
        _PARENT_CONTEXT = None
    return results
