"""Seeded single-bit-flip injectors over live microarchitectural state.

Each injector perturbs one structure of a running
:class:`~repro.sim.core.TimingCore`.  This module owns the *common*
structures every paradigm shares — ROB entries, register-file occupancy,
LSQ entries, checkpoint tags, branch-predictor state; each paradigm
declares its own scheduling-structure injectors on its core class
(``fault_structures`` / ``fault_injectors``), and the registry makes
them discoverable here, so an unmodeled paradigm fails loudly instead
of running a campaign as all-masked.  Injection rides
the core's ``fault_hook`` (installed by :class:`FaultSession`), which
fires once per cycle *before* the cycle's stages, so the flip is visible
to every stage of the injection cycle; with no hook installed the fast
``_run_until`` loop is untouched and the run is bit-identical to HEAD.

Two rules keep runs independent and deterministic:

* **Never mutate trace-owned objects.**  The prepared workload (trace
  ``DynInst`` records, the ``mispredicted`` set) is shared across runs
  in one process; injectors that corrupt instruction payloads replace
  ``winst.dyn`` with a *mutated copy*, and the branch-predictor injector
  swaps in a copied set.  Per-run state (``WInst``, LSQ/checkpoint
  entries, core counters) is mutated freely.
* **All randomness flows from one ``random.Random``** seeded per task
  from a SHA-256 digest, so a campaign re-run with the same seed flips
  the same bit of the same entry at the same cycle.

What a trace-replay simulator can and cannot model: timing cores replay
pre-computed values, so *data-array* bit flips (a register value, a
cache line) have no architectural carrier here and faults manifest
through **control and bookkeeping** state — pointers, tags, status
bits, occupancy counters.  That is also where the braid/out-of-order
comparison lives: the structures whose size the paper contrasts are
exactly these bookkeeping arrays.
"""

from __future__ import annotations

import random
from dataclasses import replace as dataclass_replace
from typing import Callable, Dict, Optional, Tuple

from ..sim.config import CoreKind, MachineConfig
from ..sim.core import SimulationError, TimingCore, flip_bit as _flip_bit
from ..sim.registry import core_registry, descriptor_for
from ..sim.run import build_core
from ..validate.lockstep import DivergenceError, LockstepChecker
from .model import FaultOutcome, InjectionResult, InjectorError


# ---------------------------------------------------------------- injectors
#
# Each injector is called once per cycle (starting at the scheduled
# injection cycle) with the live core and the task RNG.  It returns a
# description of the flip it applied, or None when the structure holds no
# live state this cycle — the session then retries on the next cycle, the
# way a real particle strike on an empty slot simply waits to matter.

def _inject_rob(core: TimingCore, rng: random.Random) -> Optional[str]:
    rob = core._rob
    if not rob:
        return None
    mode = rng.choice(("pointer", "payload", "status", "tag"))
    if mode == "pointer":
        direction = rng.choice((-1, 1))
        rob.rotate(direction)
        return f"rob head-pointer bit flip (window rotated {direction:+d})"
    index = rng.randrange(len(rob))
    winst = rob[index]
    if mode == "payload":
        field = rng.choice(("pc", "next_pc"))
        bit = rng.randrange(16)
        dyn = winst.dyn
        winst.dyn = dataclass_replace(
            dyn, **{field: _flip_bit(getattr(dyn, field), bit)}
        )
        return f"rob[{index}] payload bit {bit} of {field}"
    if mode == "status":
        winst.done = not winst.done
        return f"rob[{index}] done bit -> {winst.done} (seq {winst.seq})"
    bit = rng.randrange(8)
    winst.seq = _flip_bit(winst.seq, bit)
    return f"rob[{index}] seq tag bit {bit} -> {winst.seq}"


def _inject_regfile(core: TimingCore, rng: random.Random) -> Optional[str]:
    # The timing register file carries no values (the functional executor
    # did); its fault-relevant state is the in-flight entry accounting
    # that gates allocation.  An upward flip starves allocation (stall or
    # hang), a downward flip over-frees (release underflow -> crash).
    rf = core.rf
    bit = rng.randrange(max(1, rf.entries.bit_length()))
    rf.in_flight = _flip_bit(rf.in_flight, bit)
    return f"regfile in-flight counter bit {bit} -> {rf.in_flight}"


def _inject_lsq(core: TimingCore, rng: random.Random) -> Optional[str]:
    entries = core.lsq.entries()
    if not entries:
        return None
    entry = entries[rng.randrange(len(entries))]
    mode = rng.choice(("addr", "tag", "status"))
    if mode == "addr":
        bit = rng.randrange(3, 16)
        entry.word = _flip_bit(entry.word, bit)
        return f"lsq store seq {entry.seq} address bit {bit}"
    if mode == "tag":
        bit = rng.randrange(8)
        entry.seq = _flip_bit(entry.seq, bit)
        return f"lsq store tag bit {bit} -> {entry.seq}"
    # Valid/complete bit: a store flipping to "incomplete" wedges every
    # younger load to the same word (hang); flipping to "complete" lets
    # loads forward early (timing only in a trace-replay model).
    if entry.complete_cycle is None:
        entry.complete_cycle = 0
        return f"lsq store seq {entry.seq} complete bit set early"
    entry.complete_cycle = None
    return f"lsq store seq {entry.seq} complete bit cleared"


def _inject_checkpoints(core: TimingCore, rng: random.Random) -> Optional[str]:
    live = core.checkpoints.live()
    if not live:
        return None
    checkpoint = live[rng.randrange(len(live))]
    bit = rng.randrange(8)
    checkpoint.seq = _flip_bit(checkpoint.seq, bit)
    return f"checkpoint branch-tag bit {bit} -> seq {checkpoint.seq}"


def _inject_branchpred(core: TimingCore, rng: random.Random) -> Optional[str]:
    # Predictor state only steers fetch; the branch *outcome* comes from
    # the architectural trace.  Flipping a table bit therefore toggles
    # whether one future branch is treated as mispredicted — a pure
    # timing perturbation, which is why predictor AVF is ~0 (its state is
    # un-ACE: Mukherjee et al.'s canonical example).
    trace = core.trace
    start = core._next_fetch
    if start >= len(trace):
        return None
    for _ in range(8):
        index = rng.randrange(start, len(trace))
        dyn = trace[index]
        if not dyn.is_branch:
            continue
        flipped = set(core.mispredicted)  # copy: the set is trace-owned
        if dyn.seq in flipped:
            flipped.discard(dyn.seq)
            action = "cleared"
        else:
            flipped.add(dyn.seq)
            action = "set"
        core.mispredicted = flipped
        return f"branch-predictor bit {action} for branch seq {dyn.seq}"
    return None


#: structure name -> injector, for the structures every paradigm owns.
#: Paradigm-specific structures (schedulers, BEU FIFOs, partition bits)
#: are declared by each core class (``fault_structures`` /
#: ``fault_injectors``, see :class:`~repro.sim.core.TimingCore`) and
#: discovered through the core registry — a paradigm with no declared
#: injectors simply has no paradigm-specific structures, and asking for
#: a structure its class does not declare fails loudly instead of
#: sailing through a campaign as all-masked.
INJECTORS: Dict[str, Callable[[TimingCore, random.Random], Optional[str]]] = {
    "rob": _inject_rob,
    "regfile": _inject_regfile,
    "lsq": _inject_lsq,
    "checkpoints": _inject_checkpoints,
    "branchpred": _inject_branchpred,
}

_COMMON_STRUCTURES: Tuple[str, ...] = (
    "rob", "regfile", "lsq", "checkpoints", "branchpred",
)


def injectors_for(kind: CoreKind) -> Dict[str, Callable]:
    """structure name -> injector for one paradigm: the common set plus
    the class-declared paradigm-specific injectors.  Raises
    :class:`InjectorError` for a kind with no registered core."""
    try:
        core_class = descriptor_for(kind).core_class
    except LookupError as exc:
        raise InjectorError(str(exc)) from None
    merged = dict(INJECTORS)
    merged.update(core_class.fault_injectors)
    return merged


def known_structures() -> Tuple[str, ...]:
    """Every structure injectable on at least one registered paradigm."""
    names = list(_COMMON_STRUCTURES)
    for descriptor in core_registry().values():
        for structure in descriptor.core_class.fault_structures:
            if structure not in names:
                names.append(structure)
    return tuple(names)


def structures_for(kind: CoreKind) -> Tuple[str, ...]:
    """Injectable structures of one core paradigm, in report order.

    Fails loudly (:class:`InjectorError`) for a kind with no registered
    core — an unmodeled paradigm must never sail through a campaign as
    all-masked.
    """
    try:
        core_class = descriptor_for(kind).core_class
    except LookupError as exc:
        raise InjectorError(str(exc)) from None
    return _COMMON_STRUCTURES + tuple(core_class.fault_structures)


class FaultSession:
    """Arms one injection on a core via its per-cycle ``fault_hook``.

    The hook fires from ``inject_cycle`` onward and retries each cycle
    until the target structure holds live state; once the flip lands the
    hook detaches itself, so the remainder of the run pays only the
    instrumented-loop overhead, never extra work per cycle.
    """

    def __init__(
        self, structure: str, inject_cycle: int, rng: random.Random
    ) -> None:
        # Reject structures no registered paradigm declares at session
        # construction; the concrete injector (common table or the core
        # class's own declaration) is resolved when the core is known.
        known = known_structures()
        if structure not in known:
            raise InjectorError(
                f"unknown structure {structure!r}; "
                f"choose from {sorted(known)}"
            )
        self._injector: Optional[Callable] = None
        self.structure = structure
        self.inject_cycle = inject_cycle
        self.rng = rng
        self.injected = False
        self.applied_cycle: Optional[int] = None
        self.detail: Optional[str] = None

    def attach(self, core: TimingCore) -> "FaultSession":
        kind = core.config.kind
        if self.structure not in structures_for(kind):
            raise InjectorError(
                f"structure {self.structure!r} does not exist on "
                f"{kind.value} cores"
            )
        self._injector = injectors_for(kind)[self.structure]
        core.fault_hook = self._hook
        return self

    def _hook(self, core: TimingCore, cycle: int) -> None:
        if cycle < self.inject_cycle:
            return
        detail = self._injector(core, self.rng)
        if detail is None:
            return  # target not live this cycle; retry next cycle
        self.injected = True
        self.applied_cycle = cycle
        self.detail = detail
        core.fault_hook = None  # single-event upset: exactly one flip


def run_injection(
    workload,
    config: MachineConfig,
    structure: str,
    seed: int,
    baseline_cycles: int,
    max_cycles: Optional[int] = None,
) -> InjectionResult:
    """One injected run, classified into exactly one outcome.

    ``baseline_cycles`` is the fault-free run length; the injection
    cycle is drawn uniformly from it.  ``max_cycles`` bounds runaway
    runs (default: 8x the baseline plus slack) — exceeding it is a
    hang by definition.
    """
    rng = random.Random(seed)
    inject_cycle = rng.randrange(max(1, baseline_cycles))
    if max_cycles is None:
        max_cycles = 8 * max(1, baseline_cycles) + 10_000

    core = build_core(workload, config)
    checker = LockstepChecker(workload, fail_fast=True).attach(core)
    session = FaultSession(structure, inject_cycle, rng).attach(core)

    outcome = FaultOutcome.MASKED
    error: Optional[str] = None
    try:
        core.run(max_cycles=max_cycles)
        divergences = checker.finish(expect_full=True)
    except DivergenceError as exc:
        outcome = FaultOutcome.SDC
        error = str(exc).splitlines()[0]
    except InjectorError:
        raise  # infrastructure failure: retried/quarantined upstream
    except SimulationError as exc:
        # SimulationHang and the whole-run cycle cap: forward progress
        # stopped either way.
        outcome = FaultOutcome.HANG
        error = str(exc).splitlines()[0]
    except Exception as exc:  # noqa: BLE001 - the machine detectably died
        outcome = FaultOutcome.CRASH
        error = f"{type(exc).__name__}: {exc}"
    else:
        if divergences:
            outcome = FaultOutcome.SDC
            error = divergences[0].render()
    return InjectionResult(
        benchmark=workload.name,
        machine=config.name,
        structure=structure,
        seed=seed,
        outcome=outcome,
        injected=session.injected,
        applied_cycle=session.applied_cycle,
        detail=session.detail,
        error=error,
    )
