"""Fault-injection campaigns: plan, dispatch, journal, resume, report.

A campaign is a deterministic grid — ``benchmarks x cores x structures
x runs`` — of single-bit injections.  For each (benchmark, core) pair a
fault-free baseline run first establishes the run length (injection
cycles are drawn from it) and proves the lockstep oracle is clean, so
every later divergence is attributable to the injected flip.

Dispatch goes through :func:`repro.harness.parallel.run_tasks_hardened`:
injected runs are *expected* to wedge, die, or blow past their time
budget, and the hardened runner turns those events into per-task
retries/quarantine instead of campaign aborts.  Every settled task is
appended to a crash-safe JSONL journal (write + flush + fsync per
record), so a campaign killed mid-flight resumes with ``--resume``
without rerunning completed injections.

Determinism: each task's RNG is seeded from a SHA-256 digest of the
campaign seed and the task id (Python's tuple ``hash`` is salted per
process and useless here), simulations are themselves deterministic,
and the report sorts every aggregation — two same-seed campaigns print
bit-identical reports regardless of worker scheduling.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from dataclasses import replace as config_replace
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from ..analysis.avf import avf_report
from ..harness.parallel import TaskOutcome, run_tasks_hardened
from ..sim.config import MachineConfig
from ..sim.run import build_core
from ..validate.lockstep import LockstepChecker
from ..validate.runner import CORE_FACTORIES
from .inject import known_structures, run_injection, structures_for
from .model import InjectionResult

#: bump when task semantics change; stale journals then refuse to resume
CAMPAIGN_FORMAT_VERSION = 1


class CampaignError(RuntimeError):
    """Campaign-level misconfiguration or an unusable journal."""


@dataclass(frozen=True)
class CampaignSpec:
    """Everything that determines a campaign's task grid and seeds."""

    benchmarks: Tuple[str, ...]
    cores: Tuple[str, ...] = ("braid", "ooo")
    #: None: every structure the core kind has
    structures: Optional[Tuple[str, ...]] = None
    runs: int = 32
    seed: int = 0
    scale: float = 1.0
    #: retirement-watchdog window for injected runs (cycles)
    hang_cycles: int = 20_000
    #: per-task wall-clock budget for the hardened runner (seconds)
    timeout: float = 120.0
    jobs: int = 1

    def digest(self) -> str:
        """Identity of the task grid (journal compatibility check)."""
        key = (
            CAMPAIGN_FORMAT_VERSION,
            self.benchmarks,
            self.cores,
            self.structures,
            self.runs,
            self.seed,
            self.scale,
            self.hang_cycles,
        )
        return hashlib.sha256(repr(key).encode("utf-8")).hexdigest()[:16]

    def validate(self) -> None:
        unknown = [key for key in self.cores if key not in CORE_FACTORIES]
        if unknown:
            raise CampaignError(
                f"unknown cores {unknown}; "
                f"choose from {sorted(CORE_FACTORIES)}"
            )
        if self.structures is not None:
            known = known_structures()
            bad = [s for s in self.structures if s not in known]
            if bad:
                raise CampaignError(
                    f"unknown structures {bad}; "
                    f"choose from {sorted(known)}"
                )
        if self.runs < 1:
            raise CampaignError("runs must be >= 1")


@dataclass(frozen=True)
class InjectionTask:
    """One planned injection (picklable: travels through worker queues)."""

    task_id: str
    benchmark: str
    core_key: str
    structure: str
    run: int


def _task_seed(campaign_seed: int, task_id: str) -> int:
    """Stable 64-bit per-task seed (process-salt-free, unlike hash())."""
    digest = hashlib.sha256(f"{campaign_seed}:{task_id}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


#: Campaign context inherited by forked hardened workers (and read
#: directly on the serial path).  Maps are keyed by picklable task
#: fields so the tasks themselves stay tiny on the queues.
_CAMPAIGN_STATE: Optional[Dict] = None


def _execute_task(task: InjectionTask) -> InjectionResult:
    """Worker-side entry: one injection run, classified."""
    state = _CAMPAIGN_STATE
    if state is None:
        raise RuntimeError("campaign state not initialised in this process")
    workload = state["workloads"][(task.benchmark, task.core_key)]
    config = state["configs"][task.core_key]
    baseline_cycles = state["baselines"][(task.benchmark, task.core_key)]
    return run_injection(
        workload,
        config,
        task.structure,
        seed=_task_seed(state["seed"], task.task_id),
        baseline_cycles=baseline_cycles,
    )


# ----------------------------------------------------------------- journal
class CampaignJournal:
    """Append-only JSONL journal; each record survives a parent SIGKILL.

    A thin layer over the shared
    :class:`~repro.service.journal.JsonlJournal` durability idiom
    (fsynced appends, digest-guarded header, torn-tail-tolerant load):
    resuming against a journal written by a different grid is refused
    rather than silently mixing incompatible records, and a torn final
    line (the crash caught a write mid-record) just reruns that task.
    """

    def __init__(self, path: Path, digest: str, resume: bool) -> None:
        from ..service.journal import JournalError, JsonlJournal

        self.path = Path(path)
        self.digest = digest
        self.completed: Dict[str, Dict] = {}
        try:
            self._journal = JsonlJournal(
                self.path,
                kind="faults-journal",
                version=CAMPAIGN_FORMAT_VERSION,
                digest=digest,
                resume=resume,
            )
        except JournalError as error:
            message = str(error)
            if "digest" in message:
                raise CampaignError(
                    f"journal {self.path} was written by a different "
                    f"campaign; {message}"
                ) from None
            raise CampaignError(message) from None
        for record in self._journal.records:
            task_id = record.get("task")
            if task_id:
                self.completed[task_id] = record

    def record(self, outcome: TaskOutcome) -> None:
        """Journal one settled task (the hardened runner's on_result)."""
        record = {
            "task": outcome.task_id,
            "status": outcome.status,
            "attempts": outcome.attempts,
            "result": (
                outcome.result.to_json()
                if outcome.status == "ok" and outcome.result is not None
                else None
            ),
            "error": outcome.error,
        }
        self.completed[outcome.task_id] = record
        self._journal.append(record)

    def close(self) -> None:
        self._journal.close()


# ------------------------------------------------------------------ report
@dataclass
class CampaignReport:
    """Deterministic rendering of one campaign's classified grid."""

    spec: CampaignSpec
    configs: Dict[str, MachineConfig]
    baselines: Dict[Tuple[str, str], int]
    #: task_id -> journal-shaped record, every planned task present
    records: Dict[str, Dict] = field(default_factory=dict)
    resumed: int = 0

    @property
    def results(self) -> List[InjectionResult]:
        ordered = []
        for task_id in sorted(self.records):
            record = self.records[task_id]
            if record["status"] == "ok" and record.get("result"):
                ordered.append(InjectionResult.from_json(record["result"]))
        return ordered

    @property
    def quarantined(self) -> List[Tuple[str, str]]:
        return sorted(
            (task_id, record.get("error") or "unknown failure")
            for task_id, record in self.records.items()
            if record["status"] != "ok"
        )

    @property
    def passed(self) -> bool:
        return not self.quarantined

    def render(self) -> str:
        results = self.results
        lines = [
            f"fault-injection campaign (seed {self.spec.seed}, "
            f"{self.spec.runs} runs/structure):",
        ]
        for (benchmark, core_key), cycles in sorted(self.baselines.items()):
            lines.append(
                f"  baseline {benchmark} on "
                f"{self.configs[core_key].name}: {cycles} cycles"
            )
        if self.resumed:
            lines.append(
                f"  resumed: {self.resumed} injection(s) restored from "
                f"the journal"
            )
        lines.append("")
        lines.append(
            avf_report(
                results,
                {cfg.name: cfg for cfg in self.configs.values()},
            ).render()
        )
        skipped = sum(1 for result in results if not result.injected)
        if skipped:
            lines.append("")
            lines.append(
                f"note: {skipped} injection(s) found the target structure "
                f"empty for the rest of the run (counted as masked)"
            )
        if self.quarantined:
            lines.append("")
            lines.append("quarantined tasks (infrastructure failures):")
            for task_id, error in self.quarantined:
                lines.append(f"  {task_id}: {error}")
        lines.append("")
        status = "COMPLETE" if self.passed else "INCOMPLETE"
        lines.append(
            f"CAMPAIGN {status}: {len(results)} injection(s) classified, "
            f"{len(self.quarantined)} quarantined"
        )
        return "\n".join(lines)


# -------------------------------------------------------------------- run
def plan_tasks(spec: CampaignSpec) -> List[InjectionTask]:
    """The campaign's deterministic task grid, in report order."""
    tasks: List[InjectionTask] = []
    for benchmark in spec.benchmarks:
        for core_key in spec.cores:
            factory, _braided = CORE_FACTORIES[core_key]
            kind = factory().kind
            structures = structures_for(kind)
            if spec.structures is not None:
                structures = tuple(
                    s for s in structures if s in spec.structures
                )
            for structure in structures:
                for run in range(spec.runs):
                    task_id = f"{benchmark}/{core_key}/{structure}/{run}"
                    tasks.append(InjectionTask(
                        task_id=task_id,
                        benchmark=benchmark,
                        core_key=core_key,
                        structure=structure,
                        run=run,
                    ))
    return tasks


def run_campaign(
    context,
    spec: CampaignSpec,
    journal_path: Optional[Path] = None,
    resume: bool = False,
) -> CampaignReport:
    """Execute (or resume) a campaign; returns the renderable report."""
    global _CAMPAIGN_STATE
    spec.validate()

    configs: Dict[str, MachineConfig] = {}
    workloads: Dict[Tuple[str, str], object] = {}
    baselines: Dict[Tuple[str, str], int] = {}
    for core_key in spec.cores:
        factory, braided = CORE_FACTORIES[core_key]
        config = config_replace(
            factory(), max_idle_cycles=spec.hang_cycles
        )
        configs[core_key] = config
        for benchmark in spec.benchmarks:
            workload = context.workload(benchmark, braided=braided)
            workloads[(benchmark, core_key)] = workload
            # Fault-free baseline: proves the oracle is clean and fixes
            # the cycle range injections are drawn from.
            core = build_core(workload, config)
            checker = LockstepChecker(workload).attach(core)
            result = core.run()
            divergences = checker.finish(expect_full=True)
            if divergences:
                raise CampaignError(
                    f"fault-free baseline diverged: "
                    f"{divergences[0].render()}"
                )
            baselines[(benchmark, core_key)] = result.cycles

    tasks = plan_tasks(spec)
    if journal_path is None:
        journal_path = Path(
            context.cache.root
        ) / "faults" / f"campaign-{spec.digest()}.jsonl"
    journal = CampaignJournal(journal_path, spec.digest(), resume=resume)
    try:
        planned_ids = {task.task_id for task in tasks}
        restored = {
            task_id: record
            for task_id, record in journal.completed.items()
            if task_id in planned_ids
        }
        pending = [
            task for task in tasks if task.task_id not in restored
        ]
        _CAMPAIGN_STATE = {
            "workloads": workloads,
            "configs": configs,
            "baselines": baselines,
            "seed": spec.seed,
        }
        try:
            outcomes = run_tasks_hardened(
                _execute_task,
                [(task.task_id, task) for task in pending],
                jobs=spec.jobs,
                timeout=spec.timeout,
                on_result=journal.record,
            )
        finally:
            _CAMPAIGN_STATE = None
        records = dict(restored)
        for outcome in outcomes:
            records[outcome.task_id] = journal.completed[outcome.task_id]
    finally:
        journal.close()
    return CampaignReport(
        spec=spec,
        configs=configs,
        baselines=baselines,
        records=records,
        resumed=len(restored),
    )
