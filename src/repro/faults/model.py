"""Fault model and outcome taxonomy for transient-fault injection.

The model is the standard single-event-upset abstraction used by AVF
studies (Mukherjee et al., MICRO 2003): exactly **one** bit of live
microarchitectural state flips at one cycle of one run, and the run is
then observed to completion.  Every injected run terminates in exactly
one of four ways:

* **masked** — the run retires the full trace and the retirement stream
  and final architectural state match the fault-free oracle bit for bit
  (the flipped bit was dead, overwritten, or influenced timing only);
* **sdc** — silent data corruption: the run completes (or dies inside
  the checker) but the lockstep oracle observes a divergent retirement
  stream or final state;
* **crash** — the simulated machine raises a detectable error (an
  exception other than the hang watchdog) before finishing;
* **hang** — the retirement watchdog
  (:class:`~repro.sim.core.SimulationHang`) or the whole-run cycle cap
  fires: the machine stopped making forward progress.

The architectural vulnerability factor of a structure is the non-masked
fraction of its injections; :mod:`repro.analysis.avf` weights it by the
structure's storage bits to rank end-to-end vulnerability per machine.
"""

from __future__ import annotations

import enum
from dataclasses import asdict, dataclass
from typing import Any, Dict, Optional


class FaultOutcome(str, enum.Enum):
    """The four terminal classifications of one injected run."""

    MASKED = "masked"
    SDC = "sdc"
    CRASH = "crash"
    HANG = "hang"


#: render order for reports (most benign first)
OUTCOME_ORDER = (
    FaultOutcome.MASKED,
    FaultOutcome.SDC,
    FaultOutcome.CRASH,
    FaultOutcome.HANG,
)


class InjectorError(RuntimeError):
    """Infrastructure failure inside the injection machinery itself.

    Never a domain outcome: a raised ``InjectorError`` propagates out of
    :func:`~repro.faults.inject.run_injection` so the hardened runner
    retries/quarantines the task instead of mislabelling it a crash.
    """


@dataclass(frozen=True)
class InjectionResult:
    """One classified injection run (picklable, JSON-serializable)."""

    benchmark: str
    machine: str
    structure: str
    seed: int
    outcome: FaultOutcome
    #: False when the target structure never held live state after the
    #: scheduled cycle — architecturally equivalent to a masked flip of
    #: an empty slot, and classified as such.
    injected: bool
    #: cycle the flip was actually applied (None when never injected)
    applied_cycle: Optional[int]
    #: human-readable description of the exact bit flipped
    detail: Optional[str]
    #: first line of the error for sdc/crash/hang outcomes
    error: Optional[str] = None

    def to_json(self) -> Dict[str, Any]:
        record = asdict(self)
        record["outcome"] = self.outcome.value
        return record

    @classmethod
    def from_json(cls, record: Dict[str, Any]) -> "InjectionResult":
        record = dict(record)
        record["outcome"] = FaultOutcome(record["outcome"])
        return cls(**record)
