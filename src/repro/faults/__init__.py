"""Transient-fault injection and AVF measurement (``repro.faults``).

Deterministic, seeded single-bit-flip campaigns over live
microarchitectural state of all four timing cores, with every injected
run classified into exactly one of {masked, sdc, crash, hang} against
the lockstep architectural oracle.  See :mod:`repro.faults.model` for
the fault model, :mod:`repro.faults.inject` for the per-structure
injectors, and :mod:`repro.faults.campaign` for the hardened campaign
runner with its crash-safe resume journal.

Command line::

    python -m repro.harness faults --cores braid,ooo --runs 32 --seed 7
"""

from .campaign import (
    CampaignError,
    CampaignJournal,
    CampaignReport,
    CampaignSpec,
    InjectionTask,
    plan_tasks,
    run_campaign,
)
from .inject import (
    INJECTORS,
    FaultSession,
    injectors_for,
    known_structures,
    run_injection,
    structures_for,
)
from .model import (
    OUTCOME_ORDER,
    FaultOutcome,
    InjectionResult,
    InjectorError,
)

__all__ = [
    "CampaignError",
    "CampaignJournal",
    "CampaignReport",
    "CampaignSpec",
    "FaultOutcome",
    "FaultSession",
    "INJECTORS",
    "InjectionResult",
    "InjectionTask",
    "InjectorError",
    "OUTCOME_ORDER",
    "injectors_for",
    "known_structures",
    "plan_tasks",
    "run_campaign",
    "run_injection",
    "structures_for",
]
