"""Dynamic energy estimation for the execution core (paper section 5.1).

The paper argues the braid machine saves power in three places: FIFO
schedulers "do not broadcast tags to the entire structure [so] consume less
power", the partitioned register files slash entry-port products (Zyuban &
Kogge's register-file energy complexity), and the narrow bypass network
moves far fewer values.  This module turns those arguments into first-order
per-run energy estimates from the activity counters every simulation
collects.

Units are arbitrary but consistent (one bit-line charge on a 1-entry,
1-port, 64-bit array ~ 1 unit), so only *ratios* between machines are
meaningful — which is all the section 5.1 comparison needs.

Per-event models:

* register file access: ``sqrt(entries) * (read_ports + write_ports)``
  (word-line plus bit-line capacitance both scale with the port count; the
  array dimension contributes as the square root under a square layout);
* scheduler wakeup: one tag broadcast drives comparators in every window
  entry (``2 * window_entries`` per completing instruction) for a broadcast
  scheduler; a FIFO window charges only its head entries;
* bypass forward: proportional to the network width (wire span).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

from ..sim.config import MachineConfig
from ..sim.registry import descriptor_for
from ..sim.results import SimResult


@dataclass(frozen=True)
class EnergyBreakdown:
    """Per-structure dynamic energy for one simulation run."""

    machine: str
    benchmark: str
    regfile: float
    scheduler: float
    bypass: float

    @property
    def total(self) -> float:
        return self.regfile + self.scheduler + self.bypass

    @property
    def instructions(self) -> float:
        return self._instructions

    def as_dict(self) -> Dict[str, float]:
        return {
            "regfile": self.regfile,
            "scheduler": self.scheduler,
            "bypass": self.bypass,
            "total": self.total,
        }


def _access_energy(entries: int, read_ports: int, write_ports: int) -> float:
    return math.sqrt(entries) * (read_ports + write_ports)


def estimate_energy(config: MachineConfig, result: SimResult) -> EnergyBreakdown:
    """Estimate execution-core dynamic energy for one finished run.

    Requires an exact run: a sampled :class:`SimResult` carries activity
    counters (``issued``, ``rf_reads``...) that cover only the detailed
    windows, so dividing by the full ``instructions`` total would silently
    understate energy per instruction by the sampling fraction.
    """
    if result.sampled:
        raise ValueError(
            f"energy estimation needs exact activity totals, but "
            f"{result.benchmark}/{result.machine} is an interval-sampled "
            f"run (counters cover {result.counters_cover} of "
            f"{result.instructions} instructions); rerun without sampling"
        )
    extra = result.extra
    main_access = _access_energy(
        config.regfile.entries,
        config.regfile.read_ports,
        config.regfile.write_ports,
    )
    regfile = (extra.get("rf_reads", 0.0) + extra.get("rf_writes", 0.0)) * main_access

    if config.internal_regfile is not None:
        spec = config.internal_regfile
        internal_access = _access_energy(
            spec.entries, spec.read_ports, spec.write_ports
        )
        regfile += (
            extra.get("internal_rf_reads", 0.0)
            + extra.get("internal_rf_writes", 0.0)
        ) * internal_access

    # Each completing instruction's tag touches the paradigm-declared
    # number of window entries (broadcast: the whole window; FIFO heads /
    # limited windows: only the examined entries) at 2 comparators each.
    core_class = descriptor_for(config.kind).core_class
    scheduler = (
        float(result.issued) * 2 * core_class.wakeup_energy_entries(config)
    )

    bypass = extra.get("bypass_forwards", 0.0) * config.bypass_width

    breakdown = EnergyBreakdown(
        machine=config.name,
        benchmark=result.benchmark,
        regfile=regfile,
        scheduler=scheduler,
        bypass=bypass,
    )
    object.__setattr__(breakdown, "_instructions", float(result.instructions))
    return breakdown


def energy_per_instruction(breakdown: EnergyBreakdown) -> float:
    """Total estimated energy divided by retired instructions."""
    if breakdown.instructions == 0:
        return 0.0
    return breakdown.total / breakdown.instructions


def compare_energy(
    subject: EnergyBreakdown, baseline: EnergyBreakdown
) -> Dict[str, float]:
    """Structure-by-structure energy ratios (subject / baseline)."""
    ratios: Dict[str, float] = {}
    subject_values = subject.as_dict()
    baseline_values = baseline.as_dict()
    for key, base in baseline_values.items():
        ratios[key] = subject_values[key] / base if base else 0.0
    ratios["per_instruction"] = (
        energy_per_instruction(subject) / energy_per_instruction(baseline)
        if energy_per_instruction(baseline)
        else 0.0
    )
    return ratios
