"""Braid statistics: the paper's Tables 1, 2, and 3.

* Table 1 — braids per basic block, with and without single-instruction
  braids, plus the single-instruction braid population breakdown;
* Table 2 — braid size (instructions) and width (size / longest dataflow
  path);
* Table 3 — internal values, external inputs, and external outputs per
  braid.

Statistics are computed statically over the translated program (the paper's
profiling tool also works on the static binary), per benchmark, with
integer/floating-point suite averages.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.braid import classify_braid_io
from ..core.pipeline import BraidCompilation
from ..dataflow.graph import BlockGraph
from ..dataflow.liveness import LivenessAnalysis


@dataclass
class BraidRecord:
    """Shape and IO of one braid."""

    block_index: int
    size: int
    width: float
    internals: int
    external_inputs: int
    external_outputs: int
    is_branch: bool = False
    is_nop: bool = False

    @property
    def is_single(self) -> bool:
        return self.size == 1


@dataclass
class BenchmarkBraidStats:
    """Aggregated braid statistics for one benchmark (one table row)."""

    name: str
    suite: str
    records: List[BraidRecord] = field(default_factory=list)
    basic_blocks: int = 0

    # ---------------------------------------------------------------- helpers
    def _selected(self, exclude_singles: bool) -> List[BraidRecord]:
        if exclude_singles:
            return [r for r in self.records if not r.is_single]
        return self.records

    def _mean(self, values: List[float]) -> float:
        return sum(values) / len(values) if values else 0.0

    # ----------------------------------------------------------------- Table 1
    def braids_per_block(self, exclude_singles: bool = False) -> float:
        selected = self._selected(exclude_singles)
        return len(selected) / self.basic_blocks if self.basic_blocks else 0.0

    @property
    def single_fraction(self) -> float:
        """Fraction of all *instructions* that are single-instruction braids
        (paper: 20%)."""
        instructions = sum(r.size for r in self.records)
        singles = sum(1 for r in self.records if r.is_single)
        return singles / instructions if instructions else 0.0

    @property
    def single_branch_nop_fraction(self) -> float:
        """Of single-instruction braids, the branch+nop share (paper: 56%)."""
        singles = [r for r in self.records if r.is_single]
        if not singles:
            return 0.0
        hits = sum(1 for r in singles if r.is_branch or r.is_nop)
        return hits / len(singles)

    # ----------------------------------------------------------------- Table 2
    def mean_size(self, exclude_singles: bool = False) -> float:
        return self._mean([r.size for r in self._selected(exclude_singles)])

    def mean_width(self, exclude_singles: bool = False) -> float:
        return self._mean([r.width for r in self._selected(exclude_singles)])

    # ----------------------------------------------------------------- Table 3
    def mean_internals(self, exclude_singles: bool = False) -> float:
        return self._mean([r.internals for r in self._selected(exclude_singles)])

    def mean_external_inputs(self, exclude_singles: bool = False) -> float:
        return self._mean(
            [r.external_inputs for r in self._selected(exclude_singles)]
        )

    def mean_external_outputs(self, exclude_singles: bool = False) -> float:
        return self._mean(
            [r.external_outputs for r in self._selected(exclude_singles)]
        )


def braid_statistics(
    compilation: BraidCompilation, suite: str = ""
) -> BenchmarkBraidStats:
    """Compute the Tables 1-3 statistics for one compiled benchmark."""
    program = compilation.report.blocks[0].original if compilation.report.blocks else None
    stats = BenchmarkBraidStats(
        name=compilation.original.name,
        suite=suite,
        basic_blocks=len(compilation.original.blocks),
    )
    liveness = LivenessAnalysis(
        compilation.compaction.program if compilation.compaction else compilation.original
    )
    for translation in compilation.report.blocks:
        block = translation.original
        graph = BlockGraph(block)
        escaping = set(liveness.escaping_defs(block))
        for braid in translation.braids:
            io = classify_braid_io(braid, graph, escaping)
            first = block.instructions[braid.positions[0]]
            stats.records.append(
                BraidRecord(
                    block_index=block.index,
                    size=braid.size,
                    width=braid.width(graph),
                    internals=io.num_internal,
                    external_inputs=io.num_external_inputs,
                    external_outputs=io.num_external_outputs,
                    is_branch=any(
                        block.instructions[p].is_branch for p in braid.positions
                    ),
                    is_nop=braid.size == 1 and first.is_nop,
                )
            )
    return stats


@dataclass
class SuiteBraidStats:
    """Per-benchmark rows plus integer/floating-point averages."""

    rows: Dict[str, BenchmarkBraidStats] = field(default_factory=dict)

    def average(self, metric: str, suite: Optional[str] = None,
                exclude_singles: bool = False) -> float:
        values = [
            getattr(row, metric)(exclude_singles)
            for row in self.rows.values()
            if suite is None or row.suite == suite
        ]
        return sum(values) / len(values) if values else 0.0
