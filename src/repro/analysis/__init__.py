"""Analyses reproducing the paper's characterization data."""

from .energy import (
    EnergyBreakdown,
    compare_energy,
    energy_per_instruction,
    estimate_energy,
)
from .complexity import (
    ComplexityComparison,
    StructureCost,
    compare_complexity,
    regfile_area,
    structure_cost,
)
from .braidstats import (
    BenchmarkBraidStats,
    BraidRecord,
    SuiteBraidStats,
    braid_statistics,
)
from .values import (
    ValueCharacterization,
    average_fractions,
    characterize_suite,
    characterize_values,
)

__all__ = [
    "EnergyBreakdown",
    "compare_energy",
    "energy_per_instruction",
    "estimate_energy",
    "ComplexityComparison",
    "StructureCost",
    "compare_complexity",
    "regfile_area",
    "structure_cost",
    "BenchmarkBraidStats",
    "BraidRecord",
    "SuiteBraidStats",
    "braid_statistics",
    "ValueCharacterization",
    "average_fractions",
    "characterize_suite",
    "characterize_values",
]
