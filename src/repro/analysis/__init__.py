"""Analyses reproducing the paper's characterization data."""

from .energy import (
    EnergyBreakdown,
    compare_energy,
    energy_per_instruction,
    estimate_energy,
)
from .avf import (
    AVFReport,
    StructureAVF,
    avf_report,
)
from .complexity import (
    ComplexityComparison,
    StructureCost,
    compare_complexity,
    regfile_area,
    storage_bits,
    structure_cost,
)
from .braidstats import (
    BenchmarkBraidStats,
    BraidRecord,
    SuiteBraidStats,
    braid_statistics,
)
from .values import (
    ValueCharacterization,
    average_fractions,
    characterize_suite,
    characterize_values,
)

__all__ = [
    "EnergyBreakdown",
    "compare_energy",
    "energy_per_instruction",
    "estimate_energy",
    "AVFReport",
    "StructureAVF",
    "avf_report",
    "ComplexityComparison",
    "StructureCost",
    "compare_complexity",
    "regfile_area",
    "storage_bits",
    "structure_cost",
    "BenchmarkBraidStats",
    "BraidRecord",
    "SuiteBraidStats",
    "braid_statistics",
    "ValueCharacterization",
    "average_fractions",
    "characterize_suite",
    "characterize_values",
]
