"""Design-complexity analysis (paper section 5.1).

The paper's complexity argument is qualitative; this module makes it
quantitative with standard first-order models so the two machines can be
compared structure by structure:

* **Register files** — area grows linearly in entries and quadratically in
  ports ("doubling the number of register ports doubles the number of
  bit-lines and doubles the number of word-lines causing a quadratic
  increase in area", Farkas et al. / Zyuban & Kogge).  Area unit: one
  entry-bit-cell equivalent, ``entries * (reads + writes)^2 * width``.
* **Schedulers** — wakeup cost is modelled as CAM tag comparators:
  ``window_entries * sources_per_entry * broadcast_ports`` for a broadcast
  scheduler, zero broadcast for a FIFO whose window only inspects its head
  entries.
* **Bypass network** — wire cost ``levels * width^2`` (every producer must
  reach every consumer at each level).
* **Rename** — ported map-table accesses per cycle.
* **Checkpoints** — words of state saved per checkpoint (the braid machine
  excludes internal registers, paper section 3.4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..sim.config import MachineConfig
from ..sim.registry import descriptor_for

#: architectural registers whose state a checkpoint must cover
_ARCH_REGS = 64
#: value width in bits
_WIDTH = 64


@dataclass(frozen=True)
class StructureCost:
    """Comparable cost figures for one machine's execution core."""

    machine: str
    regfile_area: float
    scheduler_comparators: int
    bypass_wires: int
    rename_ports: int
    checkpoint_words: int

    def as_dict(self) -> Dict[str, float]:
        return {
            "regfile_area": self.regfile_area,
            "scheduler_comparators": self.scheduler_comparators,
            "bypass_wires": self.bypass_wires,
            "rename_ports": self.rename_ports,
            "checkpoint_words": self.checkpoint_words,
        }


def regfile_area(entries: int, reads: int, writes: int,
                 width: int = _WIDTH) -> float:
    """First-order register file area: entries x ports^2 x bit width."""
    return float(entries) * (reads + writes) ** 2 * width


def structure_cost(config: MachineConfig) -> StructureCost:
    """Cost the execution-core structures of one machine configuration.

    Paradigm-specific terms come from the registered core class's
    declarations (:class:`~repro.sim.core.TimingCore`): the wakeup
    comparator count, whether registers are renamed, and whether branch
    checkpoints must cover speculative register values.  The first-order
    hardware models stay here; which structures a paradigm has stays
    with the paradigm.
    """
    core_class = descriptor_for(config.kind).core_class
    main_rf = regfile_area(
        config.regfile.entries,
        config.regfile.read_ports,
        config.regfile.write_ports,
    )
    internal_rf = 0.0
    if config.internal_regfile is not None:
        spec = config.internal_regfile
        internal_rf = config.clusters * regfile_area(
            spec.entries, spec.read_ports, spec.write_ports
        )

    comparators = core_class.scheduler_comparators(config)
    if core_class.renames_registers:
        rename_ports = (
            config.front_end.rename_src_ops + config.front_end.rename_dest_ops
        )
    else:
        rename_ports = 0
    checkpoint_words = _ARCH_REGS
    if core_class.checkpoints_value_entries:
        checkpoint_words += config.regfile.entries

    bypass_wires = config.bypass_levels * config.bypass_width ** 2

    return StructureCost(
        machine=config.name,
        regfile_area=main_rf + internal_rf,
        scheduler_comparators=comparators,
        bypass_wires=bypass_wires,
        rename_ports=rename_ports,
        checkpoint_words=checkpoint_words,
    )


#: modelled bookkeeping bits per structure entry (fault-injection weights)
_ROB_ENTRY_BITS = 64
_LSQ_ENTRY_BITS = 128
_SCHEDULER_ENTRY_BITS = 32
_BEU_FIFO_ENTRY_BITS = 32
#: an 8 KB predictor table, identical across paradigms
_PREDICTOR_BITS = 8 * 1024 * 8


#: per-entry bit constants handed to each core class's
#: ``fault_state_bits`` formula — the analysis layer owns the hardware
#: model constants, the paradigm owns which structures exist and how
#: they scale
STATE_BIT_WEIGHTS: Dict[str, int] = {
    "scheduler_entry": _SCHEDULER_ENTRY_BITS,
    "beu_fifo_entry": _BEU_FIFO_ENTRY_BITS,
    "value_width": _WIDTH,
}


def storage_bits(config: MachineConfig) -> Dict[str, int]:
    """Storage bits per injectable structure (AVF weights).

    Keys match the structure names of :mod:`repro.faults.inject`: the
    common structures are modelled here, and each paradigm's specific
    structures come from its core class's ``fault_state_bits``
    declaration (weighted by :data:`STATE_BIT_WEIGHTS`).  A core class
    whose declared ``fault_structures`` and modelled bits disagree fails
    loudly — an injectable structure with no storage weight would
    silently zero its AVF contribution.
    """
    core_class = descriptor_for(config.kind).core_class
    checkpoint_words = structure_cost(config).checkpoint_words
    bits: Dict[str, int] = {
        "rob": config.max_in_flight * _ROB_ENTRY_BITS,
        "regfile": config.regfile.entries * _WIDTH,
        "lsq": config.lsq_entries * _LSQ_ENTRY_BITS,
        "checkpoints": config.max_branches * checkpoint_words * _WIDTH,
        "branchpred": _PREDICTOR_BITS,
    }
    internal = config.internal_regfile
    if internal is not None:
        bits["regfile"] += config.clusters * internal.entries * _WIDTH
    paradigm_bits = core_class.fault_state_bits(config, STATE_BIT_WEIGHTS)
    declared = set(core_class.fault_structures)
    if set(paradigm_bits) != declared:
        raise ValueError(
            f"{core_class.__name__} fault_state_bits keys "
            f"{sorted(paradigm_bits)} do not match its declared "
            f"fault_structures {sorted(declared)}"
        )
    bits.update(paradigm_bits)
    return bits


@dataclass(frozen=True)
class ComplexityComparison:
    """Side-by-side structure costs plus headline ratios."""

    subject: StructureCost
    baseline: StructureCost

    def ratio(self, field: str) -> float:
        base = getattr(self.baseline, field)
        if base == 0:
            return 0.0
        return getattr(self.subject, field) / base

    def render(self) -> str:
        lines = [
            f"complexity: {self.subject.machine} vs {self.baseline.machine}",
            f"{'structure':24s} {self.subject.machine:>14s} "
            f"{self.baseline.machine:>14s} {'ratio':>8s}",
        ]
        for field in (
            "regfile_area",
            "scheduler_comparators",
            "bypass_wires",
            "rename_ports",
            "checkpoint_words",
        ):
            mine = getattr(self.subject, field)
            base = getattr(self.baseline, field)
            ratio = f"{self.ratio(field):8.3f}" if base else "     n/a"
            lines.append(f"{field:24s} {mine:14.0f} {base:14.0f} {ratio}")
        return "\n".join(lines)


def compare_complexity(
    subject: MachineConfig, baseline: MachineConfig
) -> ComplexityComparison:
    """Compare two machines structure by structure (paper section 5.1)."""
    return ComplexityComparison(
        subject=structure_cost(subject),
        baseline=structure_cost(baseline),
    )
