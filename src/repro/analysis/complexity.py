"""Design-complexity analysis (paper section 5.1).

The paper's complexity argument is qualitative; this module makes it
quantitative with standard first-order models so the two machines can be
compared structure by structure:

* **Register files** — area grows linearly in entries and quadratically in
  ports ("doubling the number of register ports doubles the number of
  bit-lines and doubles the number of word-lines causing a quadratic
  increase in area", Farkas et al. / Zyuban & Kogge).  Area unit: one
  entry-bit-cell equivalent, ``entries * (reads + writes)^2 * width``.
* **Schedulers** — wakeup cost is modelled as CAM tag comparators:
  ``window_entries * sources_per_entry * broadcast_ports`` for a broadcast
  scheduler, zero broadcast for a FIFO whose window only inspects its head
  entries.
* **Bypass network** — wire cost ``levels * width^2`` (every producer must
  reach every consumer at each level).
* **Rename** — ported map-table accesses per cycle.
* **Checkpoints** — words of state saved per checkpoint (the braid machine
  excludes internal registers, paper section 3.4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..sim.config import CoreKind, MachineConfig

#: architectural registers whose state a checkpoint must cover
_ARCH_REGS = 64
#: value width in bits
_WIDTH = 64


@dataclass(frozen=True)
class StructureCost:
    """Comparable cost figures for one machine's execution core."""

    machine: str
    regfile_area: float
    scheduler_comparators: int
    bypass_wires: int
    rename_ports: int
    checkpoint_words: int

    def as_dict(self) -> Dict[str, float]:
        return {
            "regfile_area": self.regfile_area,
            "scheduler_comparators": self.scheduler_comparators,
            "bypass_wires": self.bypass_wires,
            "rename_ports": self.rename_ports,
            "checkpoint_words": self.checkpoint_words,
        }


def regfile_area(entries: int, reads: int, writes: int,
                 width: int = _WIDTH) -> float:
    """First-order register file area: entries x ports^2 x bit width."""
    return float(entries) * (reads + writes) ** 2 * width


def structure_cost(config: MachineConfig) -> StructureCost:
    """Cost the execution-core structures of one machine configuration."""
    main_rf = regfile_area(
        config.regfile.entries,
        config.regfile.read_ports,
        config.regfile.write_ports,
    )
    internal_rf = 0.0
    if config.kind is CoreKind.BRAID and config.internal_regfile is not None:
        spec = config.internal_regfile
        internal_rf = config.clusters * regfile_area(
            spec.entries, spec.read_ports, spec.write_ports
        )

    if config.kind is CoreKind.BRAID:
        # FIFO windows: no tag broadcast; readiness checks only at the
        # window entries against the busy-bit vector.
        comparators = 0
        rename_ports = (
            config.front_end.rename_src_ops + config.front_end.rename_dest_ops
        )
        # Internal values are not checkpointed (section 3.4).
        checkpoint_words = _ARCH_REGS
    elif config.kind is CoreKind.DEP_STEER:
        comparators = 0  # FIFO heads only
        rename_ports = (
            config.front_end.rename_src_ops + config.front_end.rename_dest_ops
        )
        checkpoint_words = _ARCH_REGS + config.regfile.entries
    elif config.kind is CoreKind.IN_ORDER:
        comparators = 0
        rename_ports = 0
        checkpoint_words = _ARCH_REGS
    else:
        # Broadcast wakeup: every window entry compares both source tags
        # against every result bus, every cycle.
        comparators = (
            config.clusters
            * config.cluster_entries
            * 2
            * config.issue_width
        )
        rename_ports = (
            config.front_end.rename_src_ops + config.front_end.rename_dest_ops
        )
        checkpoint_words = _ARCH_REGS + config.regfile.entries

    bypass_wires = config.bypass_levels * config.bypass_width ** 2

    return StructureCost(
        machine=config.name,
        regfile_area=main_rf + internal_rf,
        scheduler_comparators=comparators,
        bypass_wires=bypass_wires,
        rename_ports=rename_ports,
        checkpoint_words=checkpoint_words,
    )


#: modelled bookkeeping bits per structure entry (fault-injection weights)
_ROB_ENTRY_BITS = 64
_LSQ_ENTRY_BITS = 128
_SCHEDULER_ENTRY_BITS = 32
_BEU_FIFO_ENTRY_BITS = 32
#: an 8 KB predictor table, identical across paradigms
_PREDICTOR_BITS = 8 * 1024 * 8


def storage_bits(config: MachineConfig) -> Dict[str, int]:
    """Storage bits per injectable structure (AVF weights).

    Keys match the structure names of :mod:`repro.faults.inject`, so the
    AVF report can weight each structure's measured vulnerability by how
    much state a real implementation would expose to particle strikes.
    Uses the same first-order models as :func:`structure_cost` — the
    checkpoint weight in particular reuses its per-checkpoint word count,
    which is where the braid's smaller checkpoint footprint (internal
    values are never checkpointed, paper section 3.4) shows up.
    """
    checkpoint_words = structure_cost(config).checkpoint_words
    bits: Dict[str, int] = {
        "rob": config.max_in_flight * _ROB_ENTRY_BITS,
        "regfile": config.regfile.entries * _WIDTH,
        "lsq": config.lsq_entries * _LSQ_ENTRY_BITS,
        "checkpoints": config.max_branches * checkpoint_words * _WIDTH,
        "branchpred": _PREDICTOR_BITS,
    }
    if config.kind is CoreKind.BRAID:
        internal = config.internal_regfile
        if internal is not None:
            bits["regfile"] += config.clusters * internal.entries * _WIDTH
        # FIFO slots hold a queue tag, no wakeup CAM; plus one busy bit
        # per external register entry per BEU.
        bits["beu_fifo"] = (
            config.clusters * config.cluster_entries * _BEU_FIFO_ENTRY_BITS
            + config.clusters * config.regfile.entries
        )
        # Two annotation bits (external/internal destination) per
        # in-flight instruction.
        bits["partition"] = config.max_in_flight * 2
    else:
        bits["scheduler"] = (
            config.clusters * config.cluster_entries * _SCHEDULER_ENTRY_BITS
        )
    return bits


@dataclass(frozen=True)
class ComplexityComparison:
    """Side-by-side structure costs plus headline ratios."""

    subject: StructureCost
    baseline: StructureCost

    def ratio(self, field: str) -> float:
        base = getattr(self.baseline, field)
        if base == 0:
            return 0.0
        return getattr(self.subject, field) / base

    def render(self) -> str:
        lines = [
            f"complexity: {self.subject.machine} vs {self.baseline.machine}",
            f"{'structure':24s} {self.subject.machine:>14s} "
            f"{self.baseline.machine:>14s} {'ratio':>8s}",
        ]
        for field in (
            "regfile_area",
            "scheduler_comparators",
            "bypass_wires",
            "rename_ports",
            "checkpoint_words",
        ):
            mine = getattr(self.subject, field)
            base = getattr(self.baseline, field)
            ratio = f"{self.ratio(field):8.3f}" if base else "     n/a"
            lines.append(f"{field:24s} {mine:14.0f} {base:14.0f} {ratio}")
        return "\n".join(lines)


def compare_complexity(
    subject: MachineConfig, baseline: MachineConfig
) -> ComplexityComparison:
    """Compare two machines structure by structure (paper section 5.1)."""
    return ComplexityComparison(
        subject=structure_cost(subject),
        baseline=structure_cost(baseline),
    )
