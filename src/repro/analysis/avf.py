"""Architectural vulnerability factor (AVF) analysis.

Aggregates classified fault-injection runs (:mod:`repro.faults`) into the
per-structure vulnerability figure: for every (machine, structure) pair
the AVF is the non-masked fraction of its injections (Mukherjee et al.,
MICRO 2003), and each structure is weighted by its modelled storage bits
(:func:`repro.analysis.complexity.storage_bits`) so machines with very
different structure sizes compare on an *expected corrupted-bits* axis.

The headline figure the paper's complexity argument predicts: the braid
microarchitecture exposes far fewer scheduler/register-file bits than
the aggressive out-of-order machine, so its bit-weighted vulnerability
should sit at or below the out-of-order core's even when the raw
per-injection AVFs are similar.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple

from ..sim.config import MachineConfig
from .complexity import storage_bits

#: outcome keys in render order (must match repro.faults.model)
_OUTCOMES = ("masked", "sdc", "crash", "hang")


@dataclass
class StructureAVF:
    """Injection tallies and derived AVF for one (machine, structure)."""

    machine: str
    structure: str
    bits: int
    counts: Dict[str, int] = field(
        default_factory=lambda: {key: 0 for key in _OUTCOMES}
    )

    @property
    def injections(self) -> int:
        return sum(self.counts.values())

    @property
    def avf(self) -> float:
        total = self.injections
        if total == 0:
            return 0.0
        return 1.0 - self.counts["masked"] / total

    @property
    def weighted(self) -> float:
        """Expected corrupted bits: AVF x storage bits of the structure."""
        return self.avf * self.bits


@dataclass
class AVFReport:
    """Per-structure AVF table plus the bit-weighted machine ranking."""

    rows: List[StructureAVF]

    def machines(self) -> List[str]:
        seen: List[str] = []
        for row in self.rows:
            if row.machine not in seen:
                seen.append(row.machine)
        return seen

    def machine_summary(self) -> List[Tuple[str, float, int]]:
        """``(machine, bit-weighted AVF, total bits)`` per machine.

        The bit-weighted AVF is ``sum(avf x bits) / sum(bits)`` over the
        machine's structures: the probability that a strike on a
        uniformly random modelled state bit is not masked.
        """
        summary = []
        for machine in self.machines():
            rows = [row for row in self.rows if row.machine == machine]
            total_bits = sum(row.bits for row in rows)
            weighted = sum(row.weighted for row in rows)
            avf = weighted / total_bits if total_bits else 0.0
            summary.append((machine, avf, total_bits))
        return summary

    def render(self) -> str:
        lines = [
            "per-structure architectural vulnerability "
            "(AVF = non-masked fraction):",
            f"  {'machine':14s} {'structure':12s} {'runs':>5s} "
            f"{'masked':>7s} {'sdc':>5s} {'crash':>6s} {'hang':>5s} "
            f"{'AVF':>6s} {'bits':>9s} {'AVFxbits':>9s}",
        ]
        for row in self.rows:
            counts = row.counts
            lines.append(
                f"  {row.machine:14s} {row.structure:12s} "
                f"{row.injections:5d} {counts['masked']:7d} "
                f"{counts['sdc']:5d} {counts['crash']:6d} "
                f"{counts['hang']:5d} {row.avf:6.2f} {row.bits:9d} "
                f"{row.weighted:9.0f}"
            )
        lines.append("")
        lines.append("most vulnerable structures (by expected corrupted bits):")
        ranked = sorted(
            self.rows,
            key=lambda row: (-row.weighted, row.machine, row.structure),
        )
        for rank, row in enumerate(ranked[:8], start=1):
            lines.append(
                f"  {rank}. {row.machine} {row.structure}: "
                f"AVF {row.avf:.2f} x {row.bits} bits = {row.weighted:.0f}"
            )
        lines.append("")
        lines.append("bit-weighted machine vulnerability:")
        summary = self.machine_summary()
        peak = max((avf for _, avf, _ in summary), default=0.0)
        for machine, avf, total_bits in summary:
            width = int(round(40 * avf / peak)) if peak > 0 else 0
            bar = "#" * width
            lines.append(
                f"  {machine:14s} {avf:6.3f} over {total_bits:9d} bits "
                f"|{bar}"
            )
        return "\n".join(lines)


def avf_report(
    results: Iterable,
    configs: Dict[str, MachineConfig],
) -> AVFReport:
    """Aggregate injection results into the AVF figure.

    ``results`` yields objects with ``machine``/``structure`` attributes
    and an ``outcome`` whose ``value`` is one of masked/sdc/crash/hang
    (:class:`repro.faults.model.InjectionResult`); ``configs`` maps
    machine names to their :class:`~repro.sim.config.MachineConfig` for
    the storage-bit weights.  Rows come back sorted by machine then
    structure, so the report is deterministic regardless of completion
    order.
    """
    bits_by_machine = {
        name: storage_bits(config) for name, config in configs.items()
    }
    rows: Dict[Tuple[str, str], StructureAVF] = {}
    for result in results:
        key = (result.machine, result.structure)
        row = rows.get(key)
        if row is None:
            # Fail loudly: a structure with no modelled storage weight
            # would silently zero its AVF contribution and an unmodeled
            # machine would rank as invulnerable.
            machine_bits = bits_by_machine.get(result.machine)
            if machine_bits is None:
                raise ValueError(
                    f"no machine config supplied for {result.machine!r}; "
                    f"its AVF weight would silently be zero "
                    f"(known machines: {sorted(bits_by_machine)})"
                )
            bits = machine_bits.get(result.structure)
            if bits is None:
                raise ValueError(
                    f"no storage-bit model for structure "
                    f"{result.structure!r} on {result.machine!r}; "
                    f"modelled structures: {sorted(machine_bits)}"
                )
            row = StructureAVF(
                machine=result.machine,
                structure=result.structure,
                bits=bits,
            )
            rows[key] = row
        outcome = getattr(result.outcome, "value", result.outcome)
        row.counts[outcome] = row.counts.get(outcome, 0) + 1
    ordered = [rows[key] for key in sorted(rows)]
    return AVFReport(rows=ordered)
