"""Dynamic value fanout and lifetime characterization (paper section 1.1).

The braid rests on two measured properties of program values:

* **Fanout** — "over 70% of values are used only once, and about 90% of
  values are used at most twice.  About 4% of values are produced but not
  used."
* **Lifetime** — "about 80% of values have a lifetime of 32 instructions or
  fewer" (producer-to-last-consumer distance in dynamic instructions).

This module reproduces that analysis over a dynamic trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Tuple

from ..isa.program import Program
from ..sim.functional import FunctionalExecutor


@dataclass
class _OpenValue:
    producer_seq: int
    reads: int = 0
    last_read_seq: Optional[int] = None


@dataclass
class ValueCharacterization:
    """Histogram summary of value fanout and lifetime for one program."""

    name: str
    #: fanout -> count of dynamic values with that many reads
    fanout: Dict[int, int] = field(default_factory=dict)
    #: producer-to-last-consumer distance -> count (used values only)
    lifetime: Dict[int, int] = field(default_factory=dict)

    # ------------------------------------------------------------- summaries
    @property
    def total_values(self) -> int:
        return sum(self.fanout.values())

    def fanout_fraction(self, at_most: int, at_least: int = 0) -> float:
        """Fraction of values with ``at_least <= fanout <= at_most``."""
        total = self.total_values
        if not total:
            return 0.0
        hit = sum(
            count
            for reads, count in self.fanout.items()
            if at_least <= reads <= at_most
        )
        return hit / total

    @property
    def fraction_unused(self) -> float:
        """Values produced but never read (paper: ~4%)."""
        return self.fanout_fraction(0)

    @property
    def fraction_single_use(self) -> float:
        """Values read exactly once (paper: >70%)."""
        return self.fanout_fraction(1, at_least=1)

    @property
    def fraction_at_most_two_uses(self) -> float:
        """Values read at most twice, of used+unused (paper: ~90%)."""
        return self.fanout_fraction(2)

    def lifetime_fraction(self, at_most: int) -> float:
        """Fraction of *used* values living at most ``at_most`` instructions."""
        total = sum(self.lifetime.values())
        if not total:
            return 0.0
        hit = sum(
            count for distance, count in self.lifetime.items() if distance <= at_most
        )
        return hit / total

    @property
    def fraction_short_lived(self) -> float:
        """Lifetime of 32 instructions or fewer (paper: ~80%)."""
        return self.lifetime_fraction(32)


def characterize_values(
    program: Program, max_instructions: int = 200_000
) -> ValueCharacterization:
    """Run the program and histogram the fanout/lifetime of every value."""
    result = ValueCharacterization(name=program.name)
    executor = FunctionalExecutor(program, max_instructions=max_instructions)
    open_values: Dict[Tuple[str, int], _OpenValue] = {}

    def close(value: _OpenValue) -> None:
        result.fanout[value.reads] = result.fanout.get(value.reads, 0) + 1
        if value.last_read_seq is not None:
            distance = value.last_read_seq - value.producer_seq
            result.lifetime[distance] = result.lifetime.get(distance, 0) + 1

    for dyn in executor.trace():
        inst = dyn.inst
        for reg in inst.reads():
            value = open_values.get((reg.rclass.value, reg.index))
            if value is not None:
                value.reads += 1
                value.last_read_seq = dyn.seq
        written = inst.writes()
        if written is not None:
            key = (written.rclass.value, written.index)
            previous = open_values.get(key)
            if previous is not None:
                close(previous)
            open_values[key] = _OpenValue(producer_seq=dyn.seq)

    for value in open_values.values():
        close(value)
    return result


def characterize_suite(
    programs: Dict[str, Program], max_instructions: int = 200_000
) -> Dict[str, ValueCharacterization]:
    """Characterize every program in a suite."""
    return {
        name: characterize_values(program, max_instructions)
        for name, program in programs.items()
    }


def average_fractions(
    characterizations: Iterable[ValueCharacterization],
) -> Dict[str, float]:
    """Suite-average headline fractions (the paper's section 1.1 numbers)."""
    rows = list(characterizations)
    if not rows:
        return {}
    count = len(rows)
    return {
        "single_use": sum(r.fraction_single_use for r in rows) / count,
        "at_most_two_uses": sum(r.fraction_at_most_two_uses for r in rows) / count,
        "unused": sum(r.fraction_unused for r in rows) / count,
        "lifetime_le_32": sum(r.fraction_short_lived for r in rows) / count,
    }
