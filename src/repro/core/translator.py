"""Binary translation: reorder each basic block into consecutive braids.

Paper section 3.1: "the instructions within the basic block are arranged such
that instructions belonging to the same braid are scheduled as a consecutive
sequence of instructions within the basic block...  If the last instruction
of the basic block is a branch, the braid containing the branch instruction
is ordered to be the last braid in the basic block."

The scheduler is a greedy braid-level list scheduler over the intra-block
dependence DAG (register RAW/WAR/WAW plus memory ordering).  When no whole
braid can be emitted — the braid-level constraint graph has a cycle, or the
branch-last rule blocks the only free braid — the braid containing the
earliest unscheduled instruction is broken at the point of the ordering
violation and its free prefix emitted, exactly the paper's second braid
breaking rule.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..dataflow.graph import BlockGraph
from ..dataflow.liveness import LivenessAnalysis
from ..dataflow.memdep import memory_order_edges, ordering_violated
from ..isa.program import BasicBlock, Program
from ..isa.registers import NUM_INTERNAL_REGS
from .braid import Braid
from .constraints import (
    SplitStats,
    enforce_internal_pressure,
    instruction_order_constraints,
    predecessor_map,
)
from .partition import partition_block
from .regalloc import allocate_block


class TranslationError(RuntimeError):
    """Raised when the translator produces an inconsistent block (a bug)."""


@dataclass
class BlockTranslation:
    """Result of translating one basic block."""

    original: BasicBlock
    translated: BasicBlock
    braids: List[Braid]
    splits: SplitStats
    #: final emission order: braids[i] occupies new positions new_spans[i]
    new_spans: List[Tuple[int, int]] = field(default_factory=list)


@dataclass
class TranslationReport:
    """Program-level translation summary."""

    blocks: List[BlockTranslation] = field(default_factory=list)
    splits: SplitStats = field(default_factory=SplitStats)

    @property
    def total_braids(self) -> int:
        return sum(len(block.braids) for block in self.blocks)

    def braids_by_block(self) -> Dict[int, List[Braid]]:
        return {t.original.index: t.braids for t in self.blocks}


def _branch_braid_index(block: BasicBlock, braids: List[Braid]) -> Optional[int]:
    terminator = block.terminator
    if terminator is None:
        return None
    branch_position = len(block.instructions) - 1
    for index, braid in enumerate(braids):
        if braid.contains(branch_position):
            return index
    raise TranslationError("terminator not covered by any braid")


def schedule_braids(
    block: BasicBlock, braids: List[Braid]
) -> Tuple[List[Braid], SplitStats]:
    """Order braids contiguously while respecting all dependences.

    Returns the braids in final emission order (possibly with some broken
    into two) and split statistics.
    """
    stats = SplitStats()
    count = len(block.instructions)
    preds = predecessor_map(count, instruction_order_constraints(block))
    branch_position = (
        count - 1 if block.terminator is not None else None
    )

    scheduled: Set[int] = set()
    remaining: List[Braid] = sorted(braids, key=lambda b: b.first_position)
    emitted: List[Braid] = []

    def braid_is_free(braid: Braid) -> bool:
        members = set(braid.positions)
        return all(
            preds[position] <= (scheduled | members)
            for position in braid.positions
        )

    def free_prefix_length(braid: Braid, cap_before_branch: bool) -> int:
        length = 0
        prefix: Set[int] = set()
        for position in braid.positions:
            if cap_before_branch and position == branch_position:
                break
            if not preds[position] <= (scheduled | prefix):
                break
            prefix.add(position)
            length += 1
        return length

    while remaining:
        remaining.sort(key=lambda b: b.first_position)
        only_one_left = len(remaining) == 1
        chosen: Optional[int] = None
        for index, braid in enumerate(remaining):
            holds_branch = (
                branch_position is not None and braid.contains(branch_position)
            )
            if holds_branch and not only_one_left:
                continue
            if braid_is_free(braid):
                chosen = index
                break
        if chosen is not None:
            braid = remaining.pop(chosen)
            emitted.append(braid)
            scheduled.update(braid.positions)
            continue

        # No whole braid can go: break the braid holding the earliest
        # unscheduled instruction at the point of the ordering violation.
        braid = remaining[0]
        cap = branch_position is not None and not only_one_left
        prefix = free_prefix_length(braid, cap_before_branch=cap)
        if prefix <= 0 or prefix >= braid.size:
            raise TranslationError(
                f"scheduler wedged on block {block.name}: "
                f"braid {braid} prefix {prefix}"
            )
        head, tail = braid.split_at(prefix)
        stats.ordering_splits += 1
        remaining[0] = tail
        emitted.append(head)
        scheduled.update(head.positions)

    return emitted, stats


def translate_block(
    block: BasicBlock,
    liveness: LivenessAnalysis,
    internal_limit: int = NUM_INTERNAL_REGS,
) -> BlockTranslation:
    """Translate one basic block into braid-ordered, braid-annotated form."""
    graph = BlockGraph(block)
    escaping = set(liveness.escaping_defs(block))

    braids = partition_block(graph)
    ordered, schedule_stats = schedule_braids(block, braids)
    ordered, pressure_stats = enforce_internal_pressure(
        ordered, graph, escaping, limit=internal_limit
    )
    schedule_stats.merge(pressure_stats)

    new_instructions = allocate_block(
        block, graph, ordered, escaping, internal_limit=internal_limit
    )

    # Safety net: the reordering must preserve every memory-ordering edge.
    new_position: List[int] = [0] * len(block.instructions)
    cursor = 0
    spans: List[Tuple[int, int]] = []
    for braid in ordered:
        spans.append((cursor, cursor + braid.size))
        for position in braid.positions:
            new_position[position] = cursor
            cursor += 1
    violated = ordering_violated(memory_order_edges(block), new_position)
    if violated:
        raise TranslationError(
            f"block {block.name}: memory ordering violated: {sorted(violated)}"
        )

    translated = BasicBlock(
        index=block.index, instructions=new_instructions, label=block.label
    )
    return BlockTranslation(
        original=block,
        translated=translated,
        braids=ordered,
        splits=schedule_stats,
        new_spans=spans,
    )


def translate_program(
    program: Program, internal_limit: int = NUM_INTERNAL_REGS
) -> Tuple[Program, TranslationReport]:
    """Braid-translate a whole program.

    Returns a new :class:`Program` (same CFG, reordered and annotated blocks)
    plus a :class:`TranslationReport` describing every braid formed.
    """
    program.validate()
    liveness = LivenessAnalysis(program)
    report = TranslationReport()
    new_blocks: List[BasicBlock] = []
    for block in program.blocks:
        translation = translate_block(block, liveness, internal_limit)
        report.blocks.append(translation)
        report.splits.merge(translation.splits)
        new_blocks.append(translation.translated)
    translated = program.copy_structure(new_blocks)
    translated.validate()
    return translated, report
