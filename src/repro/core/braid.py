"""The braid entity.

A braid (paper section 1.2) is a dataflow subgraph of the program residing
solely within one basic block.  Braids are identified at compile time; the
ISA conveys them through the S/T/I/E bits; the microarchitecture executes
each braid on one in-order braid execution unit.

This module defines the compile-time representation.  A :class:`Braid` keeps
*original block positions* so that statistics, constraint checks, and the
translator can all reason about the pre-reordering layout.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from ..dataflow.graph import BlockGraph
from ..isa.instruction import Instruction
from ..isa.registers import Register


@dataclass
class Braid:
    """One braid: a set of instruction positions within a basic block."""

    block_index: int
    positions: List[int]

    def __post_init__(self) -> None:
        self.positions = sorted(self.positions)
        if not self.positions:
            raise ValueError("a braid contains at least one instruction")

    # ------------------------------------------------------------------ shape
    @property
    def size(self) -> int:
        """Number of instructions (paper Table 2, 'size')."""
        return len(self.positions)

    @property
    def first_position(self) -> int:
        return self.positions[0]

    @property
    def is_single(self) -> bool:
        """Single-instruction braid (paper: 20% of all instructions)."""
        return len(self.positions) == 1

    def contains(self, position: int) -> bool:
        return position in self._position_set

    @property
    def _position_set(self) -> Set[int]:
        cached = getattr(self, "_cached_set", None)
        if cached is None or len(cached) != len(self.positions):
            cached = set(self.positions)
            self._cached_set = cached
        return cached

    def width(self, graph: BlockGraph) -> float:
        """Average instruction-level parallelism (size / longest dataflow path)."""
        longest = graph.longest_path_length(self._position_set)
        if longest == 0:
            return 1.0
        return self.size / longest

    def split_at(self, boundary_index: int) -> Tuple["Braid", "Braid"]:
        """Split into two braids: positions[:boundary_index] and the rest."""
        if not 0 < boundary_index < len(self.positions):
            raise ValueError(f"cannot split braid of size {self.size} "
                             f"at index {boundary_index}")
        return (
            Braid(self.block_index, self.positions[:boundary_index]),
            Braid(self.block_index, self.positions[boundary_index:]),
        )

    def __repr__(self) -> str:
        return f"Braid(block={self.block_index}, positions={self.positions})"


@dataclass
class BraidIO:
    """Dataflow classification of one braid's values (paper Table 3).

    * ``internal_defs`` — positions whose produced value is consumed only
      inside this braid and does not escape the block (candidates for the
      internal register file);
    * ``external_output_defs`` — positions whose value must reach the
      external register file (escapes the block or is read by another braid);
    * ``dead_defs`` — positions whose value is never read anywhere;
    * ``external_input_regs`` — distinct registers read from outside the braid.
    """

    internal_defs: List[int] = field(default_factory=list)
    external_output_defs: List[int] = field(default_factory=list)
    dead_defs: List[int] = field(default_factory=list)
    external_input_regs: List[Register] = field(default_factory=list)

    @property
    def num_internal(self) -> int:
        return len(self.internal_defs)

    @property
    def num_external_outputs(self) -> int:
        return len(self.external_output_defs)

    @property
    def num_external_inputs(self) -> int:
        return len(self.external_input_regs)


def classify_braid_io(
    braid: Braid,
    graph: BlockGraph,
    escaping_positions: Set[int],
) -> BraidIO:
    """Classify each value a braid touches as internal / external / dead.

    ``escaping_positions`` are the block positions whose destination value is
    live out of the block (from :class:`~repro.dataflow.liveness.LivenessAnalysis`).
    """
    io = BraidIO()
    members = braid._position_set
    block = graph.block

    seen_inputs: Dict[Register, None] = {}
    for position in braid.positions:
        inst: Instruction = block.instructions[position]
        # --- inputs
        for src_position, reg in enumerate(inst.srcs):
            if reg.is_zero:
                continue
            producer = graph.producer_of[position].get(src_position)
            if producer is None or producer not in members:
                seen_inputs.setdefault(reg, None)
        # --- outputs
        if inst.writes() is None:
            continue
        consumers = graph.consumers_of.get(position, [])
        outside = [c for c in consumers if c not in members]
        escapes = position in escaping_positions
        if escapes or outside:
            io.external_output_defs.append(position)
        elif consumers:
            io.internal_defs.append(position)
        else:
            io.dead_defs.append(position)
    io.external_input_regs = list(seen_inputs)
    return io


def internal_pressure(
    braid: Braid,
    graph: BlockGraph,
    escaping_positions: Set[int],
) -> int:
    """Maximum number of simultaneously live internal values within a braid.

    This is the working set the paper bounds at 8 internal registers
    (section 3.1): when it exceeds the limit, the braid must be broken.
    """
    io = classify_braid_io(braid, graph, escaping_positions)
    internal = set(io.internal_defs)
    members = braid._position_set
    last_use: Dict[int, int] = {}
    for def_position in internal:
        consumers = [
            c for c in graph.consumers_of.get(def_position, []) if c in members
        ]
        last_use[def_position] = max(consumers)

    # Slot lifetimes mirror the linear-scan allocator: at each instruction,
    # source slots whose last use is here are freed *before* the destination
    # allocates, so a pure chain needs exactly one internal register.
    live = 0
    peak = 0
    ends_at: Dict[int, int] = {}
    for position in braid.positions:
        live -= ends_at.pop(position, 0)
        if position in internal:
            live += 1
            ends_at[last_use[position]] = ends_at.get(last_use[position], 0) + 1
        peak = max(peak, live)
    return peak
