"""Ordering constraints and braid-breaking rules.

Two conditions restrict braid formation (paper section 3.1):

1. **Internal register pressure.**  The braid microarchitecture supports a
   limited number of internal registers (8).  When a braid's working set of
   internal values exceeds the limit, the braid is broken in two at that
   boundary (about 2% of braids in the paper).
2. **Memory ordering.**  Rearranging braids within the basic block must not
   violate the partial order of memory instructions the compiler cannot
   disambiguate.  When no braid ordering can maintain it, the braid is broken
   at the location of the violation (under 1% of braids in the paper).

This module also derives the full intra-block instruction ordering
constraints (RAW/WAR/WAW on registers plus memory ordering) that the
scheduler in :mod:`repro.core.translator` must respect, because braid
reordering moves instructions of *different* braids past each other.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from ..dataflow.graph import BlockGraph
from ..dataflow.memdep import memory_order_edges
from ..isa.program import BasicBlock
from ..isa.registers import NUM_INTERNAL_REGS, Register
from .braid import Braid, classify_braid_io


def instruction_order_constraints(block: BasicBlock) -> List[Tuple[int, int]]:
    """All ``(earlier, later)`` position pairs whose order must be kept.

    Covers register true (RAW), anti (WAR) and output (WAW) dependences plus
    conservative memory ordering.  Every edge points forward in the original
    program order, so the constraint graph is a DAG and the original order is
    always one valid schedule.
    """
    edges: List[Tuple[int, int]] = []
    last_writer: Dict[Register, int] = {}
    readers_since_write: Dict[Register, List[int]] = {}

    for position, inst in enumerate(block.instructions):
        for reg in inst.reads():
            producer = last_writer.get(reg)
            if producer is not None:
                edges.append((producer, position))  # RAW
            readers_since_write.setdefault(reg, []).append(position)
        written = inst.writes()
        if written is not None:
            previous = last_writer.get(written)
            if previous is not None:
                edges.append((previous, position))  # WAW
            for reader in readers_since_write.get(written, ()):
                if reader != position:
                    edges.append((reader, position))  # WAR
            last_writer[written] = position
            readers_since_write[written] = []

    for edge in memory_order_edges(block):
        edges.append((edge.earlier, edge.later))
    return edges


def predecessor_map(
    count: int, edges: List[Tuple[int, int]]
) -> Dict[int, Set[int]]:
    """``preds[j]`` = positions that must be scheduled before position ``j``."""
    preds: Dict[int, Set[int]] = {position: set() for position in range(count)}
    for earlier, later in edges:
        preds[later].add(earlier)
    return preds


@dataclass
class SplitStats:
    """How many braids each breaking rule produced.

    ``ordering_splits`` counts breaks forced by instruction-ordering
    constraints during braid scheduling (the paper's memory-ordering rule,
    generalized to the register WAR/WAW hazards a conservative binary
    translator must also respect); ``pressure_splits`` counts breaks from the
    internal-register working-set limit.
    """

    ordering_splits: int = 0
    pressure_splits: int = 0

    def merge(self, other: "SplitStats") -> None:
        self.ordering_splits += other.ordering_splits
        self.pressure_splits += other.pressure_splits


def first_pressure_exceed(
    braid: Braid,
    graph: BlockGraph,
    escaping_positions: Set[int],
    limit: int,
) -> int:
    """Index into ``braid.positions`` where live internal values first exceed
    ``limit``, or ``-1`` if the braid never exceeds it."""
    io = classify_braid_io(braid, graph, escaping_positions)
    internal = set(io.internal_defs)
    members = set(braid.positions)
    last_use: Dict[int, List[int]] = {}
    for def_position in internal:
        consumers = [
            c for c in graph.consumers_of.get(def_position, []) if c in members
        ]
        last_use.setdefault(max(consumers), []).append(def_position)

    live = 0
    for index, position in enumerate(braid.positions):
        live -= len(last_use.get(position, ()))
        if position in internal:
            live += 1
            if live > limit:
                return index
    return -1


def enforce_internal_pressure(
    braids: List[Braid],
    graph: BlockGraph,
    escaping_positions: Set[int],
    limit: int = NUM_INTERNAL_REGS,
) -> Tuple[List[Braid], SplitStats]:
    """Split braids whose internal working set exceeds the register limit.

    Splitting preserves the (already scheduled) emission order: a broken
    braid is replaced, in place, by its two contiguous halves.  Values whose
    live range crosses the split boundary are reclassified as external by the
    subsequent register-allocation pass, which is what shrinks the working
    set below the limit.
    """
    stats = SplitStats()
    result: List[Braid] = []
    work = list(braids)
    while work:
        braid = work.pop(0)
        exceed = first_pressure_exceed(braid, graph, escaping_positions, limit)
        if exceed < 0:
            result.append(braid)
            continue
        # ``exceed`` is the instruction that pushed pressure over the limit;
        # break the braid just before it (the paper's "boundary").
        boundary = max(exceed, 1)
        head, tail = braid.split_at(boundary)
        stats.pressure_splits += 1
        result.append(head)  # head is now at or below the limit by induction
        work.insert(0, tail)
        # Re-check the head too: classification changed, but splitting can
        # only turn internal values external, so pressure never increases.
        if first_pressure_exceed(head, graph, escaping_positions, limit) >= 0:
            result.pop()
            work.insert(0, head)
    return result, stats
