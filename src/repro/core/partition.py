"""Braid identification: partition a block's dataflow graph into braids.

Paper section 3.1: "Braids are identified using a simple graph coloring
algorithm.  A braid is formed by selecting an instruction within the basic
block and identifying the dataflow subgraph stemming from that instruction
within the basic block.  This is repeated until all instructions within the
basic block are associated with a braid."

Colouring connected dataflow subgraphs is union-find over the block's
def-use edges: every instruction ends up in exactly one braid, and two
instructions share a braid iff they are connected through in-block values.
"""

from __future__ import annotations

from typing import Dict, List

from ..dataflow.graph import BlockGraph
from ..isa.program import BasicBlock
from .braid import Braid


class _UnionFind:
    """Path-compressing union-find over instruction positions."""

    def __init__(self, size: int) -> None:
        self.parent = list(range(size))
        self.rank = [0] * size

    def find(self, node: int) -> int:
        root = node
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[node] != root:
            self.parent[node], node = root, self.parent[node]
        return root

    def union(self, a: int, b: int) -> None:
        root_a, root_b = self.find(a), self.find(b)
        if root_a == root_b:
            return
        if self.rank[root_a] < self.rank[root_b]:
            root_a, root_b = root_b, root_a
        self.parent[root_b] = root_a
        if self.rank[root_a] == self.rank[root_b]:
            self.rank[root_a] += 1


def partition_block(graph: BlockGraph) -> List[Braid]:
    """Partition one basic block into braids.

    Returns braids ordered by their first (original) instruction position.
    Every instruction belongs to exactly one braid; instructions without any
    in-block dataflow (nops, branches on incoming values, isolated ``lda``)
    become single-instruction braids.
    """
    block: BasicBlock = graph.block
    count = len(block.instructions)
    if count == 0:
        return []

    forest = _UnionFind(count)
    for edge in graph.edges:
        forest.union(edge.producer, edge.consumer)

    members: Dict[int, List[int]] = {}
    for position in range(count):
        members.setdefault(forest.find(position), []).append(position)

    braids = [Braid(block.index, positions) for positions in members.values()]
    braids.sort(key=lambda braid: braid.first_position)
    return braids


def braid_of_position(braids: List[Braid]) -> Dict[int, int]:
    """Map each instruction position to its braid's index in ``braids``."""
    owner: Dict[int, int] = {}
    for braid_index, braid in enumerate(braids):
        for position in braid.positions:
            owner[position] = braid_index
    return owner
