"""High-level braid compilation pipeline.

``braidify`` is the one-call public entry point: it mimics the paper's
profiling + binary-translation flow end to end — optional external register
compaction (allocation pass 1), braid identification, braid scheduling with
both breaking rules, internal register allocation (pass 2), and annotation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..isa.program import Program
from ..isa.registers import NUM_INTERNAL_REGS
from .regalloc import CompactionResult, compact_external_registers
from .translator import TranslationReport, translate_program


@dataclass
class BraidCompilation:
    """Everything the braid toolchain produced for one program."""

    original: Program
    translated: Program
    report: TranslationReport
    compaction: Optional[CompactionResult] = None

    @property
    def total_braids(self) -> int:
        return self.report.total_braids


def braidify(
    program: Program,
    internal_limit: int = NUM_INTERNAL_REGS,
    compact_external: bool = False,
) -> BraidCompilation:
    """Run the full braid compilation flow on ``program``.

    Parameters
    ----------
    program:
        The input program (untranslated, architectural register names).
    internal_limit:
        Internal register file size used for the braid-breaking working-set
        rule (paper default: 8).
    compact_external:
        Also run allocation pass 1 (merge non-interfering external register
        names across the program) before braid formation.
    """
    compaction: Optional[CompactionResult] = None
    source = program
    if compact_external:
        compaction = compact_external_registers(program)
        source = compaction.program
    translated, report = translate_program(source, internal_limit=internal_limit)
    return BraidCompilation(
        original=program,
        translated=translated,
        report=report,
        compaction=compaction,
    )
