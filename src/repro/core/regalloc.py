"""Two-pass braid register allocation (paper section 3.1).

Pass 1 — *external* registers are allocated across the entire program.  Our
input programs already use architectural register names, so this pass is a
compaction: registers whose live ranges never overlap may be merged, which
shrinks the external working set (see :class:`ExternalRegisterCompactor`).

Pass 2 — *internal* registers are allocated within each braid by linear scan
over the braid's instruction order.  A value qualifies for the internal file
when it does not escape the basic block and every consumer lies in the same
braid; its internal slot is freed after its last in-braid consumer, matching
the hardware's discard-at-braid-end behaviour.

The allocator also materializes the braid ISA annotation bits: the S bit on
each braid's first instruction, T bits on internal sources, and the I/E
destination bits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from ..dataflow.graph import BlockGraph
from ..dataflow.liveness import LivenessAnalysis
from ..isa.instruction import BraidAnnotation, Instruction
from ..isa.program import BasicBlock, Program
from ..isa.registers import NUM_INTERNAL_REGS, Register, Space
from .braid import Braid, classify_braid_io


class RegAllocError(RuntimeError):
    """Raised when internal register allocation fails (indicates a bug in the
    pressure-splitting pass, which must guarantee allocability)."""


def allocate_block(
    block: BasicBlock,
    graph: BlockGraph,
    ordered_braids: List[Braid],
    escaping_positions: Set[int],
    internal_limit: int = NUM_INTERNAL_REGS,
) -> List[Instruction]:
    """Produce the final annotated instruction sequence for one block.

    ``ordered_braids`` is the braid emission order chosen by the scheduler;
    the returned instructions are the braids' instructions, contiguous and in
    that order, with registers rewritten and braid bits attached.
    """
    result: List[Instruction] = []
    for braid_id, braid in enumerate(ordered_braids):
        result.extend(
            _allocate_braid(
                block, graph, braid, braid_id, escaping_positions, internal_limit
            )
        )
    return result


def _allocate_braid(
    block: BasicBlock,
    graph: BlockGraph,
    braid: Braid,
    braid_id: int,
    escaping_positions: Set[int],
    internal_limit: int,
) -> List[Instruction]:
    io = classify_braid_io(braid, graph, escaping_positions)
    internal_defs = set(io.internal_defs)
    dead_defs = set(io.dead_defs)
    members = set(braid.positions)

    # Last in-braid consumer of each internal definition (slot lifetime end).
    last_use: Dict[int, int] = {}
    for def_position in internal_defs:
        consumers = [
            c for c in graph.consumers_of.get(def_position, []) if c in members
        ]
        last_use[def_position] = max(consumers)

    free_slots = list(range(internal_limit))
    slot_of_def: Dict[int, int] = {}
    expire_at: Dict[int, List[int]] = {}

    new_instructions: List[Instruction] = []
    for order, position in enumerate(braid.positions):
        inst = block.instructions[position]

        # ----- rewrite sources (values consumed here)
        new_srcs: List[Register] = []
        spaces: List[Space] = []
        for src_position, reg in enumerate(inst.srcs):
            producer = graph.producer_of[position].get(src_position)
            if producer is not None and producer in slot_of_def:
                slot = slot_of_def[producer]
                new_srcs.append(Register(reg.rclass, slot))
                spaces.append(Space.INTERNAL)
            else:
                new_srcs.append(reg)
                spaces.append(Space.EXTERNAL)

        # ----- expire slots whose last consumer is this instruction
        for slot in expire_at.pop(position, ()):
            free_slots.append(slot)
        free_slots.sort()

        # ----- place the destination
        dest = inst.dest
        dest_internal = False
        dest_external = dest is not None
        if dest is not None and position in internal_defs:
            if not free_slots:
                raise RegAllocError(
                    f"block {block.name}: braid {braid_id} exhausted "
                    f"{internal_limit} internal registers at {inst.render()}"
                )
            slot = free_slots.pop(0)
            slot_of_def[position] = slot
            expire_at.setdefault(last_use[position], []).append(slot)
            dest = Register(inst.dest.rclass, slot)
            dest_internal, dest_external = True, False
        elif dest is not None and position in dead_defs:
            # Dead value: park it in a free internal slot if one exists (it
            # is discarded at braid end); otherwise let it write externally.
            if free_slots:
                slot = free_slots[0]  # reusable immediately; do not reserve
                dest = Register(inst.dest.rclass, slot)
                dest_internal, dest_external = True, False

        annot = BraidAnnotation(
            braid_id=braid_id,
            start=(order == 0),
            src_spaces=tuple(spaces),
            dest_internal=dest_internal,
            dest_external=dest_external,
        )
        new_instructions.append(
            Instruction(
                opcode=inst.opcode,
                dest=dest,
                srcs=tuple(new_srcs),
                imm=inst.imm,
                target=inst.target,
                annot=annot,
            )
        )
    return new_instructions


# --------------------------------------------------------------------------
# Pass 1: external register compaction across the whole program.
# --------------------------------------------------------------------------

@dataclass
class CompactionResult:
    """Outcome of external register compaction."""

    program: Program
    mapping: Dict[Register, Register]

    @property
    def registers_before(self) -> int:
        return len(self.mapping)

    @property
    def registers_after(self) -> int:
        return len(set(self.mapping.values()))


class ExternalRegisterCompactor:
    """Merge architectural registers whose live ranges never overlap.

    This reproduces the paper's first allocation pass ("register allocation
    is performed for the external registers across the entire program"): with
    most values destined for internal files, few external names are needed.
    Merging is a conservative whole-name rename, sound whenever two names are
    never simultaneously live at any program point.
    """

    def __init__(self, program: Program) -> None:
        program.validate()
        self.program = program
        self.liveness = LivenessAnalysis(program)
        self._interference = self._build_interference()

    def _instruction_liveness(self, block) -> List[Set[Register]]:
        """Live-after set for each instruction position in ``block``."""
        live = set(self.liveness.live_out(block))
        result: List[Set[Register]] = [set()] * len(block.instructions)
        for position in reversed(range(len(block.instructions))):
            inst = block.instructions[position]
            result[position] = set(live)
            written = inst.writes()
            if written is not None:
                live.discard(written)
            live.update(inst.reads())
        return result

    def _build_interference(self) -> Dict[Register, Set[Register]]:
        interference: Dict[Register, Set[Register]] = {}

        def add_clique(regs: Set[Register]) -> None:
            for reg in regs:
                bucket = interference.setdefault(reg, set())
                bucket.update(r for r in regs if r is not reg)

        for block in self.program.blocks:
            live_after = self._instruction_liveness(block)
            add_clique(set(self.liveness.live_in(block)))
            for position, inst in enumerate(block.instructions):
                written = inst.writes()
                if written is None:
                    continue
                # A def interferes with everything live after it.
                clique = set(live_after[position])
                clique.add(written)
                add_clique(clique)
        return interference

    def compact(self) -> CompactionResult:
        """Compute the merge mapping and rewrite the program."""
        regs = sorted(self._interference, key=lambda r: (r.rclass.value, r.index))
        mapping: Dict[Register, Register] = {}
        groups: List[Tuple[Register, Set[Register]]] = []
        for reg in regs:
            if reg.is_zero:
                mapping[reg] = reg
                continue
            placed = False
            for representative, group in groups:
                if representative.rclass is not reg.rclass:
                    continue
                if any(member in self._interference[reg] for member in group):
                    continue
                group.add(reg)
                mapping[reg] = representative
                placed = True
                break
            if not placed:
                groups.append((reg, {reg}))
                mapping[reg] = reg

        new_blocks = []
        for block in self.program.blocks:
            new_instructions = []
            for inst in block.instructions:
                new_instructions.append(
                    inst.with_operands(
                        dest=mapping.get(inst.dest, inst.dest),
                        srcs=tuple(mapping.get(s, s) for s in inst.srcs),
                    )
                )
            new_blocks.append(
                BasicBlock(
                    index=block.index,
                    instructions=new_instructions,
                    label=block.label,
                )
            )
        new_program = self.program.copy_structure(new_blocks)
        new_program.validate()
        return CompactionResult(program=new_program, mapping=mapping)


def compact_external_registers(program: Program) -> CompactionResult:
    """Convenience wrapper around :class:`ExternalRegisterCompactor`."""
    return ExternalRegisterCompactor(program).compact()
