"""The paper's contribution: braid identification, translation, allocation.

Typical use::

    from repro.core import braidify
    compilation = braidify(program)
    compilation.translated   # braid-ordered, S/T/I/E-annotated program
    compilation.report       # every braid formed, split statistics
"""

from .braid import Braid, BraidIO, classify_braid_io, internal_pressure
from .constraints import (
    SplitStats,
    enforce_internal_pressure,
    first_pressure_exceed,
    instruction_order_constraints,
    predecessor_map,
)
from .partition import braid_of_position, partition_block
from .pipeline import BraidCompilation, braidify
from .regalloc import (
    CompactionResult,
    ExternalRegisterCompactor,
    RegAllocError,
    allocate_block,
    compact_external_registers,
)
from .translator import (
    BlockTranslation,
    TranslationError,
    TranslationReport,
    schedule_braids,
    translate_block,
    translate_program,
)

__all__ = [
    "Braid",
    "BraidIO",
    "classify_braid_io",
    "internal_pressure",
    "SplitStats",
    "enforce_internal_pressure",
    "first_pressure_exceed",
    "instruction_order_constraints",
    "predecessor_map",
    "braid_of_position",
    "partition_block",
    "BraidCompilation",
    "braidify",
    "CompactionResult",
    "ExternalRegisterCompactor",
    "RegAllocError",
    "allocate_block",
    "compact_external_registers",
    "BlockTranslation",
    "TranslationError",
    "TranslationReport",
    "schedule_braids",
    "translate_block",
    "translate_program",
]
