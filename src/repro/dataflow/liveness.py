"""Global register liveness over the control-flow graph.

The paper's profiling tool "comprehends the usage of values [and] can
determine values that are used within and outside of the basic block"
(section 3.1).  That judgement is exactly classic backward liveness: a value
produced in a block *escapes* iff its register is in the block's live-out set
and the definition reaches the block end.  Braid register allocation uses
this to decide internal vs external storage for every produced value.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Set, Tuple

from ..isa.instruction import Instruction
from ..isa.program import BasicBlock, Program
from ..isa.registers import Register


@dataclass
class BlockLiveness:
    """Use/def summaries and the fixpoint live sets for one basic block."""

    use: FrozenSet[Register]
    defs: FrozenSet[Register]
    live_in: Set[Register] = field(default_factory=set)
    live_out: Set[Register] = field(default_factory=set)


class LivenessAnalysis:
    """Backward may-liveness fixpoint over a program's CFG."""

    def __init__(self, program: Program) -> None:
        self.program = program
        self.blocks: List[BlockLiveness] = [
            self._summarize(block) for block in program.blocks
        ]
        self._solve()

    @staticmethod
    def _summarize(block: BasicBlock) -> BlockLiveness:
        use: Set[Register] = set()
        defs: Set[Register] = set()
        for inst in block.instructions:
            for reg in inst.reads():
                if reg not in defs:
                    use.add(reg)
            written = inst.writes()
            if written is not None:
                defs.add(written)
        return BlockLiveness(use=frozenset(use), defs=frozenset(defs))

    def _successors(self, index: int) -> Tuple[int, ...]:
        taken, fallthrough = self.program.successors(self.program.blocks[index])
        result = []
        if taken is not None:
            result.append(taken)
        if fallthrough is not None and fallthrough != taken:
            result.append(fallthrough)
        return tuple(result)

    def _solve(self) -> None:
        changed = True
        while changed:
            changed = False
            for index in reversed(range(len(self.blocks))):
                info = self.blocks[index]
                live_out: Set[Register] = set()
                for successor in self._successors(index):
                    live_out |= self.blocks[successor].live_in
                live_in = set(info.use) | (live_out - set(info.defs))
                if live_out != info.live_out or live_in != info.live_in:
                    info.live_out = live_out
                    info.live_in = live_in
                    changed = True

    # ------------------------------------------------------------------ queries
    def live_out(self, block: BasicBlock) -> Set[Register]:
        return self.blocks[block.index].live_out

    def live_in(self, block: BasicBlock) -> Set[Register]:
        return self.blocks[block.index].live_in

    def escaping_defs(self, block: BasicBlock) -> Dict[int, Register]:
        """Instruction positions whose destination value escapes the block.

        A definition escapes when it is the *last* write of its register in
        the block and the register is live out of the block.  Escaping values
        must be written to the external register file (E bit); all other
        definitions may live purely in the internal file.
        """
        last_writer: Dict[Register, int] = {}
        for position, inst in enumerate(block.instructions):
            written = inst.writes()
            if written is not None:
                last_writer[written] = position
        live = self.live_out(block)
        return {
            position: reg
            for reg, position in last_writer.items()
            if reg in live
        }


def dead_definitions(program: Program, liveness: "LivenessAnalysis") -> List[Instruction]:
    """Instructions whose produced value is never read anywhere.

    These are the paper's "about 4% of values [that] are produced but not
    used" — results computed for control-flow paths not taken.  A definition
    is dead when no later in-block instruction reads it before a re-definition
    and it does not escape the block.
    """
    dead: List[Instruction] = []
    for block in program.blocks:
        escaping = set(liveness.escaping_defs(block))
        for position, inst in enumerate(block.instructions):
            written = inst.writes()
            if written is None or position in escaping:
                continue
            used = False
            for later in block.instructions[position + 1:]:
                if written in later.reads():
                    used = True
                    break
                if later.writes() == written:
                    break
            if not used:
                dead.append(inst)
    return dead
