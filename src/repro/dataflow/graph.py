"""Per-basic-block dataflow graphs.

The braid is defined over the dataflow graph of a basic block (paper
section 2): nodes are instructions; a directed edge runs from the producer of
a register value to each in-block consumer that reads it before any
re-definition.  Sources with no in-block producer are *external inputs*;
definitions that are live out of the block are *external outputs* (computed
by :mod:`repro.dataflow.liveness`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Set, Tuple

from ..isa.instruction import Instruction
from ..isa.program import BasicBlock
from ..isa.registers import Register


@dataclass(frozen=True)
class Edge:
    """A def-use edge inside one basic block.

    ``producer``/``consumer`` are instruction positions within the block;
    ``src_position`` says which source operand of the consumer is fed.
    """

    producer: int
    consumer: int
    reg: Register
    src_position: int


class BlockGraph:
    """Dataflow graph of a single basic block."""

    def __init__(self, block: BasicBlock) -> None:
        self.block = block
        self.edges: List[Edge] = []
        #: consumer position -> {source operand position -> producer position}
        self.producer_of: Dict[int, Dict[int, int]] = {}
        #: producer position -> consumer positions (with duplicates removed)
        self.consumers_of: Dict[int, List[int]] = {}
        #: per instruction, the source registers that come from outside the block
        self.external_inputs: Dict[int, List[Tuple[int, Register]]] = {}
        self._build()

    def _build(self) -> None:
        last_writer: Dict[Register, int] = {}
        consumer_sets: Dict[int, Set[int]] = {}
        for position, inst in enumerate(self.block.instructions):
            self.producer_of[position] = {}
            self.external_inputs[position] = []
            for src_position, reg in enumerate(inst.srcs):
                if reg.is_zero:
                    continue
                producer = last_writer.get(reg)
                if producer is None:
                    self.external_inputs[position].append((src_position, reg))
                else:
                    edge = Edge(producer, position, reg, src_position)
                    self.edges.append(edge)
                    self.producer_of[position][src_position] = producer
                    consumer_sets.setdefault(producer, set()).add(position)
            written = inst.writes()
            if written is not None:
                last_writer[written] = position
        self.consumers_of = {
            producer: sorted(consumers)
            for producer, consumers in consumer_sets.items()
        }
        self._last_writer = last_writer

    # ------------------------------------------------------------------ queries
    @property
    def instructions(self) -> List[Instruction]:
        return self.block.instructions

    def __len__(self) -> int:
        return len(self.block.instructions)

    def in_block_fanout(self, position: int) -> int:
        """Number of in-block consumers of the value defined at ``position``."""
        return len(self.consumers_of.get(position, ()))

    def is_last_writer(self, position: int) -> bool:
        """True if no later in-block instruction overwrites this destination."""
        inst = self.block.instructions[position]
        written = inst.writes()
        return written is not None and self._last_writer.get(written) == position

    def neighbors(self, position: int) -> Iterator[int]:
        """Undirected dataflow neighbours (both producers and consumers)."""
        for producer in self.producer_of[position].values():
            yield producer
        for consumer in self.consumers_of.get(position, ()):
            yield consumer

    def connected_component(self, seed: int) -> Set[int]:
        """The dataflow subgraph stemming from ``seed`` (paper section 3.1)."""
        seen: Set[int] = set()
        stack = [seed]
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            stack.extend(
                neighbor for neighbor in self.neighbors(node) if neighbor not in seen
            )
        return seen

    def longest_path_length(self, positions: Set[int]) -> int:
        """Instructions on the longest dataflow path within ``positions``.

        Used to compute braid *width* (paper Table 2): size divided by the
        longest-path instruction count.
        """
        ordered = sorted(positions)
        depth: Dict[int, int] = {}
        for position in ordered:
            producers = [
                p for p in self.producer_of[position].values() if p in positions
            ]
            depth[position] = 1 + max((depth[p] for p in producers), default=0)
        return max(depth.values(), default=0)


def block_graphs(blocks) -> Iterator[BlockGraph]:
    """Dataflow graphs for a sequence of basic blocks."""
    for block in blocks:
        yield BlockGraph(block)
