"""Static memory disambiguation within a basic block.

Braid formation reorders instructions inside the basic block, so the
translator must preserve the partial order of memory operations it cannot
prove independent (paper section 3.1: "the majority of memory instructions
access the stack so the compiler can disambiguate them").

The disambiguator here proves independence when two accesses use the same
base register — not redefined in between — with non-overlapping displacements
(the stack/frame-pointer pattern), and is conservative otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Set, Tuple

from ..isa.program import BasicBlock

#: Access width in bytes assumed for overlap checks (all our memory opcodes
#: move at most one 8-byte word).
ACCESS_BYTES = 8


@dataclass(frozen=True)
class MemoryEdge:
    """An ordering requirement between two memory operations (positions)."""

    earlier: int
    later: int


def _base_redefined_between(block: BasicBlock, first: int, second: int) -> bool:
    base = block.instructions[first].base_reg
    for inst in block.instructions[first + 1:second]:
        if inst.writes() == base:
            return True
    return False


def provably_independent(block: BasicBlock, first: int, second: int) -> bool:
    """True when the two memory accesses cannot touch the same word."""
    a = block.instructions[first]
    b = block.instructions[second]
    if a.base_reg != b.base_reg:
        return False
    if _base_redefined_between(block, first, second):
        return False
    word_a = a.imm & ~(ACCESS_BYTES - 1)
    word_b = b.imm & ~(ACCESS_BYTES - 1)
    return word_a != word_b


def memory_order_edges(block: BasicBlock) -> List[MemoryEdge]:
    """All intra-block memory ordering constraints the compiler must keep.

    Load/load pairs never constrain.  Store/store, store/load and load/store
    pairs constrain unless proven independent.
    """
    positions = [
        position
        for position, inst in enumerate(block.instructions)
        if inst.is_mem
    ]
    edges: List[MemoryEdge] = []
    for i, first in enumerate(positions):
        first_inst = block.instructions[first]
        for second in positions[i + 1:]:
            second_inst = block.instructions[second]
            if first_inst.is_load and second_inst.is_load:
                continue
            if provably_independent(block, first, second):
                continue
            edges.append(MemoryEdge(earlier=first, later=second))
    return edges


def ordering_violated(
    edges: List[MemoryEdge], new_positions: List[int]
) -> Set[Tuple[int, int]]:
    """Memory edges broken by a proposed instruction reordering.

    ``new_positions[old]`` gives the new position of the instruction that was
    at ``old``.  Returns the set of violated ``(earlier, later)`` pairs.
    """
    violated: Set[Tuple[int, int]] = set()
    for edge in edges:
        if new_positions[edge.earlier] > new_positions[edge.later]:
            violated.add((edge.earlier, edge.later))
    return violated
