"""Dataflow analyses: per-block graphs, global liveness, memory ordering."""

from .graph import BlockGraph, Edge, block_graphs
from .liveness import BlockLiveness, LivenessAnalysis, dead_definitions
from .memdep import (
    MemoryEdge,
    memory_order_edges,
    ordering_violated,
    provably_independent,
)

__all__ = [
    "BlockGraph",
    "Edge",
    "block_graphs",
    "BlockLiveness",
    "LivenessAnalysis",
    "dead_definitions",
    "MemoryEdge",
    "memory_order_edges",
    "ordering_violated",
    "provably_independent",
]
