"""Lockstep architectural-equivalence checking.

The timing cores are execution-driven: they replay a trace that phase one
(:mod:`repro.sim.workload`) recorded from the functional executor, and the
trace may additionally have travelled through the persistent artifact
cache as a pickle.  The lockstep checker closes that loop.  It runs a
*fresh* :class:`~repro.sim.functional.FunctionalExecutor` over the
program, advancing it one instruction per timing-core retirement, and
cross-checks the retirement stream field by field — PC, sequence number,
opcode, branch outcome, memory address.  A second, independent
:class:`~repro.sim.functional.ArchState` replays the retired instructions
through the shared :func:`~repro.sim.functional.apply_instruction`
semantics, and on full coverage the final snapshot must equal the
oracle's.

What this catches that unit tests cannot:

* trace corruption anywhere between phase one and retirement (a stale or
  truncated cache pickle, a decode-table mixup, an in-place mutation);
* retirement-stream bugs — out-of-order retirement, double retirement,
  dropped instructions;
* sampled-execution tiling bugs: :meth:`on_skip` accounts for every
  fast-forwarded gap, so overlapping or gapped windows surface as
  coverage divergences, not silently wrong IPC.

Attach with :meth:`LockstepChecker.attach` (wires the core's retire/skip
hooks), run the simulation, then call :meth:`LockstepChecker.finish`.
The default is fail-fast: the first mismatch raises
:class:`DivergenceError` mid-simulation with the cycle, trace index, and
expected/actual values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional

from ..sim.functional import ArchState, FunctionalExecutor, apply_instruction


@dataclass(frozen=True)
class Divergence:
    """First point where a timing core's retirement stream left the oracle."""

    benchmark: str
    machine: str
    #: simulation cycle of the divergent retirement (-1: post-run check)
    cycle: int
    #: trace index (number of instructions retired before this one)
    index: int
    #: which observable diverged (pc/seq/opcode/taken/mem_addr/...)
    field: str
    expected: Any
    actual: Any

    def render(self) -> str:
        return (
            f"{self.machine} on {self.benchmark}: divergence at "
            f"instruction {self.index} (cycle {self.cycle}), field "
            f"{self.field!r}: expected {self.expected!r}, "
            f"got {self.actual!r}"
        )


class DivergenceError(AssertionError):
    """Raised on the first divergence when the checker is fail-fast."""

    def __init__(self, divergence: Divergence) -> None:
        self.divergence = divergence
        super().__init__(divergence.render())


class LockstepChecker:
    """Replays a benchmark on the functional executor in lockstep."""

    def __init__(self, workload, fail_fast: bool = True) -> None:
        self.workload = workload
        self.fail_fast = fail_fast
        self.divergences: List[Divergence] = []
        self.instructions_checked = 0
        self.instructions_skipped = 0
        self._machine = "?"
        # A fresh oracle: independent of the (possibly cached/pickled)
        # trace the timing core replays.
        self._oracle = FunctionalExecutor(
            workload.program, max_instructions=len(workload.trace)
        )
        self._iter = self._oracle.trace()
        # Retirement-order replay through the shared semantics.
        self._replay = ArchState()
        #: trace position == instructions accounted for (retired or skipped)
        self._position = 0

    # ------------------------------------------------------------------ wiring
    def attach(self, core) -> "LockstepChecker":
        """Wire the retire/skip hooks of ``core`` to this checker."""
        self._machine = core.config.name
        core.retire_hook = self.on_retire
        core.skip_hook = self.on_skip
        return self

    # ----------------------------------------------------------------- events
    def _diverge(self, cycle: int, field: str, expected, actual) -> None:
        divergence = Divergence(
            benchmark=self.workload.name,
            machine=self._machine,
            cycle=cycle,
            index=self._position,
            field=field,
            expected=expected,
            actual=actual,
        )
        self.divergences.append(divergence)
        if self.fail_fast:
            raise DivergenceError(divergence)

    def on_retire(self, winst, cycle: int) -> None:
        """One instruction retired: the oracle must agree on everything."""
        try:
            expected = next(self._iter)
        except StopIteration:
            self._diverge(cycle, "coverage",
                          "end of program", f"retired seq={winst.seq}")
            return
        actual = winst.dyn
        if actual.seq != expected.seq:
            self._diverge(cycle, "seq", expected.seq, actual.seq)
        if actual.pc != expected.pc:
            self._diverge(cycle, "pc", hex(expected.pc), hex(actual.pc))
        if actual.inst.opcode.name != expected.inst.opcode.name:
            self._diverge(cycle, "opcode",
                          expected.inst.opcode.name, actual.inst.opcode.name)
        if actual.taken != expected.taken:
            self._diverge(cycle, "taken", expected.taken, actual.taken)
        if actual.mem_addr != expected.mem_addr:
            self._diverge(cycle, "mem_addr",
                          expected.mem_addr, actual.mem_addr)
        if actual.next_pc != expected.next_pc:
            self._diverge(cycle, "next_pc",
                          hex(expected.next_pc), hex(actual.next_pc))
        # Independent replay of the *core's* instruction object: catches
        # semantic corruption the field comparison cannot see.
        apply_instruction(self._replay, actual.inst)
        self._position += 1
        self.instructions_checked += 1

    def on_skip(self, old_index: int, new_index: int) -> None:
        """A sampling gap: advance the oracle over the skipped span."""
        if old_index != self._position:
            self._diverge(-1, "skip_origin", self._position, old_index)
        if new_index < self._position:
            self._diverge(-1, "skip_overlap", self._position, new_index)
            return
        while self._position < new_index:
            try:
                dyn = next(self._iter)
            except StopIteration:
                self._diverge(-1, "coverage",
                              "end of program", f"skip to {new_index}")
                return
            apply_instruction(self._replay, dyn.inst)
            self._position += 1
            self.instructions_skipped += 1

    # ------------------------------------------------------------------ finish
    def finish(self, expect_full: bool = True) -> List[Divergence]:
        """Post-run checks; returns every recorded divergence.

        ``expect_full=False`` (sampled runs) tolerates an unmeasured trace
        tail: the architectural snapshot is only comparable when every
        instruction was either retired or explicitly skipped.
        """
        total = len(self.workload.trace)
        if self._position != total:
            if expect_full:
                self._diverge(-1, "coverage", total, self._position)
            return self.divergences
        expected_snapshot = self._oracle.state.snapshot()
        actual_snapshot = self._replay.snapshot()
        if actual_snapshot != expected_snapshot:
            for name, expected, actual in zip(
                ("int_regs", "fp_regs", "memory"),
                expected_snapshot,
                actual_snapshot,
            ):
                if expected != actual:
                    self._diverge(-1, f"final_{name}", expected, actual)
        return self.divergences


def lockstep_simulate(
    workload,
    config,
    sampling=None,
    fail_fast: bool = True,
    max_cycles: Optional[int] = None,
):
    """Run one validated simulation; returns ``(result, divergences)``.

    Exact mode runs the core to completion and demands full trace
    coverage; with a :class:`~repro.sim.sampling.SamplingConfig` the
    sampled engine drives the same core through its windows and gaps and
    partial tail coverage is tolerated.
    """
    from ..sim.run import build_core
    from ..sim.sampling import simulate_sampled

    core = build_core(workload, config)
    checker = LockstepChecker(workload, fail_fast=fail_fast)
    checker.attach(core)
    if sampling is None:
        if max_cycles is not None:
            result = core.run(max_cycles=max_cycles)
        else:
            result = core.run()
        divergences = checker.finish(expect_full=True)
    else:
        kwargs = {"core": core}
        if max_cycles is not None:
            kwargs["max_cycles"] = max_cycles
        result = simulate_sampled(workload, config, sampling, **kwargs)
        divergences = checker.finish(expect_full=False)
    return result, divergences
