"""The ``validate`` harness command: full differential validation sweeps.

Runs every selected benchmark on every selected timing core under the
lockstep architectural oracle (exact mode, and sampled mode when a
:class:`~repro.sim.sampling.SamplingConfig` is given so the resumable
window/gap machinery is exercised too), optionally with per-cycle µarch
invariant checking, then fuzzes the translator.  Returns a renderable
report and a process exit code.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..sim.config import MachineConfig
from ..sim.registry import core_registry
from ..sim.run import build_core
from ..sim.sampling import SamplingConfig, simulate_sampled
from .fuzzing import FuzzReport, fuzz_translator
from .invariants import InvariantChecker, InvariantViolation
from .lockstep import DivergenceError, LockstepChecker


def _core_factories():
    """core key -> (config factory, runs on the braided program), derived
    from the core registry so every registered paradigm is validatable."""
    return {
        key: (descriptor.config_factory, descriptor.braided)
        for key, descriptor in core_registry().items()
    }


#: core key -> (config factory, runs on the braided program)
CORE_FACTORIES = _core_factories()

DEFAULT_CORES: Tuple[str, ...] = tuple(CORE_FACTORIES)


@dataclass
class CheckOutcome:
    """One (benchmark, core, mode) validation run."""

    benchmark: str
    core: str
    mode: str  # "exact" or "sampled"
    instructions: int = 0
    checked: int = 0
    skipped: int = 0
    cycles_checked: int = 0
    seconds: float = 0.0
    failure: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.failure is None

    def render(self) -> str:
        status = "ok  " if self.ok else "FAIL"
        line = (
            f"  [{status}] {self.benchmark:10s} {self.core:8s} "
            f"{self.mode:7s} {self.checked:7d} retired"
        )
        if self.skipped:
            line += f" + {self.skipped} skipped"
        if self.cycles_checked:
            line += f", {self.cycles_checked} cycles checked"
        line += f"  [{self.seconds:.1f}s]"
        if self.failure:
            line += f"\n         {self.failure}"
        return line


@dataclass
class ValidationReport:
    """Everything one ``validate`` invocation produced."""

    outcomes: List[CheckOutcome] = field(default_factory=list)
    fuzz: Optional[FuzzReport] = None

    @property
    def passed(self) -> bool:
        if any(not outcome.ok for outcome in self.outcomes):
            return False
        if self.fuzz is not None and not self.fuzz.passed:
            return False
        return True

    def render(self) -> str:
        lines = ["differential validation:"]
        lines.extend(outcome.render() for outcome in self.outcomes)
        failures = sum(1 for outcome in self.outcomes if not outcome.ok)
        lines.append(
            f"  {len(self.outcomes) - failures}/{len(self.outcomes)} "
            f"lockstep runs clean"
        )
        if self.fuzz is not None:
            lines.append(self.fuzz.render())
        lines.append("VALIDATION " + ("PASSED" if self.passed else "FAILED"))
        return "\n".join(lines)


def _check_one(
    context,
    benchmark: str,
    core_key: str,
    sampling: Optional[SamplingConfig],
    invariants: bool,
) -> CheckOutcome:
    factory, braided = CORE_FACTORIES[core_key]
    config: MachineConfig = factory()
    mode = "sampled" if sampling is not None else "exact"
    outcome = CheckOutcome(benchmark=benchmark, core=core_key, mode=mode)
    started = time.time()
    try:
        workload = context.workload(benchmark, braided=braided)
        outcome.instructions = len(workload.trace)
        core = build_core(workload, config)
        checker = LockstepChecker(workload).attach(core)
        invariant_checker = None
        if invariants:
            invariant_checker = InvariantChecker().attach(core)
        if sampling is None:
            core.run()
            divergences = checker.finish(expect_full=True)
        else:
            simulate_sampled(workload, config, sampling, core=core)
            divergences = checker.finish(expect_full=False)
        if divergences:
            outcome.failure = divergences[0].render()
        outcome.checked = checker.instructions_checked
        outcome.skipped = checker.instructions_skipped
        if invariant_checker is not None:
            outcome.cycles_checked = invariant_checker.cycles_checked
    except (DivergenceError, InvariantViolation) as error:
        outcome.failure = str(error)
    outcome.seconds = time.time() - started
    return outcome


def run_validation(
    context,
    benchmarks: Sequence[str],
    cores: Sequence[str] = DEFAULT_CORES,
    sampling: Optional[SamplingConfig] = None,
    invariants: bool = False,
    fuzz_samples: int = 200,
    fuzz_seed: int = 0,
) -> ValidationReport:
    """Validate ``benchmarks`` × ``cores``, then fuzz the translator.

    When ``sampling`` is given, every pair runs twice — exact and
    sampled — so both the straight-line and the resumable window/gap
    retirement paths are covered.  ``fuzz_samples=0`` skips fuzzing.
    """
    unknown = [key for key in cores if key not in CORE_FACTORIES]
    if unknown:
        raise ValueError(
            f"unknown cores {unknown}; choose from {sorted(CORE_FACTORIES)}"
        )
    report = ValidationReport()
    modes: List[Optional[SamplingConfig]] = [None]
    if sampling is not None:
        modes.append(sampling)
    for benchmark in benchmarks:
        for core_key in cores:
            for mode in modes:
                report.outcomes.append(_check_one(
                    context, benchmark, core_key, mode, invariants
                ))
    if fuzz_samples > 0:
        report.fuzz = fuzz_translator(samples=fuzz_samples, seed=fuzz_seed)
    return report
