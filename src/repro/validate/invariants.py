"""Per-cycle µarch invariant checking for the timing cores.

Attached through :attr:`repro.sim.core.TimingCore.invariant_hook`, which
reroutes ``_run_until`` into its instrumented twin; when no checker is
attached the hot loop never sees any of this.  The checks here cover the
machinery every core shares — ROB ordering, register-file entry
accounting under both allocation policies, LSQ membership and age order,
checkpoint budget — and then delegate to
:meth:`repro.sim.core.TimingCore.core_invariants` for the structures each
execution-core paradigm owns (schedulers, issue queues, steering FIFOs,
BEUs).

All checks are expressed against end-of-cycle state (the hook fires after
the fetch stage, before the cycle counter advances).
"""

from __future__ import annotations

from typing import Iterator, List


class InvariantViolation(AssertionError):
    """A structural invariant failed; carries every message for that cycle."""

    def __init__(self, machine: str, benchmark: str, cycle: int,
                 messages: List[str]) -> None:
        self.machine = machine
        self.benchmark = benchmark
        self.cycle = cycle
        self.messages = list(messages)
        detail = "\n  ".join(self.messages)
        super().__init__(
            f"{machine} on {benchmark}, cycle {cycle}: "
            f"{len(self.messages)} invariant violation(s)\n  {detail}"
        )


def shared_invariants(core, cycle: int) -> Iterator[str]:
    """Invariants of the machinery every :class:`TimingCore` shares."""
    config = core.config
    rob = core._rob

    # --- reorder buffer: program order, bounded, nothing retired inside.
    if len(rob) > config.max_in_flight:
        yield (
            f"ROB holds {len(rob)} instructions, "
            f"in-flight cap {config.max_in_flight}"
        )
    previous = -1
    for winst in rob:
        if winst.seq <= previous:
            yield f"ROB out of program order at seq={winst.seq}"
        previous = winst.seq
        if winst.retired:
            yield f"retired instruction seq={winst.seq} still in the ROB"

    # --- ready accounting: the idle-skip guard must agree with the ROB.
    ready = sum(
        1 for w in rob if w.issue_cycle is None and w.pending == 0
    )
    if core._ready_unissued != ready:
        yield (
            f"_ready_unissued={core._ready_unissued} but the ROB holds "
            f"{ready} ready-but-unissued instructions"
        )

    # --- register file: entry accounting per allocation policy.
    rf = core.rf
    if not 0 <= rf.in_flight <= rf.entries:
        yield (
            f"register file in_flight={rf.in_flight} outside "
            f"[0, {rf.entries}]"
        )
    if config.rf_alloc_at_issue:
        # Staging policy: an entry is held from issue until the value is
        # written back; retired instructions can still hold one while they
        # wait in the writeback queue.
        holders = {
            id(w): w
            for w in list(rob) + list(core._pending_writeback)
            if w.dest_external
            and w.issue_cycle is not None
            and w.writeback_cycle is None
        }
        expected = len(holders)
    else:
        # Dispatch-to-retire policy: every external destination in the
        # window holds exactly one entry.
        expected = sum(1 for w in rob if w.dest_external)
    if rf.in_flight != expected:
        yield (
            f"register file in_flight={rf.in_flight} but "
            f"{expected} in-flight external destinations hold entries"
        )

    # --- load/store queue: exactly the in-flight stores, in age order.
    lsq_seqs = core.lsq.seqs()
    rob_stores = [w.seq for w in rob if w.is_store]
    if list(lsq_seqs) != rob_stores:
        yield (
            f"LSQ stores {list(lsq_seqs)[:8]}... disagree with ROB stores "
            f"{rob_stores[:8]}... (lsq={len(lsq_seqs)}, rob={len(rob_stores)})"
        )
    if any(b <= a for a, b in zip(lsq_seqs, lsq_seqs[1:])):
        yield "LSQ stores out of age order"

    # --- memory slot accounting against the LSQ capacity.
    mem_in_flight = sum(1 for w in rob if w.is_load or w.is_store)
    if core._mem_in_flight != mem_in_flight:
        yield (
            f"_mem_in_flight={core._mem_in_flight} but the ROB holds "
            f"{mem_in_flight} memory instructions"
        )
    if core._mem_in_flight > config.lsq_entries:
        yield (
            f"{core._mem_in_flight} memory instructions in flight, "
            f"LSQ capacity {config.lsq_entries}"
        )

    # --- checkpoints: bounded, age-ordered, owned by in-flight branches.
    checkpoints = core.checkpoints
    cp_seqs = checkpoints.seqs()
    if len(cp_seqs) > checkpoints.capacity:
        yield (
            f"{len(cp_seqs)} checkpoints live, budget {checkpoints.capacity}"
        )
    if any(b <= a for a, b in zip(cp_seqs, cp_seqs[1:])):
        yield "checkpoints out of age order"
    branch_seqs = {w.seq for w in rob if w.is_branch}
    orphans = [seq for seq in cp_seqs if seq not in branch_seqs]
    if orphans:
        yield f"checkpoints {orphans[:8]} have no in-flight branch"

    # --- outstanding cache misses against the MSHR budget.
    if not 0 <= core._outstanding_misses <= config.mshrs:
        yield (
            f"{core._outstanding_misses} outstanding misses outside "
            f"[0, {config.mshrs}]"
        )
    if core._outstanding_misses != len(core._miss_releases):
        yield (
            f"_outstanding_misses={core._outstanding_misses} but "
            f"{len(core._miss_releases)} miss releases are queued"
        )


class InvariantChecker:
    """Callable hook raising :class:`InvariantViolation` on the first bad cycle.

    Attach with :meth:`attach`; the core's ``_run_until`` then switches to
    the instrumented loop and calls the checker once per simulated cycle.
    """

    def __init__(self) -> None:
        self.cycles_checked = 0

    def attach(self, core) -> "InvariantChecker":
        core.invariant_hook = self
        return self

    def __call__(self, core, cycle: int) -> None:
        messages = list(shared_invariants(core, cycle))
        messages.extend(core.core_invariants(cycle))
        if messages:
            raise InvariantViolation(
                core.config.name, core.workload.name, cycle, messages
            )
        self.cycles_checked += 1


def check_now(core, cycle: int) -> List[str]:
    """One-shot check of ``core`` (shared + subclass invariants)."""
    messages = list(shared_invariants(core, cycle))
    messages.extend(core.core_invariants(cycle))
    return messages
