"""Differential fuzzing of the braid translator.

Braid formation reorders instructions, renames architectural registers
into the internal space, and drops dead external writebacks — exactly the
transformations most likely to miscompile under WAR/WAW hazards, memory
aliasing, read-modify-write conditional moves, and zero-register
operands.  This module generates *hostile* random programs (the same
shape the hypothesis-based property tests in
``tests/test_translator_fuzz.py`` draw, but from a plain seeded
:class:`random.Random` so the harness and CI can run it without any
optional dependency), pushes each through the translator at one or more
internal register file sizes, and demands:

* **observable equivalence** — original and translated programs agree on
  final memory, control-flow path, and dynamic instruction count under
  the functional executor (:func:`~repro.sim.functional.observably_equivalent`);
* **annotation soundness** — start bits open every block, branches stay
  terminal, internal destinations fit the internal file, and no
  destination is both internal-only and external-only.

``fuzz_translator`` takes an injectable ``translate`` callable so the
test suite can verify the harness actually catches a broken translator.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from ..core import braidify
from ..isa.instruction import Instruction
from ..isa.opcodes import opcode_by_name
from ..isa.program import BasicBlock, Program
from ..isa.registers import NUM_INTERNAL_REGS, int_reg
from ..sim.functional import observably_equivalent

#: Tiny register pool: maximizes redefinition and anti-dependences.
_POOL = (1, 2, 3, 4, 5, 31)

_ALU = ("addq", "subq", "and", "xor", "cmpeq", "s8addq")
_CMOV = ("cmovne", "cmoveq")
_KINDS = ("alu", "alu", "alu", "cmov", "load", "store")


def hostile_block(rng: random.Random, min_size: int = 2,
                  max_size: int = 14) -> List[Instruction]:
    """One straight-line block dense with hazards and aliasing."""
    instructions: List[Instruction] = []
    for _ in range(rng.randint(min_size, max_size)):
        kind = rng.choice(_KINDS)
        if kind == "alu":
            instructions.append(Instruction(
                opcode=opcode_by_name(rng.choice(_ALU)),
                dest=int_reg(rng.choice(_POOL)),
                srcs=(
                    int_reg(rng.choice(_POOL)),
                    int_reg(rng.choice(_POOL)),
                ),
            ))
        elif kind == "cmov":
            dest = int_reg(rng.choice(_POOL))
            instructions.append(Instruction(
                opcode=opcode_by_name(rng.choice(_CMOV)),
                dest=dest,
                srcs=(
                    int_reg(rng.choice(_POOL)),
                    int_reg(rng.choice(_POOL)),
                    dest,  # read-modify-write
                ),
            ))
        elif kind == "load":
            instructions.append(Instruction(
                opcode=opcode_by_name("ldq"),
                dest=int_reg(rng.choice(_POOL)),
                srcs=(int_reg(rng.choice(_POOL)),),
                imm=8 * rng.randint(0, 3),  # heavy aliasing
            ))
        else:
            instructions.append(Instruction(
                opcode=opcode_by_name("stq"),
                srcs=(
                    int_reg(rng.choice(_POOL)),
                    int_reg(rng.choice(_POOL)),
                ),
                imm=8 * rng.randint(0, 3),
            ))
    return instructions


def hostile_program(rng: random.Random) -> Program:
    """``ENTRY -> LOOP (bounded, data-hostile) -> EXIT`` with final stores."""
    entry = BasicBlock(0, label="ENTRY")
    for position, pool_reg in enumerate(_POOL[:-1]):
        entry.instructions.append(Instruction(
            opcode=opcode_by_name("addqi"),
            dest=int_reg(pool_reg),
            srcs=(int_reg(31),),
            imm=0x8000 + 64 * position,
        ))
    # Loop counter in r6 (outside the hostile pool, so the loop terminates).
    entry.instructions.append(Instruction(
        opcode=opcode_by_name("addqi"), dest=int_reg(6),
        srcs=(int_reg(31),), imm=rng.randint(1, 4),
    ))

    loop = BasicBlock(1, label="LOOP", instructions=hostile_block(rng))
    loop.instructions.append(Instruction(
        opcode=opcode_by_name("subqi"), dest=int_reg(6),
        srcs=(int_reg(6),), imm=1,
    ))
    loop.instructions.append(Instruction(
        opcode=opcode_by_name("bne"), srcs=(int_reg(6),), target=1,
    ))

    exit_block = BasicBlock(2, label="EXIT")
    for position, pool_reg in enumerate(_POOL[:-1]):
        # Spill the whole pool so every live value is observable in memory.
        exit_block.instructions.append(Instruction(
            opcode=opcode_by_name("stq"),
            srcs=(int_reg(pool_reg), int_reg(31)),
            imm=0x100 + 8 * position,
        ))
    exit_block.instructions.append(Instruction(opcode=opcode_by_name("nop")))
    return Program(name="hostile", blocks=[entry, loop, exit_block])


def annotation_defects(program: Program) -> List[str]:
    """Soundness violations of a translated program's braid annotations."""
    defects: List[str] = []
    for block in program.blocks:
        if block.instructions and not block.instructions[0].annot.start:
            defects.append(f"block {block.index}: first instruction lacks S")
        for inst in block.instructions[:-1]:
            if inst.is_branch:
                defects.append(f"block {block.index}: non-terminal branch")
        for inst in block.instructions:
            if inst.annot.dest_internal and inst.dest.index >= NUM_INTERNAL_REGS:
                defects.append(
                    f"block {block.index}: internal dest {inst.dest} "
                    f"outside the internal file"
                )
            if inst.annot.dest_internal and inst.annot.dest_external:
                defects.append(
                    f"block {block.index}: destination {inst.dest} "
                    f"annotated both internal and external"
                )
    return defects


@dataclass(frozen=True)
class FuzzFailure:
    """One fuzz sample the translator miscompiled (or crashed on)."""

    sample: int
    seed: int
    internal_limit: int
    reason: str


@dataclass
class FuzzReport:
    """Outcome of one :func:`fuzz_translator` campaign."""

    samples: int = 0
    checks: int = 0
    seed: int = 0
    failures: List[FuzzFailure] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.failures

    def render(self) -> str:
        status = "PASS" if self.passed else "FAIL"
        lines = [
            f"translator fuzzing: {status} — {self.samples} programs, "
            f"{self.checks} equivalence checks (seed {self.seed})"
        ]
        for failure in self.failures[:10]:
            lines.append(
                f"  sample {failure.sample} "
                f"(internal_limit={failure.internal_limit}): {failure.reason}"
            )
        if len(self.failures) > 10:
            lines.append(f"  ... and {len(self.failures) - 10} more")
        return "\n".join(lines)


def fuzz_translator(
    samples: int = 200,
    seed: int = 0,
    internal_limits: Sequence[int] = (8,),
    translate: Optional[Callable[..., object]] = None,
    max_instructions: int = 20_000,
    fail_fast: bool = False,
) -> FuzzReport:
    """Differentially fuzz the translator over ``samples`` random programs.

    Deterministic for a fixed ``seed``.  Each program is translated at
    every internal register file size in ``internal_limits`` and checked
    for observable equivalence and annotation soundness.  ``translate``
    defaults to :func:`repro.core.braidify` and must accept
    ``(program, internal_limit=...)`` returning an object with a
    ``translated`` program attribute.
    """
    if translate is None:
        translate = braidify
    rng = random.Random(seed)
    report = FuzzReport(seed=seed)
    for sample in range(samples):
        program = hostile_program(rng)
        program.validate()
        report.samples += 1
        for limit in internal_limits:
            try:
                compilation = translate(program, internal_limit=limit)
                translated = compilation.translated
                translated.validate()
                equivalent = observably_equivalent(
                    program, translated, max_instructions=max_instructions
                )
                defects = annotation_defects(translated)
            except Exception as error:  # translator crash is a failure too
                report.failures.append(FuzzFailure(
                    sample=sample, seed=seed, internal_limit=limit,
                    reason=f"{type(error).__name__}: {error}",
                ))
            else:
                report.checks += 1
                if not equivalent:
                    report.failures.append(FuzzFailure(
                        sample=sample, seed=seed, internal_limit=limit,
                        reason="translated program not observably equivalent",
                    ))
                for defect in defects:
                    report.failures.append(FuzzFailure(
                        sample=sample, seed=seed, internal_limit=limit,
                        reason=f"unsound annotation: {defect}",
                    ))
            if fail_fast and report.failures:
                return report
    return report
