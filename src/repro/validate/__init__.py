"""Differential validation of the timing simulators.

Three independent lines of defence against a silently wrong simulator:

* **Lockstep architectural checking** (:mod:`.lockstep`) — replay every
  retirement against a fresh functional execution of the program and
  report the first divergence (PC, opcode, branch outcome, memory
  address, final architectural state).
* **µarch invariant checking** (:mod:`.invariants`) — per-cycle
  structural invariants of the shared machinery (ROB, register-file
  entry accounting, LSQ age order, checkpoint budget) plus each
  execution core's own structures.
* **Translator fuzzing** (:mod:`.fuzzing`) — random hostile programs
  through the braid translator, checked for observable equivalence.

Everything is opt-in: ``REPRO_VALIDATE`` (see :mod:`.config`) attaches
checkers to any :func:`repro.sim.run.simulate` call, and
``python -m repro.harness validate`` runs the full sweep
(:mod:`.runner`).  With validation off the timing cores' hot loops are
untouched.
"""

from __future__ import annotations

from typing import Optional

from .config import ENV_VALIDATE, ValidationConfig, validation_from_env
from .fuzzing import (
    FuzzFailure,
    FuzzReport,
    fuzz_translator,
    hostile_block,
    hostile_program,
)
from .invariants import InvariantChecker, InvariantViolation, check_now
from .lockstep import (
    Divergence,
    DivergenceError,
    LockstepChecker,
    lockstep_simulate,
)
from .runner import (
    CORE_FACTORIES,
    DEFAULT_CORES,
    CheckOutcome,
    ValidationReport,
    run_validation,
)


class ValidationSession:
    """The checkers attached to one simulation run."""

    def __init__(
        self,
        lockstep: Optional[LockstepChecker] = None,
        invariants: Optional[InvariantChecker] = None,
    ) -> None:
        self.lockstep = lockstep
        self.invariants = invariants

    def finish(self, expect_full: bool = True) -> None:
        """Run post-simulation checks (raises on any divergence)."""
        if self.lockstep is not None:
            self.lockstep.finish(expect_full=expect_full)


def attach_validation(
    core, workload, validation: Optional[ValidationConfig]
) -> Optional["ValidationSession"]:
    """Wire the configured checkers into ``core``; None when disabled."""
    if validation is None or not validation.enabled:
        return None
    lockstep = None
    invariants = None
    if validation.lockstep:
        lockstep = LockstepChecker(workload).attach(core)
    if validation.invariants:
        invariants = InvariantChecker().attach(core)
    return ValidationSession(lockstep=lockstep, invariants=invariants)


__all__ = [
    "ENV_VALIDATE",
    "ValidationConfig",
    "validation_from_env",
    "FuzzFailure",
    "FuzzReport",
    "fuzz_translator",
    "hostile_block",
    "hostile_program",
    "InvariantChecker",
    "InvariantViolation",
    "check_now",
    "Divergence",
    "DivergenceError",
    "LockstepChecker",
    "lockstep_simulate",
    "CORE_FACTORIES",
    "DEFAULT_CORES",
    "CheckOutcome",
    "ValidationReport",
    "run_validation",
    "ValidationSession",
    "attach_validation",
]
