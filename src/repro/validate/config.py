"""Validation configuration and the ``REPRO_VALIDATE`` environment knob.

Validation is strictly opt-in: the timing cores' hot loops pay nothing
unless a checker is attached (see the hook design in
:mod:`repro.sim.core`).  The environment variable turns checking on for
any entry point that reaches :func:`repro.sim.run.simulate` — including
full harness figure runs — without code changes:

* unset / ``0`` / ``off`` / ``false`` / ``no`` / ``none`` — disabled;
* ``1`` / ``on`` / ``true`` / ``invariants`` — per-cycle µarch invariant
  checking;
* ``lockstep`` — architectural lockstep against the functional executor;
* ``all`` / ``both`` — everything;
* comma-separated combinations (``lockstep,invariants``) compose.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Optional

ENV_VALIDATE = "REPRO_VALIDATE"

_OFF = ("", "0", "off", "false", "no", "none")
_INVARIANT_WORDS = ("1", "on", "true", "invariants", "invariant")
_LOCKSTEP_WORDS = ("lockstep", "arch")
_ALL_WORDS = ("all", "both", "full")


@dataclass(frozen=True)
class ValidationConfig:
    """Which checkers to attach to a timing-core run."""

    #: replay the retirement stream against the functional executor
    lockstep: bool = False
    #: per-cycle structural invariant checking (much slower)
    invariants: bool = False

    @property
    def enabled(self) -> bool:
        return self.lockstep or self.invariants

    @classmethod
    def parse(cls, text: str) -> Optional["ValidationConfig"]:
        """Parse a ``REPRO_VALIDATE`` value; ``None`` means disabled."""
        lockstep = False
        invariants = False
        any_word = False
        for word in text.strip().lower().split(","):
            word = word.strip()
            if word in _OFF:
                continue
            any_word = True
            if word in _INVARIANT_WORDS:
                invariants = True
            elif word in _LOCKSTEP_WORDS:
                lockstep = True
            elif word in _ALL_WORDS:
                lockstep = True
                invariants = True
            else:
                raise ValueError(
                    f"bad {ENV_VALIDATE} value {text!r}: unknown mode "
                    f"{word!r} (expected invariants/lockstep/all/off)"
                )
        if not any_word:
            return None
        return cls(lockstep=lockstep, invariants=invariants)


def validation_from_env() -> Optional[ValidationConfig]:
    """Resolve ``REPRO_VALIDATE``; unset/``0``/``off`` means no validation."""
    return ValidationConfig.parse(os.environ.get(ENV_VALIDATE, ""))
