"""Microarchitectural building blocks shared by all timing cores."""

from .branchpred import (
    AlwaysTakenPredictor,
    BimodalPredictor,
    BranchPredictor,
    PerceptronPredictor,
    PerfectPredictor,
    make_predictor,
)
from .busybits import BusyBitVector
from .bypass import BypassNetwork
from .cache import Cache, CacheStats, MemoryHierarchy, MemoryHierarchyConfig
from .checkpoint import Checkpoint, CheckpointManager
from .funit import FunctionalUnitPool
from .lsq import LoadStoreQueue, LSQStats
from .regfile import PortMeter, RegFileSpec, RegisterFileModel

__all__ = [
    "AlwaysTakenPredictor",
    "BimodalPredictor",
    "BranchPredictor",
    "PerceptronPredictor",
    "PerfectPredictor",
    "make_predictor",
    "BusyBitVector",
    "BypassNetwork",
    "Cache",
    "CacheStats",
    "MemoryHierarchy",
    "MemoryHierarchyConfig",
    "Checkpoint",
    "CheckpointManager",
    "FunctionalUnitPool",
    "LoadStoreQueue",
    "LSQStats",
    "PortMeter",
    "RegFileSpec",
    "RegisterFileModel",
]
