"""Set-associative caches and the paper's memory hierarchy.

Table 4: 64KB 4-way L1I (3-cycle), 64KB 2-way L1D (3-cycle), 1MB 8-way
unified L2 (6-cycle), 400-cycle main memory.  Latencies are *total* access
latencies at each level, as is conventional for this style of simulator.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional


@dataclass
class CacheStats:
    accesses: int = 0
    misses: int = 0

    @property
    def hits(self) -> int:
        return self.accesses - self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


class Cache:
    """One level of set-associative cache with true-LRU replacement."""

    def __init__(
        self,
        name: str,
        size_bytes: int,
        associativity: int,
        latency: int,
        line_bytes: int = 64,
        parent: Optional["Cache"] = None,
        memory_latency: int = 0,
    ) -> None:
        if size_bytes % (associativity * line_bytes):
            raise ValueError(f"{name}: size not divisible by way size")
        self.name = name
        self.size_bytes = size_bytes
        self.associativity = associativity
        self.latency = latency
        self.line_bytes = line_bytes
        self.parent = parent
        self.memory_latency = memory_latency
        self.num_sets = size_bytes // (associativity * line_bytes)
        # sets[set_index] maps tag -> None, insertion order = LRU order.
        self.sets: Dict[int, OrderedDict] = {}
        self.stats = CacheStats()

    def _locate(self, address: int):
        line = address // self.line_bytes
        return line % self.num_sets, line // self.num_sets

    def lookup(self, address: int) -> bool:
        """Whether ``address`` currently hits (no state change)."""
        set_index, tag = self._locate(address)
        return tag in self.sets.get(set_index, ())

    def access(self, address: int) -> int:
        """Access ``address``; returns total latency including lower levels."""
        set_index, tag = self._locate(address)
        cache_set = self.sets.setdefault(set_index, OrderedDict())
        self.stats.accesses += 1
        if tag in cache_set:
            cache_set.move_to_end(tag)
            return self.latency

        self.stats.misses += 1
        if self.parent is not None:
            below = self.parent.access(address)
        else:
            below = self.memory_latency
        cache_set[tag] = None
        if len(cache_set) > self.associativity:
            cache_set.popitem(last=False)
        return self.latency + below

    def flush(self) -> None:
        self.sets.clear()


@dataclass(frozen=True)
class MemoryHierarchyConfig:
    """Parameters of the paper's default memory system (Table 4)."""

    l1i_size: int = 64 * 1024
    l1i_assoc: int = 4
    l1i_latency: int = 3
    l1d_size: int = 64 * 1024
    l1d_assoc: int = 2
    l1d_latency: int = 3
    l2_size: int = 1024 * 1024
    l2_assoc: int = 8
    l2_latency: int = 6
    line_bytes: int = 64
    memory_latency: int = 400
    perfect: bool = False


class MemoryHierarchy:
    """L1I + L1D backed by a unified L2 and main memory."""

    def __init__(self, config: Optional[MemoryHierarchyConfig] = None) -> None:
        self.config = config if config is not None else MemoryHierarchyConfig()
        cfg = self.config
        self.l2 = Cache(
            "L2", cfg.l2_size, cfg.l2_assoc, cfg.l2_latency,
            line_bytes=cfg.line_bytes, memory_latency=cfg.memory_latency,
        )
        self.l1i = Cache(
            "L1I", cfg.l1i_size, cfg.l1i_assoc, cfg.l1i_latency,
            line_bytes=cfg.line_bytes, parent=self.l2,
        )
        self.l1d = Cache(
            "L1D", cfg.l1d_size, cfg.l1d_assoc, cfg.l1d_latency,
            line_bytes=cfg.line_bytes, parent=self.l2,
        )

    def instruction_fetch(self, address: int) -> int:
        """Latency of fetching the line holding ``address``."""
        if self.config.perfect:
            return self.config.l1i_latency
        return self.l1i.access(address)

    def data_access(self, address: int) -> int:
        """Latency of a load/store to ``address``."""
        if self.config.perfect:
            return self.config.l1d_latency
        return self.l1d.access(address)
