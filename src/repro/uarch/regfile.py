"""Register file entry and port models.

The timing cores do not store values (the functional executor did); what a
register file contributes to timing is *structural*: a bounded number of
in-flight value entries, and bounded read/write ports per cycle.

Entry model (see DESIGN.md substitutions): an entry is allocated when an
instruction with a register destination dispatches and released when it
retires — the file holds the in-flight value window, backed by an
architectural file that is not on the critical path.  This is the pressure
both paper sweeps measure (Figure 5 for the out-of-order register file,
Figure 6 for the braid external file).
"""

from __future__ import annotations

from dataclasses import dataclass


class PortMeter:
    """Per-cycle consumable ports (reads or writes)."""

    def __init__(self, ports: int) -> None:
        if ports <= 0:
            raise ValueError("a port meter needs at least one port")
        self.ports = ports
        self._cycle = -1
        self._used = 0
        self.total_grants = 0
        self.total_denials = 0

    def _roll(self, cycle: int) -> None:
        if cycle != self._cycle:
            self._cycle = cycle
            self._used = 0

    def available(self, cycle: int) -> int:
        self._roll(cycle)
        return self.ports - self._used

    def acquire(self, cycle: int, count: int = 1) -> bool:
        """Take ``count`` ports this cycle; all-or-nothing."""
        self._roll(cycle)
        if self._used + count > self.ports:
            self.total_denials += 1
            return False
        self._used += count
        self.total_grants += count
        return True


class RegisterFileModel:
    """Bounded in-flight entries plus read/write port meters."""

    def __init__(self, entries: int, read_ports: int, write_ports: int) -> None:
        if entries <= 0:
            raise ValueError("register file needs at least one entry")
        self.entries = entries
        self.read = PortMeter(read_ports)
        self.write = PortMeter(write_ports)
        self.in_flight = 0
        self.alloc_stalls = 0

    def can_allocate(self) -> bool:
        return self.in_flight < self.entries

    def allocate(self) -> bool:
        """Claim an entry for a new in-flight destination value."""
        if self.in_flight >= self.entries:
            self.alloc_stalls += 1
            return False
        self.in_flight += 1
        return True

    def release(self) -> None:
        """Return an entry (the producing instruction retired)."""
        if self.in_flight <= 0:
            raise RuntimeError("register file release underflow")
        self.in_flight -= 1


@dataclass(frozen=True)
class RegFileSpec:
    """Configuration triple for building a :class:`RegisterFileModel`."""

    entries: int
    read_ports: int
    write_ports: int

    def build(self) -> RegisterFileModel:
        return RegisterFileModel(self.entries, self.read_ports, self.write_ports)
