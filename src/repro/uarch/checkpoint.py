"""Checkpoint management for branch recovery (paper section 3.4).

Checkpoints are created for every in-flight branch; recovering from a
misprediction restores the most recent checkpoint older than the branch.
The braid microarchitecture needs *less* checkpoint state than a
conventional core because internal register values never cross basic-block
boundaries and therefore are not checkpointed; the model exposes the state
size so analyses can quantify that saving.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional


@dataclass
class Checkpoint:
    """One recovery point: branch sequence number plus saved state size."""

    seq: int
    state_words: int


class CheckpointManager:
    """Bounded stack of in-flight branch checkpoints."""

    def __init__(self, capacity: int, state_words_per_checkpoint: int) -> None:
        if capacity <= 0:
            raise ValueError("checkpoint capacity must be positive")
        self.capacity = capacity
        self.state_words = state_words_per_checkpoint
        self._stack: List[Checkpoint] = []
        self.created = 0
        self.restored = 0
        self.stalls = 0

    @property
    def occupancy(self) -> int:
        return len(self._stack)

    def can_take(self) -> bool:
        return len(self._stack) < self.capacity

    def take(self, seq: int) -> bool:
        """Create a checkpoint for branch ``seq``; False when full."""
        if not self.can_take():
            self.stalls += 1
            return False
        self._stack.append(Checkpoint(seq=seq, state_words=self.state_words))
        self.created += 1
        return True

    def release_older_than(self, seq: int) -> None:
        """Branch ``seq`` retired: free its checkpoint and any older ones."""
        self._stack = [cp for cp in self._stack if cp.seq > seq]

    def restore(self, seq: int) -> Optional[Checkpoint]:
        """Misprediction at branch ``seq``: squash younger checkpoints."""
        target: Optional[Checkpoint] = None
        survivors: List[Checkpoint] = []
        for checkpoint in self._stack:
            if checkpoint.seq < seq:
                survivors.append(checkpoint)
            elif checkpoint.seq == seq:
                target = checkpoint
        self._stack = survivors
        if target is not None:
            self.restored += 1
        return target

    def total_state_words(self) -> int:
        return sum(cp.state_words for cp in self._stack)

    def seqs(self) -> tuple:
        """Branch sequence numbers of live checkpoints, oldest first."""
        return tuple(cp.seq for cp in self._stack)

    def live(self) -> List[Checkpoint]:
        """Live checkpoints, oldest first (mutable — the fault injectors
        in :mod:`repro.faults` flip tag bits on these)."""
        return list(self._stack)
