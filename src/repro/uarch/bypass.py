"""Bypass network model.

The paper's conventional core has a 3-level bypass network moving 8 values
per cycle; the braid core needs only 1 level moving 2 values per cycle
because internal values never touch the network (Figure 8 sweeps the
bandwidth).  The model: a result is visible on the network for ``levels``
cycles after completion; a consumer issuing in that window takes one of the
``width`` per-cycle slots, otherwise it must wait for writeback and use a
register-file read port.
"""

from __future__ import annotations


class BypassNetwork:
    """Bounded-bandwidth, bounded-lifetime result forwarding."""

    def __init__(self, levels: int, width: int) -> None:
        if levels < 0 or width < 0:
            raise ValueError("bypass levels/width must be non-negative")
        self.levels = levels
        self.width = width
        self._cycle = -1
        self._used = 0
        self.total_forwards = 0
        self.total_denials = 0

    def _roll(self, cycle: int) -> None:
        if cycle != self._cycle:
            self._cycle = cycle
            self._used = 0

    def covers(self, cycle: int, produce_cycle: int) -> bool:
        """Whether a value completed at ``produce_cycle`` is still on the
        network at ``cycle``."""
        if self.width == 0 or self.levels == 0:
            return False
        return produce_cycle <= cycle <= produce_cycle + self.levels

    def available(self, cycle: int) -> int:
        self._roll(cycle)
        return self.width - self._used

    def acquire(self, cycle: int, count: int = 1) -> bool:
        """Claim ``count`` forwarding slots this cycle; all-or-nothing."""
        self._roll(cycle)
        if self._used + count > self.width:
            self.total_denials += 1
            return False
        self._used += count
        self.total_forwards += count
        return True
