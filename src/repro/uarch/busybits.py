"""Busy-bit vector (paper section 3.3).

Each BEU holds a busy-bit vector — one bit per external register file entry,
in the style of the MIPS R10000 — that tracks whether an external value is
ready.  With an 8-entry external file the whole structure is 8 bits, and the
paper notes synchronizing it across BEUs is easy because only ~2 external
values are produced per cycle.

In the simulator the readiness information itself comes from the dependence
scoreboard; this class models the *structure*: a bounded number of busy bits
(one per tracked in-flight external value) with set/clear accounting, so
tests and complexity analyses can reason about its size and traffic.
"""

from __future__ import annotations

from typing import Dict, Set


class BusyBitVector:
    """Bounded set of busy (not-yet-ready) external value tags."""

    def __init__(self, bits: int) -> None:
        if bits <= 0:
            raise ValueError("busy-bit vector needs at least one bit")
        self.bits = bits
        self._busy: Set[int] = set()
        self.set_events = 0
        self.clear_events = 0

    def mark_busy(self, tag: int) -> bool:
        """Mark an external value outstanding; False when out of bits."""
        if len(self._busy) >= self.bits and tag not in self._busy:
            return False
        self._busy.add(tag)
        self.set_events += 1
        return True

    def mark_ready(self, tag: int) -> None:
        self._busy.discard(tag)
        self.clear_events += 1

    def is_ready(self, tag: int) -> bool:
        return tag not in self._busy

    def toggle(self, tag: int) -> None:
        """Invert one bit (transient-fault model: a single-event upset
        either clears a busy bit early or sets a spurious one)."""
        if tag in self._busy:
            self.mark_ready(tag)
        else:
            self.mark_busy(tag)

    @property
    def occupancy(self) -> int:
        return len(self._busy)

    def snapshot(self) -> Dict[int, bool]:
        """Tag -> busy view (for tests)."""
        return {tag: True for tag in self._busy}
