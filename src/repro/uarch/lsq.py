"""Load/store queue: run-time memory disambiguation.

The braid microarchitecture "uses a conventional memory disambiguation
structure such as the load-store queue to enforce memory ordering at run
time" (paper section 3.3) — both cores share this model.

Policy (conservative, non-speculative): a load may issue once every older
in-flight store's address is known; if an older store to the same word has
not yet produced its data, the load waits and then receives the value by
store-to-load forwarding at L1-hit latency.  Stores logically update memory
at retirement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional


@dataclass
class _StoreEntry:
    seq: int
    word: int
    complete_cycle: Optional[int]  # None while data/address outstanding
    #: conflicted loads parked on this store until it executes (the
    #: memory-dependence arm of the event-driven wakeup index); ``None``
    #: until the first load parks, so the common store pays nothing
    waiters: Optional[list] = None


@dataclass
class LSQStats:
    forwards: int = 0
    conflicts: int = 0


class LoadStoreQueue:
    """Tracks in-flight stores; answers when a load may issue."""

    def __init__(self, forward_latency: int = 3) -> None:
        self.forward_latency = forward_latency
        self._stores: Dict[int, _StoreEntry] = {}
        self.stats = LSQStats()

    # ------------------------------------------------------------------ stores
    def store_dispatched(self, seq: int, word: int) -> None:
        """An older store entered the window (address known from the trace)."""
        self._stores[seq] = _StoreEntry(seq=seq, word=word, complete_cycle=None)

    def store_executed(self, seq: int, cycle: int) -> Optional[_StoreEntry]:
        """Record the store's completion cycle; returns the entry (if any)
        so the caller can wake loads parked on it."""
        entry = self._stores.get(seq)
        if entry is not None:
            entry.complete_cycle = cycle
        return entry

    def conflict_entry(self, seq: Optional[int], word: int) -> Optional[_StoreEntry]:
        """O(1) disambiguation against a precomputed conflict position.

        ``seq`` is the replay-time fact (:class:`repro.sim.workload.
        ReplayFacts` ``store_conflict``): the youngest older same-word
        store in the whole trace.  In-order dispatch and retirement make
        the probe exact — if that store is in flight it is the scan's
        answer; if it is absent every older matching store has retired
        (or was skipped by a sampling gap) and the load hits the cache.
        The word check keeps the probe honest under fault injection,
        which may flip an entry's address bits.
        """
        if seq is None:
            return None
        entry = self._stores.get(seq)
        if entry is not None and entry.word == word:
            return entry
        return None

    def store_retired(self, seq: int) -> None:
        self._stores.pop(seq, None)

    # ------------------------------------------------------------------- loads
    def load_conflict(self, seq: int, word: int) -> Optional[_StoreEntry]:
        """Youngest older in-flight store to the same word, if any."""
        best: Optional[_StoreEntry] = None
        for entry in self._stores.values():
            if entry.seq < seq and entry.word == word:
                if best is None or entry.seq > best.seq:
                    best = entry
        return best

    def load_latency(self, seq: int, word: int, cycle: int,
                     cache_latency: int) -> Optional[int]:
        """Latency for a load issuing at ``cycle``, or None if it must wait.

        ``None`` means an older matching store has not executed yet; the
        caller should retry on a later cycle.  If the matching store has
        executed but not retired, the load forwards from the queue.
        """
        conflict = self.load_conflict(seq, word)
        if conflict is None:
            return cache_latency
        if conflict.complete_cycle is None or conflict.complete_cycle > cycle:
            self.stats.conflicts += 1
            return None
        self.stats.forwards += 1
        return self.forward_latency

    @property
    def occupancy(self) -> int:
        return len(self._stores)

    def entries(self) -> list:
        """Live store entries in dispatch order (mutable — used by the
        fault injectors in :mod:`repro.faults` to flip entry bits)."""
        return list(self._stores.values())

    def seqs(self) -> tuple:
        """In-flight store sequence numbers, in insertion (dispatch) order."""
        return tuple(self._stores)
