"""Branch predictors.

The paper's front end uses a perceptron predictor with a 64-bit global
history and a 512-entry weight table (Table 4).  A perfect predictor backs
the Figure 1 potential-performance study.
"""

from __future__ import annotations

from typing import Protocol

import numpy as np


class BranchPredictor(Protocol):
    """Predict-then-update interface, driven in program (fetch) order."""

    def predict(self, pc: int) -> bool: ...

    def update(self, pc: int, taken: bool) -> None: ...


class PerfectPredictor:
    """Oracle predictor: every prediction is correct by construction."""

    is_perfect = True

    def predict(self, pc: int) -> bool:  # pragma: no cover - trivial
        return True

    def update(self, pc: int, taken: bool) -> None:  # pragma: no cover
        return None


class AlwaysTakenPredictor:
    """Static predict-taken baseline."""

    is_perfect = False

    def predict(self, pc: int) -> bool:
        return True

    def update(self, pc: int, taken: bool) -> None:
        return None


class BimodalPredictor:
    """Classic 2-bit saturating counter table (cheap baseline)."""

    is_perfect = False

    def __init__(self, entries: int = 4096) -> None:
        if entries & (entries - 1):
            raise ValueError("entries must be a power of two")
        self.entries = entries
        self.counters = np.full(entries, 2, dtype=np.int8)  # weakly taken

    def _index(self, pc: int) -> int:
        return (pc >> 3) & (self.entries - 1)

    def predict(self, pc: int) -> bool:
        return bool(self.counters[self._index(pc)] >= 2)

    def update(self, pc: int, taken: bool) -> None:
        index = self._index(pc)
        value = self.counters[index]
        if taken:
            self.counters[index] = min(3, value + 1)
        else:
            self.counters[index] = max(0, value - 1)


class PerceptronPredictor:
    """Perceptron predictor (Jiménez & Lin) with the paper's configuration.

    512 perceptrons, each with a bias weight plus one weight per bit of a
    64-bit global history.  Training uses the standard threshold rule
    ``theta = floor(1.93 * h + 14)``.
    """

    is_perfect = False

    def __init__(self, entries: int = 512, history_bits: int = 64) -> None:
        if entries & (entries - 1):
            raise ValueError("entries must be a power of two")
        self.entries = entries
        self.history_bits = history_bits
        self.theta = int(1.93 * history_bits + 14)
        self.weights = np.zeros((entries, history_bits + 1), dtype=np.int16)
        # history[i] in {-1, +1}; most recent outcome first.
        self.history = np.ones(history_bits, dtype=np.int16)
        self._last_sum = 0

    def _index(self, pc: int) -> int:
        return (pc >> 3) & (self.entries - 1)

    def predict(self, pc: int) -> bool:
        row = self.weights[self._index(pc)]
        total = int(row[0]) + int(row[1:] @ self.history)
        self._last_sum = total
        return total >= 0

    def update(self, pc: int, taken: bool) -> None:
        row = self.weights[self._index(pc)]
        outcome = 1 if taken else -1
        prediction_correct = (self._last_sum >= 0) == taken
        if not prediction_correct or abs(self._last_sum) <= self.theta:
            row[0] = np.clip(row[0] + outcome, -128, 127)
            adjusted = row[1:] + outcome * self.history
            np.clip(adjusted, -128, 127, out=row[1:])
        self.history[1:] = self.history[:-1]
        self.history[0] = outcome


def make_predictor(kind: str) -> BranchPredictor:
    """Factory: ``perfect``, ``perceptron``, ``bimodal`` or ``taken``."""
    if kind == "perfect":
        return PerfectPredictor()
    if kind == "perceptron":
        return PerceptronPredictor()
    if kind == "bimodal":
        return BimodalPredictor()
    if kind == "taken":
        return AlwaysTakenPredictor()
    raise ValueError(f"unknown predictor kind {kind!r}")
