"""Functional unit pools.

Paper Table 4: the conventional core has 8 general-purpose units; each braid
execution unit has 2.  Units are fully pipelined (one issue per unit per
cycle); an operation's result appears ``latency`` cycles after issue.
"""

from __future__ import annotations


class FunctionalUnitPool:
    """A pool of identical, fully pipelined general-purpose units."""

    def __init__(self, count: int) -> None:
        if count <= 0:
            raise ValueError("a functional unit pool needs at least one unit")
        self.count = count
        self._cycle = -1
        self._issued = 0
        self.total_issues = 0

    def _roll(self, cycle: int) -> None:
        if cycle != self._cycle:
            self._cycle = cycle
            self._issued = 0

    def available(self, cycle: int) -> int:
        self._roll(cycle)
        return self.count - self._issued

    def issue(self, cycle: int) -> bool:
        """Claim one unit issue slot this cycle."""
        self._roll(cycle)
        if self._issued >= self.count:
            return False
        self._issued += 1
        self.total_issues += 1
        return True
