"""Bit-level braid instruction encoding (paper Figure 3).

The paper extends each instruction with a braid start bit (``S``), a
temporary-operand bit (``T``) per source selecting the internal register
file, and internal/external destination bits (``I``/``E``).  The paper leaves
the base word format to the implementation; this module defines a concrete
64-bit encoding wide enough for three register sources (``cmov``) and a
22-bit displacement, and provides a lossless encode/decode round trip that is
exercised by the test suite.

Field layout (most significant bit first)::

    [63]      S       braid start
    [62:55]   opcode  8-bit opcode number
    [54]      I       destination written to internal register file
    [53]      E       destination written to external register file
    [52:46]   dest    register field (bit 6 = fp bank, bits 5..0 = index)
    [45]      T1      source 1 reads internal file
    [44:38]   src1    register field
    [37]      T2
    [36:30]   src2
    [29]      T3
    [28:22]   src3
    [21:0]    imm     22-bit signed immediate / displacement / branch target
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from .instruction import BraidAnnotation, Instruction
from .opcodes import Opcode, all_opcodes, to_signed
from .registers import Register, RegClass, Space

IMM_BITS = 22
IMM_MIN = -(1 << (IMM_BITS - 1))
IMM_MAX = (1 << (IMM_BITS - 1)) - 1


class EncodingError(ValueError):
    """Raised when an instruction cannot be represented in the braid format."""


def _opcode_table() -> Tuple[List[Opcode], dict]:
    table = list(all_opcodes())
    if len(table) > 256:
        raise EncodingError("opcode space exhausted (8-bit field)")
    return table, {op.name: number for number, op in enumerate(table)}


_OPCODES, _OPCODE_NUMBERS = _opcode_table()


def _encode_reg(reg: Optional[Register]) -> int:
    if reg is None:
        return 0
    bank = 1 if reg.rclass is RegClass.FP else 0
    return (bank << 6) | reg.index


def _decode_reg(field: int) -> Register:
    bank = RegClass.FP if (field >> 6) & 1 else RegClass.INT
    return Register(bank, field & 0x3F)


def encode(inst: Instruction) -> int:
    """Encode one instruction (with its braid bits) into a 64-bit word."""
    imm = inst.target if inst.is_branch else inst.imm
    if imm is None:
        imm = 0
    if not IMM_MIN <= imm <= IMM_MAX:
        raise EncodingError(f"immediate {imm} exceeds {IMM_BITS}-bit field")

    annot = inst.annot
    word = 0
    word |= (1 if annot.start else 0) << 63
    word |= _OPCODE_NUMBERS[inst.opcode.name] << 55
    word |= (1 if annot.dest_internal else 0) << 54
    word |= (1 if (annot.dest_external and inst.dest is not None) else 0) << 53
    word |= _encode_reg(inst.dest) << 46

    src_positions = ((45, 38), (37, 30), (29, 22))
    if len(inst.srcs) > len(src_positions):
        raise EncodingError(f"{inst.opcode.name}: too many sources to encode")
    for position, src in enumerate(inst.srcs):
        t_bit, reg_bit = src_positions[position]
        internal = annot.src_space(position) is Space.INTERNAL
        word |= (1 if internal else 0) << t_bit
        word |= _encode_reg(src) << reg_bit

    word |= imm & ((1 << IMM_BITS) - 1)
    return word


def decode(word: int) -> Instruction:
    """Decode a 64-bit word back into an annotated instruction."""
    opcode_number = (word >> 55) & 0xFF
    if opcode_number >= len(_OPCODES):
        raise EncodingError(f"unknown opcode number {opcode_number}")
    opcode = _OPCODES[opcode_number]

    start = bool((word >> 63) & 1)
    dest_internal = bool((word >> 54) & 1)
    dest_external = bool((word >> 53) & 1)
    dest = _decode_reg((word >> 46) & 0x7F) if opcode.has_dest else None

    src_positions = ((45, 38), (37, 30), (29, 22))
    srcs = []
    spaces = []
    for position in range(opcode.num_srcs):
        t_bit, reg_bit = src_positions[position]
        srcs.append(_decode_reg((word >> reg_bit) & 0x7F))
        spaces.append(
            Space.INTERNAL if (word >> t_bit) & 1 else Space.EXTERNAL
        )

    imm = to_signed(word & ((1 << IMM_BITS) - 1), IMM_BITS)
    annot = BraidAnnotation(
        braid_id=None,
        start=start,
        src_spaces=tuple(spaces),
        dest_internal=dest_internal,
        dest_external=dest_external if opcode.has_dest else True,
    )
    return Instruction(
        opcode=opcode,
        dest=dest,
        srcs=tuple(srcs),
        imm=0 if opcode.is_branch else imm,
        target=imm if opcode.is_branch else None,
        annot=annot,
    )


def encode_block(instructions) -> List[int]:
    """Encode a sequence of instructions into words."""
    return [encode(inst) for inst in instructions]


def decode_block(words) -> List[Instruction]:
    """Decode a sequence of words back into instructions."""
    return [decode(word) for word in words]
