"""Instruction model with braid annotations.

A static :class:`Instruction` is an opcode plus register/immediate operands
and an optional :class:`BraidAnnotation` carrying the ISA extension bits of
paper Figure 3:

* ``S`` — braid start bit (first instruction of a braid),
* ``T`` per source — source reads the internal (vs external) register file,
* ``I``/``E`` on the destination — result written to the internal file, the
  external file, or both.

Instructions compare by identity: the same static instruction object may
appear many times in a dynamic trace, and dataflow graphs key on identity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from .opcodes import Opcode
from .registers import Register, Space


@dataclass(frozen=True)
class BraidAnnotation:
    """Braid ISA extension bits attached to one instruction.

    ``braid_id`` identifies the braid within its basic block (not encoded in
    the machine word — the hardware only needs the S bit — but kept for
    analysis and statistics).
    """

    braid_id: Optional[int] = None
    start: bool = False
    src_spaces: Tuple[Space, ...] = ()
    dest_internal: bool = False
    dest_external: bool = True

    def src_space(self, position: int) -> Space:
        """Space of source operand ``position`` (external when unannotated)."""
        if position < len(self.src_spaces):
            return self.src_spaces[position]
        return Space.EXTERNAL


#: Annotation used by untranslated (non-braid) code.
PLAIN = BraidAnnotation()


@dataclass(eq=False)
class Instruction:
    """One static instruction.

    Memory operands follow Alpha conventions: a load reads ``srcs[0]`` as the
    base register and ``imm`` as the displacement; a store reads
    ``srcs[0]`` as the value to store and ``srcs[1]`` as the base register.
    Conditional branches read ``srcs[0]`` as the test value; ``target`` names
    the taken-path basic block.
    """

    opcode: Opcode
    dest: Optional[Register] = None
    srcs: Tuple[Register, ...] = ()
    imm: int = 0
    target: Optional[int] = None
    annot: BraidAnnotation = field(default=PLAIN)

    def __post_init__(self) -> None:
        if len(self.srcs) != self.opcode.num_srcs:
            raise ValueError(
                f"{self.opcode.name} expects {self.opcode.num_srcs} sources, "
                f"got {len(self.srcs)}"
            )
        if self.opcode.has_dest and self.dest is None:
            raise ValueError(f"{self.opcode.name} requires a destination")
        if not self.opcode.has_dest and self.dest is not None:
            raise ValueError(f"{self.opcode.name} takes no destination")
        if self.opcode.is_branch and self.target is None:
            raise ValueError(f"branch {self.opcode.name} requires a target")

    # ------------------------------------------------------------------ sugar
    @property
    def is_branch(self) -> bool:
        return self.opcode.is_branch

    @property
    def is_load(self) -> bool:
        return self.opcode.is_load

    @property
    def is_store(self) -> bool:
        return self.opcode.is_store

    @property
    def is_mem(self) -> bool:
        return self.opcode.is_mem

    @property
    def is_nop(self) -> bool:
        return self.opcode.is_nop

    @property
    def base_reg(self) -> Register:
        """Base address register of a memory operation."""
        if self.is_load:
            return self.srcs[0]
        if self.is_store:
            return self.srcs[1]
        raise ValueError(f"{self.opcode.name} is not a memory operation")

    def reads(self) -> Tuple[Register, ...]:
        """Registers read, excluding hardwired zeros (which carry no dataflow)."""
        return tuple(r for r in self.srcs if not r.is_zero)

    def writes(self) -> Optional[Register]:
        """Register written, or None (writes to a zero register are discarded)."""
        if self.dest is not None and not self.dest.is_zero:
            return self.dest
        return None

    # -------------------------------------------------------------- annotation
    def with_annotation(self, annot: BraidAnnotation) -> "Instruction":
        """A copy of this instruction carrying ``annot`` (fresh identity)."""
        return Instruction(
            opcode=self.opcode,
            dest=self.dest,
            srcs=self.srcs,
            imm=self.imm,
            target=self.target,
            annot=annot,
        )

    def with_operands(
        self,
        dest: Optional[Register] = None,
        srcs: Optional[Tuple[Register, ...]] = None,
    ) -> "Instruction":
        """A copy with rewritten register operands (used by register allocation)."""
        return Instruction(
            opcode=self.opcode,
            dest=self.dest if dest is None else dest,
            srcs=self.srcs if srcs is None else srcs,
            imm=self.imm,
            target=self.target,
            annot=self.annot,
        )

    def retargeted(self, target: int) -> "Instruction":
        """A copy of a branch pointing at a different basic block."""
        if not self.is_branch:
            raise ValueError("only branches have targets")
        return Instruction(
            opcode=self.opcode,
            dest=self.dest,
            srcs=self.srcs,
            imm=self.imm,
            target=target,
            annot=self.annot,
        )

    # ------------------------------------------------------------------ display
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{self.render()}>"

    def render(self) -> str:
        """Assembly-style rendering, annotated with braid bits when present."""
        parts = [self.opcode.name]
        body = []
        if self.is_load:
            body.append(f"{self.dest}, {self.imm}({self.srcs[0]})")
        elif self.is_store:
            body.append(f"{self.srcs[0]}, {self.imm}({self.srcs[1]})")
        elif self.is_branch:
            ops = ", ".join(str(s) for s in self.srcs)
            sep = ", " if ops else ""
            body.append(f"{ops}{sep}B{self.target}")
        else:
            ops = list(str(s) for s in self.srcs)
            if self.imm and not self.srcs:
                ops.append(f"#{self.imm}")
            if self.dest is not None:
                ops.append(str(self.dest))
            if self.opcode.name in ("lda", "ldah"):
                body.append(f"{self.dest}, {self.imm}({self.srcs[0]})")
            else:
                body.append(", ".join(ops))
        parts.append(" ".join(body))
        text = " ".join(parts)
        bits = []
        if self.annot.start:
            bits.append("S")
        if self.annot.braid_id is not None:
            bits.append(f"b{self.annot.braid_id}")
        if bits:
            text += "  ;" + ",".join(bits)
        return text
