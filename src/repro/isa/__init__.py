"""Alpha-EV6-like instruction set with the braid ISA extension.

Public surface:

* :mod:`repro.isa.registers` — register names, banks, operand spaces;
* :mod:`repro.isa.opcodes` — opcode table with executable semantics;
* :mod:`repro.isa.instruction` — static instructions and braid annotations;
* :mod:`repro.isa.program` — basic blocks and programs;
* :mod:`repro.isa.assembler` — a two-pass textual assembler;
* :mod:`repro.isa.encoding` — the 64-bit braid instruction word (Figure 3).
"""

from .assembler import AssemblerError, assemble
from .encoding import EncodingError, decode, decode_block, encode, encode_block
from .instruction import PLAIN, BraidAnnotation, Instruction
from .opcodes import (
    CATEGORY_LATENCY,
    EncodingFormat,
    OpCategory,
    Opcode,
    all_opcodes,
    opcode_by_name,
    to_signed,
    to_unsigned,
)
from .program import BasicBlock, Program, ProgramError
from .registers import (
    FZERO,
    NUM_INTERNAL_REGS,
    ZERO,
    RegClass,
    Register,
    Space,
    all_registers,
    fp_reg,
    int_reg,
    parse_register,
)

__all__ = [
    "AssemblerError",
    "assemble",
    "EncodingError",
    "decode",
    "decode_block",
    "encode",
    "encode_block",
    "PLAIN",
    "BraidAnnotation",
    "Instruction",
    "CATEGORY_LATENCY",
    "EncodingFormat",
    "OpCategory",
    "Opcode",
    "all_opcodes",
    "opcode_by_name",
    "to_signed",
    "to_unsigned",
    "BasicBlock",
    "Program",
    "ProgramError",
    "FZERO",
    "NUM_INTERNAL_REGS",
    "ZERO",
    "RegClass",
    "Register",
    "Space",
    "all_registers",
    "fp_reg",
    "int_reg",
    "parse_register",
]
