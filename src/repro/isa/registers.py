"""Register model for the Alpha-EV6-like ISA used throughout the reproduction.

The paper compiles SPEC CPU2000 for the Alpha ISA: 32 integer registers
(``r0``..``r31`` with ``r31`` hardwired to zero) and 32 floating-point
registers (``f0``..``f31`` with ``f31`` hardwired to zero).  After braid
register allocation (paper section 3.1) an operand additionally carries a
*storage space*: the external register file shared by all braids, or the small
per-BEU internal register file that holds values which never escape a braid.
"""

from __future__ import annotations

import enum
from typing import Dict, Tuple


class RegClass(enum.Enum):
    """Architectural register class (which bank a register name lives in)."""

    INT = "int"
    FP = "fp"


class Space(enum.Enum):
    """Storage space of an operand after braid register allocation.

    ``EXTERNAL`` corresponds to a clear T/I bit and ``INTERNAL`` to a set one
    in the braid instruction encoding of paper Figure 3.  Untranslated code
    uses ``EXTERNAL`` everywhere.
    """

    EXTERNAL = "ext"
    INTERNAL = "int"


NUM_INT_REGS = 32
NUM_FP_REGS = 32
INT_ZERO_INDEX = 31
FP_ZERO_INDEX = 31

#: Number of entries in the per-BEU internal register file (paper section 3.3:
#: "Through empirical analysis, 8 internal registers are sufficient").
NUM_INTERNAL_REGS = 8


class Register:
    """An architectural register name (interned; compare with ``is`` or ``==``).

    A ``Register`` is only a *name*.  Whether a given operand reads or writes
    the external or internal file is carried by the instruction's braid
    annotation, not by the register itself.
    """

    __slots__ = ("rclass", "index")
    _pool: Dict[Tuple[RegClass, int], "Register"] = {}

    def __new__(cls, rclass: RegClass, index: int) -> "Register":
        key = (rclass, index)
        reg = cls._pool.get(key)
        if reg is None:
            limit = NUM_INT_REGS if rclass is RegClass.INT else NUM_FP_REGS
            if not 0 <= index < limit:
                raise ValueError(f"register index {index} out of range for {rclass}")
            reg = super().__new__(cls)
            reg.rclass = rclass
            reg.index = index
            cls._pool[key] = reg
        return reg

    def __reduce__(self):
        # Interned flyweight: serialize as (class, index) and rehydrate
        # through __new__, which restores identity from the pool.
        return (Register, (self.rclass, self.index))

    @property
    def is_zero(self) -> bool:
        """True for the hardwired zero registers r31 / f31."""
        if self.rclass is RegClass.INT:
            return self.index == INT_ZERO_INDEX
        return self.index == FP_ZERO_INDEX

    @property
    def is_fp(self) -> bool:
        return self.rclass is RegClass.FP

    @property
    def name(self) -> str:
        prefix = "r" if self.rclass is RegClass.INT else "f"
        return f"{prefix}{self.index}"

    def __repr__(self) -> str:
        return self.name

    def __hash__(self) -> int:
        return hash((self.rclass, self.index))

    def __eq__(self, other: object) -> bool:
        return self is other or (
            isinstance(other, Register)
            and self.rclass == other.rclass
            and self.index == other.index
        )

    # Registers sort by (class, index); handy for deterministic output.
    def __lt__(self, other: "Register") -> bool:
        return (self.rclass.value, self.index) < (other.rclass.value, other.index)


def int_reg(index: int) -> Register:
    """The integer register ``r<index>``."""
    return Register(RegClass.INT, index)


def fp_reg(index: int) -> Register:
    """The floating-point register ``f<index>``."""
    return Register(RegClass.FP, index)


#: Hardwired integer zero register (Alpha r31).
ZERO = int_reg(INT_ZERO_INDEX)
#: Hardwired floating-point zero register (Alpha f31).
FZERO = fp_reg(FP_ZERO_INDEX)


def parse_register(text: str) -> Register:
    """Parse ``r12``/``f3``/``zero``/``fzero`` into a :class:`Register`."""
    text = text.strip().lower()
    if text == "zero":
        return ZERO
    if text == "fzero":
        return FZERO
    if len(text) < 2 or text[0] not in "rf" or not text[1:].isdigit():
        raise ValueError(f"malformed register name: {text!r}")
    index = int(text[1:])
    return int_reg(index) if text[0] == "r" else fp_reg(index)


def all_registers() -> Tuple[Register, ...]:
    """Every architectural register, integer bank first."""
    ints = tuple(int_reg(i) for i in range(NUM_INT_REGS))
    fps = tuple(fp_reg(i) for i in range(NUM_FP_REGS))
    return ints + fps
