"""A small two-pass assembler for the Alpha-like ISA.

The assembler exists so that tests, examples, and hand-written kernels (such
as the paper's Figure 2 ``gcc`` life-analysis loop) can be expressed in
readable text instead of constructed object by object.

Syntax::

    .program life_loop
    .block L0
        addq r1, r4, r0       ; rc is the destination (Alpha order)
        addl r5, #1, r5       ; literal second operand -> immediate variant
        ldl  r3, 0(r0)        ; load:  dest, disp(base)
        stl  r3, 4(r2)        ; store: value, disp(base)
        cmovne r0, #1, r6     ; conditional move of a literal
        bne  r1, L0           ; conditional branch to a block label
    .block L1
        nop

Comments run from ``;`` or ``#`` (when not an immediate) to end of line.
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from .instruction import Instruction
from .opcodes import IMM_VARIANTS, OpCategory, opcode_by_name
from .program import BasicBlock, Program, ProgramError
from .registers import Register, parse_register


class AssemblerError(ValueError):
    """Raised on malformed assembly input."""

    def __init__(self, line_number: int, message: str) -> None:
        super().__init__(f"line {line_number}: {message}")
        self.line_number = line_number


_MEM_OPERAND = re.compile(r"^(-?(?:0x[0-9a-f]+|\d+))\s*\(\s*(\w+)\s*\)$", re.I)


def _parse_int(text: str) -> int:
    text = text.strip()
    if text.startswith("#"):
        text = text[1:]
    return int(text, 0)


def _split_operands(text: str) -> List[str]:
    return [part.strip() for part in text.split(",") if part.strip()]


class _PendingBranch:
    """A branch whose label target is resolved in the second pass."""

    def __init__(self, line_number: int, opcode_name: str,
                 srcs: Tuple[Register, ...], label: str) -> None:
        self.line_number = line_number
        self.opcode_name = opcode_name
        self.srcs = srcs
        self.label = label


def assemble(text: str, name: Optional[str] = None) -> Program:
    """Assemble ``text`` into a validated :class:`Program`."""
    program_name = name or "program"
    blocks: List[BasicBlock] = []
    current: Optional[BasicBlock] = None
    entry_label: Optional[str] = None

    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.split(";", 1)[0].strip()
        if not line:
            continue

        if line.startswith(".program"):
            program_name = line.split(None, 1)[1].strip()
            continue
        if line.startswith(".entry"):
            entry_label = line.split(None, 1)[1].strip()
            continue
        if line.startswith(".block"):
            label = line.split(None, 1)[1].strip()
            current = BasicBlock(index=len(blocks), label=label)
            blocks.append(current)
            continue
        if line.startswith("."):
            raise AssemblerError(line_number, f"unknown directive {line!r}")

        if current is None:
            current = BasicBlock(index=0, label="L0")
            blocks.append(current)
        current.instructions.append(_parse_instruction(line_number, line))

    if not blocks:
        raise AssemblerError(0, "no instructions")

    program = Program(name=program_name, blocks=blocks)
    _resolve_labels(program)
    if entry_label is not None:
        program.entry = program.block_by_label(entry_label).index
    try:
        program.validate()
    except ProgramError as exc:
        raise AssemblerError(0, str(exc)) from exc
    return program


def _resolve_labels(program: Program) -> None:
    for block in program.blocks:
        for position, inst in enumerate(block.instructions):
            if isinstance(inst, _PendingBranch):
                try:
                    target = program.block_by_label(inst.label).index
                except KeyError:
                    raise AssemblerError(
                        inst.line_number, f"undefined block label {inst.label!r}"
                    ) from None
                block.instructions[position] = Instruction(
                    opcode=opcode_by_name(inst.opcode_name),
                    srcs=inst.srcs,
                    target=target,
                )


def _parse_instruction(line_number: int, line: str):
    parts = line.split(None, 1)
    mnemonic = parts[0].lower()
    operand_text = parts[1] if len(parts) > 1 else ""
    operands = _split_operands(operand_text)

    try:
        opcode = opcode_by_name(mnemonic)
    except KeyError:
        raise AssemblerError(line_number, f"unknown opcode {mnemonic!r}") from None

    try:
        return _build(line_number, mnemonic, opcode, operands)
    except (ValueError, IndexError) as exc:
        if isinstance(exc, AssemblerError):
            raise
        raise AssemblerError(line_number, f"{mnemonic}: {exc}") from exc


def _build(line_number: int, mnemonic: str, opcode, operands: List[str]):
    category = opcode.category

    if category is OpCategory.NOP:
        return Instruction(opcode=opcode)

    if category is OpCategory.BRANCH:
        if opcode.conditional:
            if len(operands) != 2:
                raise ValueError("expected: test-register, target-label")
            return _PendingBranch(
                line_number, mnemonic, (parse_register(operands[0]),), operands[1]
            )
        if len(operands) != 1:
            raise ValueError("expected: target-label")
        return _PendingBranch(line_number, mnemonic, (), operands[0])

    if category is OpCategory.LOAD or mnemonic in ("lda", "ldah"):
        if len(operands) != 2:
            raise ValueError("expected: dest, disp(base)")
        dest = parse_register(operands[0])
        match = _MEM_OPERAND.match(operands[1])
        if not match:
            raise ValueError(f"malformed memory operand {operands[1]!r}")
        disp, base = _parse_int(match.group(1)), parse_register(match.group(2))
        return Instruction(opcode=opcode, dest=dest, srcs=(base,), imm=disp)

    if category is OpCategory.STORE:
        if len(operands) != 2:
            raise ValueError("expected: value, disp(base)")
        value = parse_register(operands[0])
        match = _MEM_OPERAND.match(operands[1])
        if not match:
            raise ValueError(f"malformed memory operand {operands[1]!r}")
        disp, base = _parse_int(match.group(1)), parse_register(match.group(2))
        return Instruction(opcode=opcode, srcs=(value, base), imm=disp)

    # Computational forms: sources..., destination last.  A literal second
    # operand rewrites the opcode to its register-immediate variant.
    if len(operands) >= 2 and _is_literal(operands[1]):
        variant = IMM_VARIANTS.get(mnemonic)
        if variant is None and opcode.num_srcs > 1:
            raise ValueError("no immediate variant for this opcode")
        if variant is not None:
            opcode = opcode_by_name(variant)
            mnemonic = variant
        imm = _parse_int(operands[1])
        rest = [operands[0]] + operands[2:]
        if opcode.category is OpCategory.CMOV:
            # cmovnei test, #imm, dest : the old destination is also read.
            dest = parse_register(rest[-1])
            return Instruction(
                opcode=opcode,
                dest=dest,
                srcs=(parse_register(rest[0]), dest),
                imm=imm,
            )
        dest = parse_register(rest[-1])
        srcs = tuple(parse_register(token) for token in rest[:-1])
        return Instruction(opcode=opcode, dest=dest, srcs=srcs, imm=imm)

    if opcode.category is OpCategory.CMOV:
        if len(operands) != 3:
            raise ValueError("expected: test, value, dest")
        dest = parse_register(operands[2])
        return Instruction(
            opcode=opcode,
            dest=dest,
            srcs=(parse_register(operands[0]), parse_register(operands[1]), dest),
        )

    dest = parse_register(operands[-1])
    srcs = tuple(parse_register(token) for token in operands[:-1])
    return Instruction(opcode=opcode, dest=dest, srcs=srcs)


def _is_literal(token: str) -> bool:
    token = token.strip()
    if token.startswith("#"):
        return True
    try:
        int(token, 0)
    except ValueError:
        return False
    return True
