"""Opcode definitions for the Alpha-EV6-like ISA.

Each opcode carries its functional-unit category, execution latency (in
cycles, excluding cache access for memory operations), operand signature, and
executable semantics.  The subset mirrors the instructions that appear in the
paper's Figure 2 example (``addq``, ``ldl``, ``andnot``, ``zapnot``,
``cmovne``, ``lda``, ``bne``...) plus enough integer/floating-point coverage
to synthesize SPEC-CPU2000-like workloads.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence, Tuple

MASK64 = (1 << 64) - 1
MASK32 = (1 << 32) - 1


def to_signed(value: int, bits: int = 64) -> int:
    """Interpret an unsigned ``bits``-wide value as two's-complement."""
    value &= (1 << bits) - 1
    if value >= 1 << (bits - 1):
        value -= 1 << bits
    return value


def to_unsigned(value: int, bits: int = 64) -> int:
    """Wrap a Python int into an unsigned ``bits``-wide value."""
    return value & ((1 << bits) - 1)


def _sext32(value: int) -> int:
    """Sign-extend the low 32 bits to 64 bits (Alpha ``addl``-style results)."""
    return to_unsigned(to_signed(value & MASK32, 32))


class OpCategory(enum.Enum):
    """Functional-unit class an opcode executes on."""

    IALU = "ialu"
    IMUL = "imul"
    CMOV = "cmov"
    LOAD = "load"
    STORE = "store"
    BRANCH = "branch"
    FADD = "fadd"
    FMUL = "fmul"
    FDIV = "fdiv"
    FMOV = "fmov"
    XFER = "xfer"  # cross-bank int<->fp moves
    NOP = "nop"


class EncodingFormat(enum.Enum):
    """Braid instruction formats of paper Figure 3."""

    ZERO_DEST = "zero-dest"
    ONE_REG = "one-reg"
    TWO_REG = "two-reg"


#: Default execution latencies per category, in cycles.  Loads additionally
#: pay the data-cache access latency modelled by the memory system.
CATEGORY_LATENCY: Dict[OpCategory, int] = {
    OpCategory.IALU: 1,
    OpCategory.IMUL: 7,
    OpCategory.CMOV: 1,
    OpCategory.LOAD: 1,
    OpCategory.STORE: 1,
    OpCategory.BRANCH: 1,
    OpCategory.FADD: 4,
    OpCategory.FMUL: 4,
    OpCategory.FDIV: 12,
    OpCategory.FMOV: 1,
    OpCategory.XFER: 3,
    OpCategory.NOP: 1,
}

Semantics = Callable[[Sequence, int], object]


@dataclass(frozen=True)
class Opcode:
    """A machine opcode: name, signature, latency, and executable semantics.

    ``semantics`` maps ``(source_values, immediate)`` to the produced value for
    computational opcodes, to the taken/not-taken decision (bool) for
    branches, and is ``None`` for loads/stores/nops whose behaviour lives in
    the executor.
    """

    name: str
    category: OpCategory
    num_srcs: int
    has_dest: bool
    dest_fp: bool = False
    srcs_fp: Tuple[bool, ...] = ()
    semantics: Optional[Semantics] = None
    latency: Optional[int] = None
    conditional: bool = False  # for branches: conditional vs always-taken

    def __post_init__(self) -> None:
        if self.latency is None:
            object.__setattr__(self, "latency", CATEGORY_LATENCY[self.category])
        if len(self.srcs_fp) != self.num_srcs:
            object.__setattr__(self, "srcs_fp", tuple([self.dest_fp] * self.num_srcs))

    @property
    def is_branch(self) -> bool:
        return self.category is OpCategory.BRANCH

    @property
    def is_load(self) -> bool:
        return self.category is OpCategory.LOAD

    @property
    def is_store(self) -> bool:
        return self.category is OpCategory.STORE

    @property
    def is_mem(self) -> bool:
        return self.is_load or self.is_store

    @property
    def is_nop(self) -> bool:
        return self.category is OpCategory.NOP

    @property
    def encoding_format(self) -> EncodingFormat:
        """Which of the paper's Figure 3 instruction formats this opcode uses."""
        if not self.has_dest:
            return EncodingFormat.ZERO_DEST
        if self.num_srcs <= 1:
            return EncodingFormat.ONE_REG
        return EncodingFormat.TWO_REG

    def __repr__(self) -> str:
        return f"Opcode({self.name})"

    def __reduce__(self):
        # Opcodes are registered module-level singletons whose ``semantics``
        # lambdas cannot be pickled; serialize by name and rehydrate from the
        # registry, which also preserves identity across a pickle round-trip.
        if _REGISTRY.get(self.name) is self:
            return (opcode_by_name, (self.name,))
        return super().__reduce__()


_REGISTRY: Dict[str, Opcode] = {}


def opcode_by_name(name: str) -> Opcode:
    """The registered opcode called ``name`` (pickle reconstruction hook)."""
    return _REGISTRY[name]


def _register(opcode: Opcode) -> Opcode:
    if opcode.name in _REGISTRY:
        raise ValueError(f"duplicate opcode {opcode.name}")
    _REGISTRY[opcode.name] = opcode
    return opcode


def _ialu2(name: str, fn: Callable[[int, int], int]) -> Opcode:
    return _register(
        Opcode(
            name,
            OpCategory.IALU,
            num_srcs=2,
            has_dest=True,
            semantics=lambda srcs, imm, fn=fn: to_unsigned(fn(srcs[0], srcs[1])),
        )
    )


def _fp2(name: str, category: OpCategory, fn: Callable[[float, float], float]) -> Opcode:
    def run(srcs: Sequence, imm: int, fn=fn) -> float:
        try:
            result = fn(float(srcs[0]), float(srcs[1]))
        except (ZeroDivisionError, OverflowError, ValueError):
            return 0.0
        if math.isnan(result) or math.isinf(result):
            return 0.0
        return result

    return _register(
        Opcode(name, category, num_srcs=2, has_dest=True, dest_fp=True, semantics=run)
    )


def _branch(name: str, fn: Optional[Callable[[int], bool]], fp: bool = False) -> Opcode:
    if fn is None:
        return _register(
            Opcode(name, OpCategory.BRANCH, num_srcs=0, has_dest=False,
                   semantics=lambda srcs, imm: True, conditional=False)
        )
    return _register(
        Opcode(
            name,
            OpCategory.BRANCH,
            num_srcs=1,
            has_dest=False,
            srcs_fp=(fp,),
            semantics=lambda srcs, imm, fn=fn: bool(fn(srcs[0])),
            conditional=True,
        )
    )


# --- integer ALU ------------------------------------------------------------
ADDQ = _ialu2("addq", lambda a, b: a + b)
SUBQ = _ialu2("subq", lambda a, b: a - b)
ADDL = _register(
    Opcode("addl", OpCategory.IALU, 2, True,
           semantics=lambda s, imm: _sext32(s[0] + s[1]))
)
SUBL = _register(
    Opcode("subl", OpCategory.IALU, 2, True,
           semantics=lambda s, imm: _sext32(s[0] - s[1]))
)
AND = _ialu2("and", lambda a, b: a & b)
BIS = _ialu2("bis", lambda a, b: a | b)
XOR = _ialu2("xor", lambda a, b: a ^ b)
ANDNOT = _ialu2("andnot", lambda a, b: a & ~b)
ORNOT = _ialu2("ornot", lambda a, b: a | ~b)
SLL = _ialu2("sll", lambda a, b: a << (b & 63))
SRL = _ialu2("srl", lambda a, b: (a & MASK64) >> (b & 63))
SRA = _ialu2("sra", lambda a, b: to_signed(a) >> (b & 63))
CMPEQ = _ialu2("cmpeq", lambda a, b: int(a == b))
CMPLT = _ialu2("cmplt", lambda a, b: int(to_signed(a) < to_signed(b)))
CMPLE = _ialu2("cmple", lambda a, b: int(to_signed(a) <= to_signed(b)))
CMPULT = _ialu2("cmpult", lambda a, b: int((a & MASK64) < (b & MASK64)))
ZAPNOT = _register(
    Opcode(
        "zapnot",
        OpCategory.IALU,
        2,
        True,
        semantics=lambda s, imm: to_unsigned(
            sum(
                (s[0] & (0xFF << (8 * i)))
                for i in range(8)
                if (s[1] >> i) & 1
            )
        ),
    )
)

S4ADDQ = _ialu2("s4addq", lambda a, b: 4 * a + b)
S8ADDQ = _ialu2("s8addq", lambda a, b: 8 * a + b)
S4SUBQ = _ialu2("s4subq", lambda a, b: 4 * a - b)
S8SUBQ = _ialu2("s8subq", lambda a, b: 8 * a - b)
EXTBL = _register(
    Opcode("extbl", OpCategory.IALU, 2, True,
           semantics=lambda s, imm: ((s[0] & MASK64) >> (8 * (s[1] & 7))) & 0xFF)
)
INSBL = _register(
    Opcode("insbl", OpCategory.IALU, 2, True,
           semantics=lambda s, imm: to_unsigned((s[0] & 0xFF) << (8 * (s[1] & 7))))
)
MSKBL = _register(
    Opcode("mskbl", OpCategory.IALU, 2, True,
           semantics=lambda s, imm: to_unsigned(
               s[0] & ~(0xFF << (8 * (s[1] & 7)))))
)
UMULH = _register(
    Opcode("umulh", OpCategory.IMUL, 2, True,
           semantics=lambda s, imm: ((s[0] & MASK64) * (s[1] & MASK64)) >> 64)
)

# lda/ldah: address-arithmetic with one register source and an offset.
LDA = _register(
    Opcode("lda", OpCategory.IALU, 1, True,
           semantics=lambda s, imm: to_unsigned(s[0] + imm))
)
LDAH = _register(
    Opcode("ldah", OpCategory.IALU, 1, True,
           semantics=lambda s, imm: to_unsigned(s[0] + (imm << 16)))
)

# --- integer ALU, register-immediate forms -----------------------------------
def _ialu_imm(name: str, fn: Callable[[int, int], int],
              result=lambda v: to_unsigned(v)) -> Opcode:
    return _register(
        Opcode(
            name,
            OpCategory.IALU,
            num_srcs=1,
            has_dest=True,
            semantics=lambda srcs, imm, fn=fn, result=result: result(fn(srcs[0], imm)),
        )
    )


ADDQI = _ialu_imm("addqi", lambda a, b: a + b)
SUBQI = _ialu_imm("subqi", lambda a, b: a - b)
ADDLI = _ialu_imm("addli", lambda a, b: a + b, result=_sext32)
SUBLI = _ialu_imm("subli", lambda a, b: a - b, result=_sext32)
ANDI = _ialu_imm("andi", lambda a, b: a & b)
BISI = _ialu_imm("bisi", lambda a, b: a | b)
XORI = _ialu_imm("xori", lambda a, b: a ^ b)
SLLI = _ialu_imm("slli", lambda a, b: a << (b & 63))
SRLI = _ialu_imm("srli", lambda a, b: (a & MASK64) >> (b & 63))
SRAI = _ialu_imm("srai", lambda a, b: to_signed(a) >> (b & 63))
CMPEQI = _ialu_imm("cmpeqi", lambda a, b: int(a == to_unsigned(b)))
CMPLTI = _ialu_imm("cmplti", lambda a, b: int(to_signed(a) < b))
CMPLEI = _ialu_imm("cmplei", lambda a, b: int(to_signed(a) <= b))
ZAPNOTI = _ialu_imm(
    "zapnoti",
    lambda a, b: sum((a & (0xFF << (8 * i))) for i in range(8) if (b >> i) & 1),
)

#: Mapping used by the assembler to rewrite ``op ra, #lit, rc`` into the
#: register-immediate variant of ``op``.
IMM_VARIANTS: Dict[str, str] = {
    "addq": "addqi", "subq": "subqi", "addl": "addli", "subl": "subli",
    "and": "andi", "bis": "bisi", "xor": "xori",
    "sll": "slli", "srl": "srli", "sra": "srai",
    "cmpeq": "cmpeqi", "cmplt": "cmplti", "cmple": "cmplei",
    "zapnot": "zapnoti", "mulq": "mulqi", "mull": "mulli",
    "cmovne": "cmovnei", "cmoveq": "cmoveqi",
}

# --- integer multiply --------------------------------------------------------
MULQ = _register(
    Opcode("mulq", OpCategory.IMUL, 2, True,
           semantics=lambda s, imm: to_unsigned(s[0] * s[1]))
)
MULL = _register(
    Opcode("mull", OpCategory.IMUL, 2, True,
           semantics=lambda s, imm: _sext32(s[0] * s[1]))
)

MULQI = _register(
    Opcode("mulqi", OpCategory.IMUL, 1, True,
           semantics=lambda s, imm: to_unsigned(s[0] * imm))
)
MULLI = _register(
    Opcode("mulli", OpCategory.IMUL, 1, True,
           semantics=lambda s, imm: _sext32(s[0] * imm))
)

# --- conditional moves (read test, new value, and the old destination) -------
def _cmov(name: str, cond: Callable[[int], bool]) -> Opcode:
    return _register(
        Opcode(
            name,
            OpCategory.CMOV,
            num_srcs=3,
            has_dest=True,
            semantics=lambda s, imm, cond=cond: to_unsigned(
                s[1] if cond(s[0]) else s[2]
            ),
        )
    )


CMOVEQ = _cmov("cmoveq", lambda a: a == 0)
CMOVNE = _cmov("cmovne", lambda a: a != 0)
CMOVLT = _cmov("cmovlt", lambda a: to_signed(a) < 0)
CMOVGE = _cmov("cmovge", lambda a: to_signed(a) >= 0)


def _cmov_imm(name: str, cond: Callable[[int], bool]) -> Opcode:
    """Conditional move of an immediate: reads (test, old destination)."""
    return _register(
        Opcode(
            name,
            OpCategory.CMOV,
            num_srcs=2,
            has_dest=True,
            semantics=lambda s, imm, cond=cond: to_unsigned(
                imm if cond(s[0]) else s[1]
            ),
        )
    )


CMOVEQI = _cmov_imm("cmoveqi", lambda a: a == 0)
CMOVNEI = _cmov_imm("cmovnei", lambda a: a != 0)

# --- memory ------------------------------------------------------------------
LDQ = _register(Opcode("ldq", OpCategory.LOAD, 1, True))
LDL = _register(Opcode("ldl", OpCategory.LOAD, 1, True))
LDS = _register(Opcode("lds", OpCategory.LOAD, 1, True, dest_fp=True, srcs_fp=(False,)))
LDT = _register(Opcode("ldt", OpCategory.LOAD, 1, True, dest_fp=True, srcs_fp=(False,)))
# Stores read (value, base); no destination.
STQ = _register(Opcode("stq", OpCategory.STORE, 2, False, srcs_fp=(False, False)))
STL = _register(Opcode("stl", OpCategory.STORE, 2, False, srcs_fp=(False, False)))
STS = _register(Opcode("sts", OpCategory.STORE, 2, False, srcs_fp=(True, False)))
STT = _register(Opcode("stt", OpCategory.STORE, 2, False, srcs_fp=(True, False)))

# --- floating point -----------------------------------------------------------
ADDS = _fp2("adds", OpCategory.FADD, lambda a, b: a + b)
ADDT = _fp2("addt", OpCategory.FADD, lambda a, b: a + b)
SUBS = _fp2("subs", OpCategory.FADD, lambda a, b: a - b)
SUBT = _fp2("subt", OpCategory.FADD, lambda a, b: a - b)
MULS = _fp2("muls", OpCategory.FMUL, lambda a, b: a * b)
MULT = _fp2("mult", OpCategory.FMUL, lambda a, b: a * b)
DIVS = _fp2("divs", OpCategory.FDIV, lambda a, b: a / b)
DIVT = _register(
    Opcode("divt", OpCategory.FDIV, 2, True, dest_fp=True, latency=15,
           semantics=DIVS.semantics)
)
SQRTT = _register(
    Opcode(
        "sqrtt",
        OpCategory.FDIV,
        1,
        True,
        dest_fp=True,
        latency=18,
        semantics=lambda s, imm: math.sqrt(abs(float(s[0]))),
    )
)
CPYS = _register(
    Opcode("cpys", OpCategory.FMOV, 1, True, dest_fp=True,
           semantics=lambda s, imm: float(s[0]))
)
CMPTLT = _register(
    Opcode("cmptlt", OpCategory.FADD, 2, True, dest_fp=True,
           semantics=lambda s, imm: 1.0 if float(s[0]) < float(s[1]) else 0.0)
)
CMPTEQ = _register(
    Opcode("cmpteq", OpCategory.FADD, 2, True, dest_fp=True,
           semantics=lambda s, imm: 1.0 if float(s[0]) == float(s[1]) else 0.0)
)

# --- cross-bank transfers ------------------------------------------------------
ITOFT = _register(
    Opcode("itoft", OpCategory.XFER, 1, True, dest_fp=True, srcs_fp=(False,),
           semantics=lambda s, imm: float(to_signed(s[0])))
)
FTOIT = _register(
    Opcode("ftoit", OpCategory.XFER, 1, True, dest_fp=False, srcs_fp=(True,),
           semantics=lambda s, imm: to_unsigned(int(float(s[0]))))
)

# --- branches -------------------------------------------------------------------
BEQ = _branch("beq", lambda a: a == 0)
BNE = _branch("bne", lambda a: a != 0)
BLT = _branch("blt", lambda a: to_signed(a) < 0)
BLE = _branch("ble", lambda a: to_signed(a) <= 0)
BGT = _branch("bgt", lambda a: to_signed(a) > 0)
BGE = _branch("bge", lambda a: to_signed(a) >= 0)
FBEQ = _branch("fbeq", lambda a: float(a) == 0.0, fp=True)
FBNE = _branch("fbne", lambda a: float(a) != 0.0, fp=True)
BR = _branch("br", None)

# --- no-ops ----------------------------------------------------------------------
NOP = _register(Opcode("nop", OpCategory.NOP, 0, False))


def opcode_by_name(name: str) -> Opcode:
    """Look up an opcode by mnemonic; raises ``KeyError`` for unknown names."""
    return _REGISTRY[name]


def all_opcodes() -> Tuple[Opcode, ...]:
    """Every registered opcode, in registration order."""
    return tuple(_REGISTRY.values())
