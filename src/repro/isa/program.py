"""Program and basic-block containers.

A :class:`Program` is a list of basic blocks in layout order.  Control flow
follows the usual binary conventions the paper's translation tool relies on:
a block may end in (at most one) branch whose ``target`` names the taken-path
block, and execution otherwise falls through to the next block in layout
order.  A block with no branch and no successor ends the program.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from .instruction import Instruction


class ProgramError(ValueError):
    """Raised when a program violates basic-block structural invariants."""


@dataclass
class BasicBlock:
    """A single-entry, single-exit straight-line sequence of instructions."""

    index: int
    instructions: List[Instruction] = field(default_factory=list)
    label: Optional[str] = None

    @property
    def name(self) -> str:
        return self.label if self.label is not None else f"B{self.index}"

    @property
    def terminator(self) -> Optional[Instruction]:
        """The final branch of the block, if any."""
        if self.instructions and self.instructions[-1].is_branch:
            return self.instructions[-1]
        return None

    @property
    def body(self) -> List[Instruction]:
        """Instructions excluding the terminating branch."""
        if self.terminator is not None:
            return self.instructions[:-1]
        return self.instructions

    def validate(self) -> None:
        """Check the basic-block property: branches only in terminal position."""
        for inst in self.instructions[:-1]:
            if inst.is_branch:
                raise ProgramError(
                    f"block {self.name}: branch {inst.render()} is not terminal"
                )

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __len__(self) -> int:
        return len(self.instructions)


@dataclass
class Program:
    """An executable program: basic blocks in layout order plus an entry block."""

    name: str
    blocks: List[BasicBlock] = field(default_factory=list)
    entry: int = 0

    def __post_init__(self) -> None:
        self._label_index: Dict[str, int] = {}
        self.reindex()

    # ------------------------------------------------------------- structure
    def reindex(self) -> None:
        """Renumber blocks to match layout order and rebuild the label map."""
        self._label_index = {}
        for position, block in enumerate(self.blocks):
            block.index = position
            if block.label is not None:
                if block.label in self._label_index:
                    raise ProgramError(f"duplicate block label {block.label!r}")
                self._label_index[block.label] = position

    def block_by_label(self, label: str) -> BasicBlock:
        return self.blocks[self._label_index[label]]

    def successors(self, block: BasicBlock) -> Tuple[Optional[int], Optional[int]]:
        """``(taken_target, fallthrough)`` block indices; ``None`` when absent."""
        taken: Optional[int] = None
        terminator = block.terminator
        if terminator is not None:
            taken = terminator.target
        fallthrough: Optional[int] = None
        unconditional = terminator is not None and not terminator.opcode.conditional
        if not unconditional and block.index + 1 < len(self.blocks):
            fallthrough = block.index + 1
        return taken, fallthrough

    def validate(self) -> None:
        """Check structural invariants: labels, branch targets, block shape."""
        if not self.blocks:
            raise ProgramError(f"program {self.name!r} has no blocks")
        if not 0 <= self.entry < len(self.blocks):
            raise ProgramError(f"entry block {self.entry} out of range")
        for block in self.blocks:
            block.validate()
            terminator = block.terminator
            if terminator is not None:
                if not 0 <= terminator.target < len(self.blocks):
                    raise ProgramError(
                        f"block {block.name}: branch target {terminator.target} "
                        f"out of range"
                    )

    # ------------------------------------------------------------------ stats
    def __iter__(self) -> Iterator[BasicBlock]:
        return iter(self.blocks)

    def instructions(self) -> Iterator[Instruction]:
        """All static instructions in layout order."""
        for block in self.blocks:
            yield from block.instructions

    @property
    def static_size(self) -> int:
        """Total static instruction count."""
        return sum(len(block) for block in self.blocks)

    def render(self) -> str:
        """Human-readable listing of the whole program."""
        lines = [f"; program {self.name} ({self.static_size} instructions)"]
        for block in self.blocks:
            lines.append(f"{block.name}:")
            for inst in block.instructions:
                lines.append(f"    {inst.render()}")
        return "\n".join(lines)

    def copy_structure(self, new_blocks: Sequence[BasicBlock]) -> "Program":
        """A new program with the same name/entry but different blocks."""
        return Program(name=self.name, blocks=list(new_blocks), entry=self.entry)
