"""repro — a reproduction of the braid microarchitecture (Tseng & Patt, ISCA 2008).

Subpackages:

* :mod:`repro.isa` — Alpha-like ISA with the braid extension bits;
* :mod:`repro.workloads` — synthetic SPEC CPU2000 workload suite;
* :mod:`repro.dataflow` — dataflow graphs, liveness, memory ordering;
* :mod:`repro.core` — braid identification, translation, register allocation;
* :mod:`repro.uarch` — microarchitectural building blocks (predictors, caches, ...);
* :mod:`repro.sim` — functional executor and the four timing cores;
* :mod:`repro.analysis` — value characterization and braid statistics;
* :mod:`repro.harness` — experiment definitions regenerating every table/figure.
"""

__version__ = "1.0.0"
