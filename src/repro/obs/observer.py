"""The observability front door: one object wiring all three layers.

``Observer`` attaches to a :class:`~repro.sim.core.TimingCore` through the
same per-cycle hook mechanism the invariant checker and fault injector use
(``core.trace_hook``), so observability is a pure add-on: with no observer
attached the timing loop takes the unhooked fast path and is bit-identical
to the seed simulator.

Layers (independently switchable):

* ``cpi`` — per-cycle retirement-slot accounting into the
  :data:`~repro.obs.cpi.STALL_CAUSES` taxonomy.  Exact identity: the
  components sum to the simulated cycle count (slot fractions are k/width
  with width a power of two, hence exact in binary floating point).
* ``trace`` — installs a :class:`~repro.obs.tracing.RingLog` as
  ``core.trace_log`` so dispatched instructions are recorded for the
  Konata / Chrome exporters.
* ``metrics`` — bounded occupancy histograms (ROB, fetch buffer, LSQ,
  scheduler) and issue-slot utilization via
  :class:`~repro.obs.metrics.MetricsRegistry`.

Idle-skip interaction: none in practice — an attached per-cycle hook
reroutes the run to the single-stepping loop
(:meth:`~repro.sim.core.TimingCore._run_until_checked`), so the observer
sees every architectural cycle first-hand and the hot path never pays for
gap reconstruction.  A defensive gap branch remains (charging skipped
cycles to the state-only classification captured at the last resync)
should a future loop ever skip under hooks, but no per-cycle work is
spent keeping it fresh.

Sampling interaction: :func:`~repro.sim.sampling.simulate_sampled` calls
:meth:`Observer.skip_to` after each fast-forward to resynchronize counter
snapshots (drain/fast-forward mutate state outside hooked execution), and
:meth:`Observer.finalize` scales measured-window slot counts up to the
estimated total cycle count when the result is sampled.
"""

from __future__ import annotations

from typing import Dict, Optional

from .cpi import STALL_CAUSES, classify_cycle, empty_stack
from .metrics import MetricsRegistry
from .tracing import RingLog, retired_records


class Observer:
    """Attachable pipeline observer: CPI stack, trace ring, telemetry."""

    def __init__(
        self,
        trace: bool = False,
        cpi: bool = True,
        metrics: bool = False,
        trace_capacity: int = 65536,
    ) -> None:
        self.trace = trace
        self.cpi = cpi
        self.metrics_enabled = metrics
        self.trace_capacity = trace_capacity
        self.core = None
        self.ring: Optional[RingLog] = None
        self.slots: Dict[str, float] = empty_stack()
        self.metrics = MetricsRegistry()
        self._width = 1
        self._last_cycle = -1
        self._last_retired = 0
        self._last_issued = 0
        self._last_rob_cap = 0
        self._last_struct = 0
        self._gap_cause = "fetch_limited"
        #: end-of-previous-cycle gauge readings, charged to idle-skip gaps
        self._pending: Dict[str, int] = {}
        #: pre-resolved ``Histogram.add`` bound methods, avoiding the
        #: name-keyed registry lookups on the per-cycle path
        self._hist_add: Dict[str, object] = {}

    # ------------------------------------------------------------------ wiring
    def attach(self, core) -> None:
        """Install hooks on ``core`` (before ``run`` / first window)."""
        self.core = core
        self._width = max(1, core.config.issue_width)
        core.trace_hook = self._on_cycle
        if self.trace:
            self.ring = RingLog(self.trace_capacity)
            core.trace_log = self.ring
        if self.metrics_enabled:
            config = core.config
            self.metrics.histogram("rob_occupancy", config.max_in_flight)
            self.metrics.histogram(
                "fetch_buffer_occupancy", config.front_end.fetch_buffer
            )
            self.metrics.histogram("lsq_occupancy", config.lsq_entries)
            self.metrics.histogram(
                "scheduler_occupancy", config.max_in_flight
            )
            self.metrics.histogram("issue_slots", self._width)
            self._hist_add = {
                name: histogram.add
                for name, histogram in self.metrics.histograms.items()
            }
        self._resync(0)

    def _resync(self, cycle: int) -> None:
        """Align counter snapshots with the core's current state."""
        core = self.core
        self._last_cycle = cycle - 1
        self._last_retired = core._retired_count
        self._last_issued = core._issued_count
        self._last_rob_cap = core.stalls.in_flight_cap
        self._last_struct = core.stalls.structure_full
        self._gap_cause = classify_cycle(core, cycle)
        self._pending = self._readings(issued_delta=0)

    def skip_to(self, cycle: int) -> None:
        """Resynchronize after a sampling drain + fast-forward.

        Drain cycles execute unhooked and fast-forward rewrites machine
        state wholesale; neither belongs to a measured window, so the
        observer simply realigns its snapshots at the next window's start.
        """
        self._resync(cycle)

    # -------------------------------------------------------------- collection
    def _readings(self, issued_delta: int) -> Dict[str, int]:
        core = self.core
        return {
            "rob_occupancy": len(core._rob),
            "fetch_buffer_occupancy": len(core._fetch_buffer),
            "lsq_occupancy": core._mem_in_flight,
            "scheduler_occupancy": core.scheduler_occupancy(),
            "issue_slots": issued_delta,
        }

    def _on_cycle(self, core, cycle: int) -> None:
        """Per-cycle hook: charge the preceding gap, then this cycle.

        Hooked runs single-step (an installed ``trace_hook`` routes the
        core to ``_run_until_checked``), so the gap branch is dead on the
        hot path — kept only as a defensive fallback, charged to the
        classification captured at the last resync.  The hook fires once
        per simulated cycle, so everything here is written for that
        path: snapshot loads hoisted once, no dict built per cycle, and
        ``classify_cycle`` invoked only for cycles with empty slots.
        """
        gap = cycle - self._last_cycle - 1
        if gap > 0:
            # Skipped cycles: state frozen, zero retirement — the full
            # width of every gap cycle goes to the cause the frozen
            # state exhibited at the last resync.
            if self.cpi:
                self.slots[self._gap_cause] += gap
            if self.metrics_enabled:
                for name, value in self._pending.items():
                    if name == "issue_slots":
                        value = 0
                    self._hist_add[name](value, gap)

        retired = core._retired_count
        issued = core._issued_count
        stalls = core.stalls
        rob_cap = stalls.in_flight_cap
        struct = stalls.structure_full
        if self.cpi:
            width = self._width
            slots = self.slots
            retired_delta = retired - self._last_retired
            slots["base"] += retired_delta / width
            empty = width - retired_delta
            if empty > 0:
                cause = classify_cycle(
                    core, cycle,
                    rob_cap - self._last_rob_cap,
                    struct - self._last_struct,
                )
                slots[cause] += empty / width
        if self.metrics_enabled:
            readings = self._readings(issued - self._last_issued)
            hist_add = self._hist_add
            for name, value in readings.items():
                hist_add[name](value, 1)
            self._pending = readings

        self._last_cycle = cycle
        self._last_retired = retired
        self._last_issued = issued
        self._last_rob_cap = rob_cap
        self._last_struct = struct

    # --------------------------------------------------------------- reporting
    def cpi_totals(self) -> Dict[str, float]:
        """Snapshot of the slot accumulators (for sampling-window diffs)."""
        return dict(self.slots)

    def trace_records(self):
        """Retired instructions currently held by the trace ring."""
        if self.ring is None:
            return []
        return retired_records(self.ring)

    def finalize(self, result, cpi_slots: Optional[Dict[str, float]] = None) -> None:
        """Publish collected data onto a :class:`SimResult`."""
        if self.cpi:
            slots = dict(cpi_slots) if cpi_slots is not None else dict(self.slots)
            if result.sampled:
                total = sum(slots.values())
                if total > 0:
                    scale = result.cycles / total
                    slots = {
                        cause: value * scale for cause, value in slots.items()
                    }
            result.cpi_stack = {cause: slots.get(cause, 0.0) for cause in STALL_CAUSES}
        if self.metrics_enabled:
            result.metrics = self.metrics.summary()
        if self.ring is not None:
            result.extra["trace_events"] = float(len(self.ring))
            result.extra["trace_dropped"] = float(self.ring.dropped)
