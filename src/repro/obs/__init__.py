"""Observability layer: tracing, CPI stall attribution, harness telemetry.

Everything here is opt-in and rides on the per-cycle hook mechanism of
:class:`~repro.sim.core.TimingCore` (``trace_hook``, next to
``invariant_hook`` and ``fault_hook``); with every knob off the timing
loop takes the unhooked fast path and is bit-identical to the seed.
"""

from .cpi import STALL_CAUSES, classify_cycle, classify_stall, empty_stack
from .metrics import BoundedHistogram, MetricsRegistry
from .observer import Observer
from .profiling import (
    ENV_PROFILE_DIR,
    aggregate_profiles,
    maybe_profiled,
    profile_dir,
)
from .runlog import ENV_RUNLOG, RunLog
from .tracing import (
    RingLog,
    chrome_schema_errors,
    export_chrome,
    export_konata,
    issue_stall_cause,
    retired_records,
)

__all__ = [
    "STALL_CAUSES",
    "classify_cycle",
    "classify_stall",
    "empty_stack",
    "BoundedHistogram",
    "MetricsRegistry",
    "Observer",
    "ENV_PROFILE_DIR",
    "aggregate_profiles",
    "maybe_profiled",
    "profile_dir",
    "ENV_RUNLOG",
    "RunLog",
    "RingLog",
    "chrome_schema_errors",
    "export_chrome",
    "export_konata",
    "issue_stall_cause",
    "retired_records",
]
