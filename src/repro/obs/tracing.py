"""Pipeline event tracing: ring buffer plus viewer exports.

The trace rides on the dispatch-time ``core.trace_log`` append (the same
mechanism :mod:`repro.sim.pipeview` consumes): each recorded
:class:`~repro.sim.core.WInst` already carries its full lifecycle —
fetch/dispatch/issue/complete/writeback/retire cycles, the mispredict
(flush) flag, and its captured producers, from which per-event stall causes
are derived at export time.  :class:`RingLog` bounds memory on long runs by
keeping only the newest ``capacity`` instructions (and counting the drops).

Two export formats:

* **Konata** (:func:`export_konata`) — the Kanata ``0004`` text format the
  Konata pipeline viewer loads (``I``/``L``/``S``/``R`` commands grouped
  under ``C`` cycle advances);
* **Chrome trace events** (:func:`export_chrome`) — a
  ``{"traceEvents": [...]}`` JSON document of ``ph: "X"`` complete events
  (one slice per pipeline stage), loadable in Perfetto or
  ``chrome://tracing``.  :func:`chrome_schema_errors` validates a document
  against the minimal schema CI asserts.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Dict, Iterable, List, Optional

#: Chrome event phases the minimal schema accepts.
_CHROME_PHASES = {"X", "i", "I", "B", "E", "M"}


class RingLog:
    """Bounded trace sink for ``core.trace_log`` (newest-wins ring)."""

    __slots__ = ("buffer", "capacity", "dropped")

    def __init__(self, capacity: int = 65536) -> None:
        self.capacity = max(1, int(capacity))
        self.buffer: deque = deque(maxlen=self.capacity)
        #: instructions evicted because the ring was full
        self.dropped = 0

    def append(self, winst) -> None:
        if len(self.buffer) == self.capacity:
            self.dropped += 1
        self.buffer.append(winst)

    def __len__(self) -> int:
        return len(self.buffer)

    def __iter__(self):
        return iter(self.buffer)


def retired_records(trace_log: Iterable) -> List:
    """The ring's retired instructions, oldest first.

    In-flight instructions (no retire cycle yet — only possible when the
    trace is inspected mid-run) are skipped: every export event of a
    retired instruction has a defined cycle.
    """
    return [w for w in trace_log if w.retire_cycle is not None]


def issue_stall_cause(winst) -> str:
    """Why ``winst`` waited between dispatch and issue.

    Derived from the recorded lifecycle: if issue happened as soon as the
    last producer's value was visible, the wait was a data dependence;
    extra cycles beyond that mean structural contention (ports, functional
    units, issue policy).  ``none`` when it issued at the earliest
    possible cycle.
    """
    if winst.issue_cycle is None:
        return "unissued"
    earliest = winst.dispatch_cycle + 1
    data_ready = earliest
    has_deps = False
    for producer, _internal in winst.deps:
        if producer is not None and producer.complete_cycle is not None:
            has_deps = True
            if producer.complete_cycle > data_ready:
                data_ready = producer.complete_cycle
    if winst.issue_cycle <= earliest:
        return "none"
    if has_deps and winst.issue_cycle <= data_ready + 1:
        return "data_dependence"
    return "structural"


def _retire_order(records) -> List:
    """Records sorted by retirement (cycle, then in-order seq)."""
    return sorted(records, key=lambda w: (w.retire_cycle, w.seq))


# ---------------------------------------------------------------- Konata
def export_konata(records) -> str:
    """Render retired trace records as Kanata ``0004`` text.

    Event order within the file follows the Kanata contract: ``C=`` sets
    the first cycle, each ``C n`` advances the clock, and every
    ``I``/``L``/``S``/``R`` command applies at the current cycle.  Stage
    lanes use ``F`` (fetch), ``D`` (dispatch/wait), ``X`` (execute) and
    ``C`` (completed, waiting for in-order retirement).
    """
    records = retired_records(records)
    lines = ["Kanata\t0004"]
    if not records:
        return "\n".join(lines) + "\n"

    retire_ids = {
        id(w): position for position, w in enumerate(_retire_order(records))
    }
    #: (cycle, record index, intra-cycle order, command line)
    events: List = []
    for index, winst in enumerate(records):
        label = (
            f"{winst.seq}: {winst.dyn.inst.opcode.name} "
            f"pc={winst.dyn.pc:#x}"
        )
        events.append((winst.fetch_cycle, index, 0, f"I\t{index}\t{winst.seq}\t0"))
        events.append((winst.fetch_cycle, index, 1, f"L\t{index}\t0\t{label}"))
        events.append((winst.fetch_cycle, index, 2, f"S\t{index}\t0\tF"))
        if winst.dispatch_cycle >= 0:
            events.append(
                (winst.dispatch_cycle, index, 2, f"S\t{index}\t0\tD")
            )
            stall = issue_stall_cause(winst)
            if stall not in ("none", "unissued"):
                events.append(
                    (winst.dispatch_cycle, index, 1,
                     f"L\t{index}\t1\tissue wait: {stall}")
                )
        if winst.mispredicted:
            events.append(
                (winst.fetch_cycle, index, 1,
                 f"L\t{index}\t1\tmispredicted branch (redirect)")
            )
        if winst.issue_cycle is not None:
            events.append((winst.issue_cycle, index, 2, f"S\t{index}\t0\tX"))
        if winst.complete_cycle is not None:
            events.append(
                (winst.complete_cycle, index, 2, f"S\t{index}\t0\tC")
            )
        events.append(
            (winst.retire_cycle, index, 3,
             f"R\t{index}\t{retire_ids[id(winst)]}\t0")
        )

    events.sort(key=lambda event: (event[0], event[1], event[2]))
    current = events[0][0]
    lines.append(f"C=\t{current}")
    for cycle, _index, _order, line in events:
        if cycle > current:
            lines.append(f"C\t{cycle - current}")
            current = cycle
        lines.append(line)
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------- Chrome trace
def export_chrome(
    records, benchmark: str = "?", machine: str = "?", lanes: int = 32
) -> Dict[str, Any]:
    """Render retired trace records as a Chrome trace-event document.

    One ``ph: "X"`` slice per occupied pipeline stage (``fetch``,
    ``dispatch``, ``execute``, ``commit-wait``); ``ts``/``dur`` are in
    cycles.  ``args`` carries seq, pc, the derived issue-stall cause, the
    flush flag, and the retirement index — the retirement stream is
    recoverable by sorting any one slice per instruction by
    ``args.retire_index``.
    """
    records = retired_records(records)
    retire_ids = {
        id(w): position for position, w in enumerate(_retire_order(records))
    }
    events: List[Dict[str, Any]] = []
    for winst in records:
        opcode = winst.dyn.inst.opcode.name
        args = {
            "seq": winst.seq,
            "pc": f"{winst.dyn.pc:#x}",
            "stall": issue_stall_cause(winst),
            "flush": bool(winst.mispredicted),
            "retire_cycle": winst.retire_cycle,
            "retire_index": retire_ids[id(winst)],
        }
        tid = winst.seq % lanes
        stages = [
            ("fetch", winst.fetch_cycle,
             winst.dispatch_cycle if winst.dispatch_cycle >= 0 else None),
            ("dispatch",
             winst.dispatch_cycle if winst.dispatch_cycle >= 0 else None,
             winst.issue_cycle),
            ("execute", winst.issue_cycle, winst.complete_cycle),
            ("commit-wait", winst.complete_cycle, winst.retire_cycle),
        ]
        for stage, start, end in stages:
            if start is None or end is None:
                continue
            events.append(
                {
                    "name": f"{stage} {opcode}",
                    "cat": stage,
                    "ph": "X",
                    "ts": start,
                    "dur": max(0, end - start),
                    "pid": 0,
                    "tid": tid,
                    "args": args,
                }
            )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ns",
        "otherData": {
            "benchmark": benchmark,
            "machine": machine,
            "time_unit": "cycle",
            "instructions": len(records),
        },
    }


def chrome_schema_errors(
    doc: Any, max_errors: int = 20
) -> List[str]:
    """Validate a Chrome trace document against the minimal schema.

    Returns a (bounded) list of human-readable problems; an empty list
    means the document is loadable.  This is the schema the CI smoke job
    asserts: top-level object with a ``traceEvents`` list whose entries
    have a string ``name``, a known ``ph``, non-negative numeric ``ts``
    (plus ``dur`` for complete events), and integer ``pid``/``tid``.
    """
    errors: List[str] = []

    def note(message: str) -> bool:
        errors.append(message)
        return len(errors) >= max_errors

    if not isinstance(doc, dict):
        return ["top level must be a JSON object"]
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["'traceEvents' must be a list"]
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            if note(f"{where}: must be an object"):
                break
            continue
        name = event.get("name")
        if not isinstance(name, str) or not name:
            if note(f"{where}: 'name' must be a non-empty string"):
                break
        phase = event.get("ph")
        if phase not in _CHROME_PHASES:
            if note(f"{where}: unknown phase {phase!r}"):
                break
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or isinstance(ts, bool) or ts < 0:
            if note(f"{where}: 'ts' must be a non-negative number"):
                break
        if phase == "X":
            dur = event.get("dur")
            if (
                not isinstance(dur, (int, float))
                or isinstance(dur, bool)
                or dur < 0
            ):
                if note(f"{where}: 'X' events need non-negative 'dur'"):
                    break
        for field in ("pid", "tid"):
            value = event.get(field)
            if not isinstance(value, int) or isinstance(value, bool):
                if note(f"{where}: {field!r} must be an integer"):
                    break
    return errors
