"""Structured JSONL run logs for harness sweeps.

One line per simulated sweep cell, written next to the artifact cache, so
sweep behaviour (per-cell wall time, cache hits, worker distribution,
sample-plan shape) is inspectable after the fact without re-running.

The log is append-only JSONL.  Each write is a single ``os.write`` to a
file opened with ``O_APPEND``, which POSIX guarantees atomic for small
writes — concurrent pool workers interleave whole lines, never bytes.
Logging failures are swallowed: telemetry must never break a sweep.

Control via ``REPRO_RUNLOG``: unset → log to ``<cache-root>/runlog.jsonl``
when the artifact cache is enabled; ``0``/``off``/``false``/``no`` →
disabled; any other value → that path.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Any, Dict, List, Optional

ENV_RUNLOG = "REPRO_RUNLOG"

_DISABLE_VALUES = {"0", "off", "false", "no", ""}


class RunLog:
    """Append-only JSONL event log (``path=None`` disables it)."""

    def __init__(self, path: Optional[Path]) -> None:
        self.path = Path(path) if path is not None else None
        #: unparseable lines skipped by the last :meth:`read` (torn tail
        #: from a killed writer, damaged disk, or a foreign line)
        self.skipped = 0

    @property
    def enabled(self) -> bool:
        return self.path is not None

    @classmethod
    def from_env(cls, cache=None) -> "RunLog":
        """Resolve the log destination from ``REPRO_RUNLOG`` / the cache."""
        raw = os.environ.get(ENV_RUNLOG)
        if raw is not None:
            if raw.strip().lower() in _DISABLE_VALUES:
                return cls(None)
            return cls(Path(raw))
        if cache is not None and getattr(cache, "enabled", False):
            return cls(Path(cache.root) / "runlog.jsonl")
        return cls(None)

    def log(self, **fields: Any) -> None:
        """Append one event; never raises."""
        if self.path is None:
            return
        record: Dict[str, Any] = {"ts": round(time.time(), 3), "pid": os.getpid()}
        record.update(fields)
        try:
            line = json.dumps(record, sort_keys=True, default=str) + "\n"
        except (TypeError, ValueError):
            return
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            fd = os.open(
                str(self.path),
                os.O_WRONLY | os.O_APPEND | os.O_CREAT,
                0o644,
            )
            try:
                os.write(fd, line.encode("utf-8"))
            finally:
                os.close(fd)
        except OSError:
            pass

    def read(self) -> List[Dict[str, Any]]:
        """All parseable events; torn or foreign lines are skipped + counted.

        Same tolerance contract as
        :meth:`repro.service.journal.JsonlJournal._load`: a half-written
        record (the writer was killed mid-``os.write``, or the disk
        damaged a line) costs that one event, never the log.  The number
        of lines lost is exposed as :attr:`skipped` so growing loss is
        visible instead of silent.
        """
        self.skipped = 0
        if self.path is None:
            return []
        try:
            text = self.path.read_text(encoding="utf-8", errors="replace")
        except OSError:
            return []
        events: List[Dict[str, Any]] = []
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except ValueError:
                self.skipped += 1
                continue
            if isinstance(event, dict):
                events.append(event)
            else:
                self.skipped += 1
        return events
