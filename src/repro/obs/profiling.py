"""Opt-in cProfile support for harness runs (``--profile``).

Workers of a parallel sweep are separate processes, so profiling works by
convention: the parent sets ``REPRO_PROFILE_DIR`` and every process wraps
its unit of work in :func:`maybe_profiled`, dumping one ``.prof`` file per
call into the shared directory.  The parent then merges them with
:func:`aggregate_profiles` and prints the top-N cumulative entries.

When the environment variable is unset, :func:`maybe_profiled` calls the
function directly — zero overhead on the normal path.
"""

from __future__ import annotations

import cProfile
import io
import os
import pstats
from pathlib import Path
from typing import Callable, Optional, TypeVar

ENV_PROFILE_DIR = "REPRO_PROFILE_DIR"

T = TypeVar("T")

_counter = 0


def profile_dir() -> Optional[Path]:
    raw = os.environ.get(ENV_PROFILE_DIR)
    if not raw:
        return None
    return Path(raw)


def maybe_profiled(fn: Callable[[], T]) -> T:
    """Run ``fn`` under cProfile when ``REPRO_PROFILE_DIR`` is set."""
    directory = profile_dir()
    if directory is None:
        return fn()
    global _counter
    profiler = cProfile.Profile()
    try:
        return profiler.runcall(fn)
    finally:
        _counter += 1
        try:
            directory.mkdir(parents=True, exist_ok=True)
            profiler.dump_stats(
                str(directory / f"worker-{os.getpid()}-{_counter}.prof")
            )
        except OSError:
            pass


def aggregate_profiles(directory, top: int = 15) -> str:
    """Merge every ``.prof`` file in ``directory`` into a top-N report."""
    paths = sorted(Path(directory).glob("*.prof"))
    if not paths:
        return "no profile data collected"
    stream = io.StringIO()
    stats = pstats.Stats(str(paths[0]), stream=stream)
    for path in paths[1:]:
        stats.add(str(path))
    stats.strip_dirs().sort_stats("cumulative").print_stats(top)
    header = f"profile: {len(paths)} sample file(s), top {top} by cumulative time\n"
    return header + stream.getvalue()
