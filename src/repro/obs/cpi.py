"""CPI stall attribution: where every empty retirement slot goes.

The paper argues braid execution units recover most out-of-order IPC, but
aggregate counters cannot show *where* the residual cycles go.  This module
implements per-cycle accounting of retirement-slot usage in the style of
CG-OoO / top-down CPI stacks: each cycle contributes ``issue_width``
retirement slots, used slots are charged to ``base``, and every empty slot
is charged to exactly one cause from a fixed taxonomy by inspecting the
end-of-cycle machine state (ROB head, fetch state, this cycle's dispatch
stalls).  Summed over a run, the components reconstruct the cycle count
exactly, so a CPI stack is just ``component / instructions`` per cause.

The classification is deliberately head-of-ROB-centric: in-order
retirement means an empty retire slot is always explained by whatever the
oldest in-flight instruction (or the empty front end) is waiting on.

``classify_stall`` (state only) also labels :class:`~repro.sim.core.
SimulationHang` diagnostics: an idle window's state is frozen, so a single
classification covers the whole window.
"""

from __future__ import annotations

from typing import Dict

#: The fixed taxonomy, in display order.  ``base`` counts used retirement
#: slots (cycles of pure retirement work); everything else is empty slots.
STALL_CAUSES = (
    "base",
    "fetch_limited",
    "data_dependence",
    "memory",
    "structural_rob",
    "structural_lsq",
    "structural_fifo",
    "structural_scheduler",
    "branch_flush",
    "drain",
)

FETCH_LIMITED = "fetch_limited"
DATA_DEPENDENCE = "data_dependence"
MEMORY = "memory"
STRUCTURAL_ROB = "structural_rob"
STRUCTURAL_LSQ = "structural_lsq"
STRUCTURAL_SCHEDULER = "structural_scheduler"
BRANCH_FLUSH = "branch_flush"
DRAIN = "drain"


def empty_stack() -> Dict[str, float]:
    """A zeroed accumulator covering the whole taxonomy."""
    return {cause: 0.0 for cause in STALL_CAUSES}


def _classify_empty_rob(core, cycle: int) -> str:
    """Why is nothing in flight?  (End-of-cycle state, ROB empty.)"""
    if core._fetch_blocked or cycle < core._fetch_resume:
        # An unresolved mispredict blocks fetch, then the redirect bubble
        # holds it off for front_end.redirect more cycles.
        return BRANCH_FLUSH
    if core._next_fetch >= core._fetch_limit and not core._fetch_buffer:
        # Trace (or sampling-window fetch limit) exhausted: the tail is
        # draining, not stalled.
        return DRAIN
    return FETCH_LIMITED


def classify_cycle(
    core,
    cycle: int,
    rob_cap_delta: int = 0,
    structure_delta: int = 0,
) -> str:
    """One taxonomy label for this cycle's empty retirement slots.

    ``rob_cap_delta`` / ``structure_delta`` are this cycle's increments of
    the ``in_flight_cap`` / ``structure_full`` dispatch-stall counters;
    they split "head is executing" into the structural back-pressure cases
    (ROB full, LSQ full, scheduler/FIFO full) that an executing head
    otherwise hides.  Pass zero (the default) for state-only
    classification — correct for idle-skip gap cycles, where no stage ran
    and therefore no dispatch stall was charged.
    """
    rob = core._rob
    if not rob:
        return _classify_empty_rob(core, cycle)
    head = rob[0]
    if head.issue_cycle is not None:
        # Head is executing (or completed this cycle; it retires next).
        if (
            head.is_load
            and head.complete_cycle is not None
            and head.complete_cycle - head.issue_cycle > core.l1d_latency
        ):
            return MEMORY
        if rob_cap_delta:
            return STRUCTURAL_ROB
        if structure_delta:
            if core._mem_in_flight >= core.config.lsq_entries:
                return STRUCTURAL_LSQ
            return core.dispatch_block_cause()
        return DATA_DEPENDENCE
    if head.pending:
        return DATA_DEPENDENCE
    # Head is ready but could not issue: contention for the issue
    # structure, unless a load head is blocked on memory resources.
    if head.is_load and core._outstanding_misses >= core.config.mshrs:
        return MEMORY
    return STRUCTURAL_SCHEDULER


def classify_stall(core, cycle: int) -> str:
    """State-only classification (no per-cycle stall deltas).

    Used for idle-skip gaps and for :class:`~repro.sim.core.SimulationHang`
    diagnostics, where the machine state is frozen and a single label
    covers every cycle of the window.
    """
    return classify_cycle(core, cycle)
