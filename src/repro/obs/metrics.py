"""Harness telemetry primitives: counters and bounded histograms.

A :class:`BoundedHistogram` keeps one integer bucket per value up to a
fixed bound (structure occupancies are naturally bounded by capacity), an
overflow bucket for anything beyond, and enough moments for mean/max.
Weights let idle-skip gaps contribute their whole width in one call.
:class:`MetricsRegistry` is the named bag of both that the observer fills
and :class:`~repro.sim.results.SimResult` carries as plain dictionaries.
"""

from __future__ import annotations

from typing import Dict, List, Optional


class BoundedHistogram:
    """Integer-valued histogram with ``bound + 1`` exact buckets."""

    __slots__ = (
        "bound", "counts", "overflow", "total_weight", "weighted_sum",
        "max_value",
    )

    def __init__(self, bound: int) -> None:
        self.bound = max(0, int(bound))
        self.counts: List[int] = [0] * (self.bound + 1)
        self.overflow = 0
        self.total_weight = 0
        self.weighted_sum = 0
        self.max_value = 0

    def add(self, value: int, weight: int = 1) -> None:
        if weight <= 0:
            return
        self.total_weight += weight
        self.weighted_sum += value * weight
        if value > self.max_value:
            self.max_value = value
        if 0 <= value <= self.bound:
            self.counts[value] += weight
        else:
            self.overflow += weight

    @property
    def mean(self) -> float:
        if self.total_weight == 0:
            return 0.0
        return self.weighted_sum / self.total_weight

    def percentile(self, fraction: float) -> int:
        """Smallest bucket value covering ``fraction`` of the weight.

        Overflow weight counts as ``bound`` (the histogram cannot resolve
        beyond its bound; ``max_value`` records the true extreme).
        """
        if self.total_weight == 0:
            return 0
        threshold = fraction * self.total_weight
        running = 0
        for value, count in enumerate(self.counts):
            running += count
            if running >= threshold:
                return value
        return self.bound

    def summary(self) -> Dict[str, float]:
        return {
            "weight": float(self.total_weight),
            "mean": self.mean,
            "p50": float(self.percentile(0.50)),
            "p95": float(self.percentile(0.95)),
            "max": float(self.max_value),
            "overflow": float(self.overflow),
        }


class MetricsRegistry:
    """Named counters and histograms collected during a simulation."""

    def __init__(self) -> None:
        self.counters: Dict[str, int] = {}
        self.histograms: Dict[str, BoundedHistogram] = {}

    def counter(self, name: str, amount: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + amount

    def histogram(self, name: str, bound: int) -> BoundedHistogram:
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = BoundedHistogram(bound)
        return hist

    def summary(self) -> Dict[str, Dict[str, float]]:
        """Plain-dict snapshot (picklable, cache-friendly)."""
        out: Dict[str, Dict[str, float]] = {
            name: hist.summary() for name, hist in self.histograms.items()
        }
        if self.counters:
            out["counters"] = {
                name: float(value) for name, value in self.counters.items()
            }
        return out
