"""Harness telemetry primitives: counters and bounded histograms.

A :class:`BoundedHistogram` keeps one integer bucket per value up to a
fixed bound (structure occupancies are naturally bounded by capacity), an
overflow bucket for anything beyond, and enough moments for mean/max.
Weights let idle-skip gaps contribute their whole width in one call.
:class:`MetricsRegistry` is the named bag of both that the observer fills
and :class:`~repro.sim.results.SimResult` carries as plain dictionaries.

:meth:`MetricsRegistry.render_prometheus` serializes a registry into the
Prometheus text exposition format (version 0.0.4), which is what the
service supervisor publishes each round; :func:`prometheus_errors` is the
dependency-free validator CI asserts against (same style as
:func:`~repro.obs.tracing.chrome_schema_errors`), and
:func:`parse_prometheus` round-trips a rendered document back into
samples for tests.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional


class BoundedHistogram:
    """Integer-valued histogram with ``bound + 1`` exact buckets."""

    __slots__ = (
        "bound", "counts", "overflow", "total_weight", "weighted_sum",
        "max_value",
    )

    def __init__(self, bound: int) -> None:
        self.bound = max(0, int(bound))
        self.counts: List[int] = [0] * (self.bound + 1)
        self.overflow = 0
        self.total_weight = 0
        self.weighted_sum = 0
        self.max_value = 0

    def add(self, value: int, weight: int = 1) -> None:
        if weight <= 0:
            return
        self.total_weight += weight
        self.weighted_sum += value * weight
        if value > self.max_value:
            self.max_value = value
        if 0 <= value <= self.bound:
            self.counts[value] += weight
        else:
            self.overflow += weight

    @property
    def mean(self) -> float:
        if self.total_weight == 0:
            return 0.0
        return self.weighted_sum / self.total_weight

    def percentile(self, fraction: float) -> int:
        """Smallest bucket value covering ``fraction`` of the weight.

        Overflow weight counts as ``bound`` (the histogram cannot resolve
        beyond its bound; ``max_value`` records the true extreme).
        """
        if self.total_weight == 0:
            return 0
        threshold = fraction * self.total_weight
        running = 0
        for value, count in enumerate(self.counts):
            running += count
            if running >= threshold:
                return value
        return self.bound

    def summary(self) -> Dict[str, float]:
        return {
            "weight": float(self.total_weight),
            "mean": self.mean,
            "p50": float(self.percentile(0.50)),
            "p95": float(self.percentile(0.95)),
            "max": float(self.max_value),
            "overflow": float(self.overflow),
        }


class MetricsRegistry:
    """Named counters and histograms collected during a simulation."""

    def __init__(self) -> None:
        self.counters: Dict[str, int] = {}
        self.histograms: Dict[str, BoundedHistogram] = {}

    def counter(self, name: str, amount: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + amount

    def histogram(self, name: str, bound: int) -> BoundedHistogram:
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = BoundedHistogram(bound)
        return hist

    def summary(self) -> Dict[str, Dict[str, float]]:
        """Plain-dict snapshot (picklable, cache-friendly)."""
        out: Dict[str, Dict[str, float]] = {
            name: hist.summary() for name, hist in self.histograms.items()
        }
        if self.counters:
            out["counters"] = {
                name: float(value) for name, value in self.counters.items()
            }
        return out

    def render_prometheus(self, prefix: str = "repro") -> str:
        """Serialize the registry as Prometheus text exposition format.

        Counters become ``<prefix>_<name>`` counter series; each
        histogram becomes one gauge series per summary statistic,
        labelled ``{stat="mean"|"p50"|"p95"|"max"|"weight"|"overflow"}``
        — the digest shape the rest of the repo already exposes, kept
        instead of native Prometheus buckets so the exported numbers
        match ``status``/``state.json`` exactly.  Dots and other
        non-metric characters in names collapse to ``_``.
        """
        lines: List[str] = []
        for name in sorted(self.counters):
            metric = metric_name(f"{prefix}.{name}")
            lines.append(f"# TYPE {metric} counter")
            lines.append(f"{metric} {format_value(self.counters[name])}")
        for name in sorted(self.histograms):
            metric = metric_name(f"{prefix}.{name}")
            lines.append(f"# TYPE {metric} gauge")
            for stat, value in sorted(self.histograms[name].summary().items()):
                lines.append(
                    f'{metric}{{stat="{stat}"}} {format_value(value)}'
                )
        return "\n".join(lines) + "\n"


# ------------------------------------------------------- text exposition
#: metric names: letters, digits, underscores, colons; no leading digit
_METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
#: one sample line: name, optional {label="value",...} block, value
_SAMPLE_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>\S+)"
    r"(?:\s+(?P<timestamp>-?\d+))?$"
)
_LABEL_PAIR = re.compile(
    r'^(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"$'
)
_TYPES = {"counter", "gauge", "histogram", "summary", "untyped"}


def metric_name(name: str) -> str:
    """A valid Prometheus metric name for an internal dotted one."""
    cleaned = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    if not cleaned or not _METRIC_NAME.match(cleaned):
        cleaned = "_" + cleaned
    return cleaned


def format_value(value: float) -> str:
    """Render one sample value (integers stay integral)."""
    number = float(value)
    if number == int(number) and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


def _parse_number(text: str) -> Optional[float]:
    if text in ("+Inf", "Inf"):
        return float("inf")
    if text == "-Inf":
        return float("-inf")
    if text == "NaN":
        return float("nan")
    try:
        return float(text)
    except ValueError:
        return None


def prometheus_errors(text: str, max_errors: int = 20) -> List[str]:
    """Validate a text-exposition document; empty list means loadable.

    Dependency-free, in the style of
    :func:`~repro.obs.tracing.chrome_schema_errors`: every non-comment
    line must be a well-formed sample (valid metric name, well-formed
    label pairs, numeric value), ``# TYPE`` comments must name a known
    type and precede their metric's samples, and no ``# TYPE`` may be
    repeated for one metric.
    """
    errors: List[str] = []
    typed: Dict[str, str] = {}
    seen_samples: Dict[str, bool] = {}

    def note(message: str) -> bool:
        errors.append(message)
        return len(errors) >= max_errors

    for number, raw in enumerate(text.splitlines(), start=1):
        line = raw.rstrip()
        if not line.strip():
            continue
        where = f"line {number}"
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 2 and parts[1] == "TYPE":
                if len(parts) < 4:
                    if note(f"{where}: TYPE needs a metric name and a type"):
                        break
                    continue
                name, kind = parts[2], parts[3].strip()
                if not _METRIC_NAME.match(name):
                    if note(f"{where}: invalid metric name {name!r}"):
                        break
                    continue
                if kind not in _TYPES:
                    if note(f"{where}: unknown metric type {kind!r}"):
                        break
                    continue
                if name in typed:
                    if note(f"{where}: duplicate TYPE for {name!r}"):
                        break
                    continue
                if seen_samples.get(name):
                    if note(
                        f"{where}: TYPE for {name!r} after its samples"
                    ):
                        break
                    continue
                typed[name] = kind
            # Other comments (# HELP, free text) are always legal.
            continue
        match = _SAMPLE_LINE.match(line)
        if match is None:
            if note(f"{where}: not a valid sample line: {line!r}"):
                break
            continue
        name = match.group("name")
        seen_samples[name] = True
        labels = match.group("labels")
        if labels is not None and labels.strip():
            for pair in _split_labels(labels):
                label = _LABEL_PAIR.match(pair.strip())
                if label is None:
                    if note(f"{where}: malformed label pair {pair!r}"):
                        break
                    continue
                if not _LABEL_NAME.match(label.group("name")):
                    if note(
                        f"{where}: invalid label name "
                        f"{label.group('name')!r}"
                    ):
                        break
            if len(errors) >= max_errors:
                break
        if _parse_number(match.group("value")) is None:
            if note(
                f"{where}: sample value {match.group('value')!r} "
                f"is not a number"
            ):
                break
    return errors


def _split_labels(labels: str) -> List[str]:
    """Split a label block on commas outside quoted values."""
    parts: List[str] = []
    current: List[str] = []
    in_quotes = False
    escaped = False
    for char in labels:
        if escaped:
            current.append(char)
            escaped = False
            continue
        if char == "\\" and in_quotes:
            current.append(char)
            escaped = True
            continue
        if char == '"':
            in_quotes = not in_quotes
        if char == "," and not in_quotes:
            parts.append("".join(current))
            current = []
            continue
        current.append(char)
    if current or not parts:
        parts.append("".join(current))
    return [part for part in parts if part.strip()]


def parse_prometheus(text: str) -> Dict[str, float]:
    """Samples from a valid document: ``name{labels}`` (or bare name) → value.

    Raises ``ValueError`` on the first malformed line — run
    :func:`prometheus_errors` first for a full diagnostic list.
    """
    problems = prometheus_errors(text, max_errors=1)
    if problems:
        raise ValueError(f"not a valid exposition document: {problems[0]}")
    samples: Dict[str, float] = {}
    for line in text.splitlines():
        line = line.rstrip()
        if not line.strip() or line.startswith("#"):
            continue
        match = _SAMPLE_LINE.match(line)
        name = match.group("name")
        labels = match.group("labels")
        key = name if not labels else f"{name}{{{labels}}}"
        samples[key] = _parse_number(match.group("value"))
    return samples
