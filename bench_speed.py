#!/usr/bin/env python
"""Simulator speed microbenchmark: core throughput and sweep wall-clock.

Measures, on the quick four-benchmark suite:

* **per-core throughput** — simulated instructions per wall-clock second for
  every registered timing-core kind with phase one (workload preparation)
  excluded, i.e. the hot-loop speed of ``simulate`` alone;
* **F9 sweep wall-clock** — the Figure 9 BEU sweep end to end under three
  regimes: cold serial (no artifact cache), warm serial (persistent cache
  populated), and warm parallel (``--jobs`` workers).  Every measurement uses
  a fresh :class:`ExperimentContext` so in-memory memoization cannot hide
  phase-one cost;
* **fidelity tiers** — the quick suite at the long-trace bench scale
  (scale 64, 2.5M-instruction cap) on every registered core kind, exact versus
  sampled (stride 16) versus interval (a dozen calibration windows):
  wall-clock speedup per tier and the worst/mean absolute IPC error of each
  estimate.  Phase one is excluded from all sides, so the ratios are the
  timing-loop speedups the cheaper tiers deliver.

Results land in ``BENCH_SPEED.json`` next to this script, alongside the
recorded seed-commit baseline so speedups are visible at a glance::

    PYTHONPATH=src python bench_speed.py [--jobs 4] [--output BENCH_SPEED.json]

``--check`` turns the script into a regression guard: it measures per-core
throughput and the observability contract, printing per-core speedup deltas
against the seed baseline and the recorded report, and exits non-zero when
any core regressed more than 20% against the recorded ``BENCH_SPEED.json``,
when hooks-off throughput fell below the seed floor, or when attaching a
full Observer costs more than the budget (add ``--quick`` for fewer repeat
passes in CI).  After an accepted perf change, ``--check --update``
re-baselines the recorded throughput numbers instead of failing.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import tempfile
import time
from pathlib import Path

from repro.harness.artifacts import ArtifactCache
from repro.harness.context import ExperimentContext
from repro.harness.experiments import fig9_braid_beus
from repro.harness.parallel import effective_jobs
from repro.obs import Observer
from repro.sim.interval import IntervalConfig
from repro.sim.registry import core_registry
from repro.sim.run import simulate
from repro.sim.sampling import SamplingConfig

QUICK = ("gcc", "mcf", "swim", "equake")

#: Measured at the seed commit on the reference container (1 CPU), same
#: quick suite and max_instructions — the baseline the acceptance criteria
#: compare against.  Core kinds that post-date the seed commit (e.g.
#: blockooo) have no entry; seed-relative deltas are skipped for them.
SEED_BASELINE = {
    "throughput_insts_per_sec": {
        "ooo": 37071,
        "inorder": 29281,
        "depsteer": 48377,
        "braid": 29624,
    },
    "f9_quick_serial_seconds": 4.74,
}

#: every registered paradigm, so a new core is benchmarked for free
CORE_CONFIGS = {
    key: (descriptor.config_factory(8), descriptor.braided)
    for key, descriptor in core_registry().items()
}


def measure_throughput(repeats: int = 1) -> dict:
    """Simulated instructions/second per core kind, phase one excluded.

    ``repeats`` takes the best (fastest) of N timed passes per core —
    ``--check`` uses it to damp cross-process scheduler noise, which on a
    busy host easily exceeds the regression threshold for a single pass.
    The instruction budget is always the recorded report's: a smaller
    budget systematically under-measures throughput (per-run fixed costs
    amortize over fewer instructions), which would read as a regression.

    An untimed warm-up pass over every core precedes the timed passes:
    virtualized hosts ramp CPU frequency over tens of seconds of
    sustained load, so without it the first-measured core runs on a cold
    clock and the last on a hot one — an ordering bias that dwarfs any
    real per-core regression.  Warm-up also fills the per-workload
    decode/replay caches, for the same reason.
    """
    ctx = ExperimentContext(
        benchmarks=QUICK, jobs=1, cache=ArtifactCache(enabled=False)
    )
    workloads = {
        braided: [ctx.workload(name, braided=braided) for name in QUICK]
        for braided in (False, True)
    }
    for config, braided in CORE_CONFIGS.values():
        for workload in workloads[braided]:
            simulate(workload, config)
    throughput = {}
    for kind, (config, braided) in CORE_CONFIGS.items():
        best_elapsed = None
        instructions = 0
        for _ in range(max(1, repeats)):
            instructions = 0
            started = time.perf_counter()
            for workload in workloads[braided]:
                instructions += simulate(workload, config).instructions
            elapsed = time.perf_counter() - started
            if best_elapsed is None or elapsed < best_elapsed:
                best_elapsed = elapsed
        throughput[kind] = {
            "instructions": instructions,
            "seconds": round(best_elapsed, 3),
            "insts_per_sec": round(instructions / best_elapsed)
            if best_elapsed else 0,
        }
    return throughput


#: Hooks-off throughput may not regress below this fraction of the seed
#: baseline: the observability layer's zero-overhead-when-off contract.
OBS_OVERHEAD_FLOOR = 0.97

#: Attaching a full Observer (trace + cpi + metrics) may cost at most
#: this percentage of hooks-off throughput.  The budget is generous on
#: purpose: hooks force the single-stepping loop, so every event-kernel
#: speedup mechanically inflates the observer's *relative* cost even
#: when its absolute per-cycle work shrinks — the guard exists to catch
#: an accidentally quadratic or allocation-happy hook, not to freeze the
#: ratio.
OBS_COST_BUDGET_PCT = 70.0

#: ``--check`` fails when any core's throughput drops below this fraction
#: of the recorded BENCH_SPEED.json numbers (i.e. a >20% regression).
CHECK_FLOOR = 0.80


def measure_obs_overhead(hooks_off: dict, repeats: int = 1) -> dict:
    """Observer-attached throughput vs the hooks-off numbers just taken.

    ``hooks_off`` is :func:`measure_throughput`'s result — those runs have no
    hooks installed, so they double as the zero-overhead side of the contract.
    The guard compares them against the recorded seed baseline; the observed
    column quantifies what attaching a full Observer costs when you opt in.
    ``repeats`` takes the best of N observed passes, same rationale as
    :func:`measure_throughput` — a single unlucky pass against a best-of-3
    hooks-off number would overstate the cost.
    """
    ctx = ExperimentContext(
        benchmarks=QUICK, jobs=1, cache=ArtifactCache(enabled=False)
    )
    workloads = {
        braided: [ctx.workload(name, braided=braided) for name in QUICK]
        for braided in (False, True)
    }
    seed_tp = SEED_BASELINE["throughput_insts_per_sec"]
    section = {}
    for kind, (config, braided) in CORE_CONFIGS.items():
        observed = 0.0
        for _ in range(max(1, repeats)):
            instructions = 0
            started = time.perf_counter()
            for workload in workloads[braided]:
                observe = Observer(trace=True, cpi=True, metrics=True)
                instructions += simulate(
                    workload, config, observe=observe
                ).instructions
            elapsed = time.perf_counter() - started
            observed = max(
                observed, instructions / elapsed if elapsed else 0.0
            )
        plain = hooks_off[kind]["insts_per_sec"]
        seed = seed_tp.get(kind)
        section[kind] = {
            "hooks_off_insts_per_sec": plain,
            "observed_insts_per_sec": round(observed),
            "observer_cost_pct": round(100 * (1 - observed / plain), 1)
            if plain else 0.0,
            # None for kinds the seed commit did not have
            "hooks_off_vs_seed": round(plain / seed, 3) if seed else None,
        }
    return section


def check_obs_overhead(section: dict) -> list:
    """Cores whose hooks-off throughput regressed past the floor."""
    return [
        f"{kind}: hooks-off throughput is "
        f"{entry['hooks_off_vs_seed']:.3f}x the seed baseline "
        f"({entry['hooks_off_insts_per_sec']} vs "
        f"{SEED_BASELINE['throughput_insts_per_sec'][kind]} insts/s, "
        f"floor {OBS_OVERHEAD_FLOOR})"
        for kind, entry in section.items()
        if entry["hooks_off_vs_seed"] is not None
        and entry["hooks_off_vs_seed"] < OBS_OVERHEAD_FLOOR
    ]


def check_obs_cost(section: dict) -> list:
    """Cores where attaching a full Observer costs more than the budget."""
    return [
        f"{kind}: full observer costs {entry['observer_cost_pct']:.1f}% of "
        f"hooks-off throughput ({entry['observed_insts_per_sec']} vs "
        f"{entry['hooks_off_insts_per_sec']} insts/s, "
        f"budget {OBS_COST_BUDGET_PCT}%)"
        for kind, entry in section.items()
        if entry["observer_cost_pct"] > OBS_COST_BUDGET_PCT
    ]


def check_throughput(fresh: dict, recorded: dict) -> list:
    """Cores whose throughput regressed past ``CHECK_FLOOR`` (the
    ``--check`` guard, mirroring :func:`check_obs_overhead`)."""
    problems = []
    for kind, entry in fresh.items():
        baseline = recorded.get(kind, {}).get("insts_per_sec")
        if not baseline:
            problems.append(
                f"{kind}: no recorded throughput baseline — run the full "
                "benchmark (or --check --update) first"
            )
            continue
        ratio = entry["insts_per_sec"] / baseline
        if ratio < CHECK_FLOOR:
            problems.append(
                f"{kind}: throughput is {ratio:.3f}x the recorded baseline "
                f"({entry['insts_per_sec']} vs {baseline} insts/s, "
                f"floor {CHECK_FLOOR})"
            )
    return problems


def time_f9(jobs: int, cache: ArtifactCache) -> float:
    """Wall-clock of the full Figure 9 quick sweep with a fresh context."""
    ctx = ExperimentContext(benchmarks=QUICK, jobs=jobs, cache=cache)
    started = time.perf_counter()
    fig9_braid_beus(ctx)
    return time.perf_counter() - started


#: Sweep points the Figure 9 experiment dispatches on the quick suite:
#: five BEU counts plus the ooo baseline, per benchmark.
F9_POINTS = len(QUICK) * 6


def measure_sweep(jobs: int) -> dict:
    # Record the worker count the pool actually used, not the request:
    # effective_jobs clamps to the host CPU count (and to one worker on
    # single-CPU hosts), and a report claiming "jobs: 4" for a serial run
    # misattributes the wall-clock.
    effective = effective_jobs(jobs, F9_POINTS)
    with tempfile.TemporaryDirectory(prefix="repro-bench-cache-") as tmp:
        cold = time_f9(1, ArtifactCache(enabled=False))
        # Populate the cache, then measure warm regimes on fresh contexts.
        time_f9(1, ArtifactCache(root=Path(tmp)))
        warm_serial = time_f9(1, ArtifactCache(root=Path(tmp)))
        warm_parallel = time_f9(jobs, ArtifactCache(root=Path(tmp)))
    section = {
        "jobs_requested": jobs,
        "jobs": effective,
        "cold_serial_seconds": round(cold, 3),
        "warm_serial_seconds": round(warm_serial, 3),
        "warm_parallel_seconds": round(warm_parallel, 3),
    }
    if effective != jobs:
        section["jobs_note"] = (
            f"--jobs {jobs} clamped to {effective} by effective_jobs "
            f"(host exposes {os.cpu_count()} CPU(s), {F9_POINTS} points): "
            "the warm_parallel regime ran with the clamped worker count"
        )
    return section


#: Frozen long-trace configuration for the fidelity-tier benchmark: the
#: scale is large enough that anchored interval sampling has hundreds of
#: outer-loop iterations to stratify, which is where both its speedup and
#: its accuracy come from (error shrinks as (N - n)/N * cv/sqrt(n)), and
#: that the interval tier's dozen calibration windows cover a small
#: fraction of the trace.
FIDELITY_BENCH = {
    "scale": 64.0,
    "max_instructions": 2_500_000,
    "sampling": SamplingConfig(stride=16),
    "interval": IntervalConfig(),
}


def measure_fidelity_tiers() -> dict:
    """Exact vs sampled vs interval timing at the long-trace bench scale."""
    sampling = FIDELITY_BENCH["sampling"]
    interval = FIDELITY_BENCH["interval"]
    ctx = ExperimentContext(
        benchmarks=QUICK,
        scale=FIDELITY_BENCH["scale"],
        max_instructions=FIDELITY_BENCH["max_instructions"],
        jobs=1,
        cache=ArtifactCache.from_env(),
    )
    workloads = {
        braided: {name: ctx.workload(name, braided=braided) for name in QUICK}
        for braided in (False, True)
    }
    points = {}
    seconds = {"exact": 0.0, "sampled": 0.0, "interval": 0.0}
    for kind, (config, braided) in CORE_CONFIGS.items():
        for name in QUICK:
            workload = workloads[braided][name]
            started = time.perf_counter()
            exact = simulate(workload, config)
            seconds["exact"] += time.perf_counter() - started
            started = time.perf_counter()
            sampled = simulate(workload, config, sampling=sampling)
            seconds["sampled"] += time.perf_counter() - started
            started = time.perf_counter()
            analytic = simulate(
                workload, config, fidelity="interval", interval=interval
            )
            seconds["interval"] += time.perf_counter() - started

            def error_pct(estimate):
                if not exact.ipc:
                    return 0.0
                return round(
                    100 * abs(estimate.ipc - exact.ipc) / exact.ipc, 2
                )

            points[f"{name}/{kind}"] = {
                "exact_ipc": round(exact.ipc, 4),
                "sampled_ipc": round(sampled.ipc, 4),
                "sampled_error_pct": error_pct(sampled),
                "sampled_detail_fraction": round(
                    sampled.extra.get("sample_detail_fraction", 1.0), 3
                ),
                "interval_ipc": round(analytic.ipc, 4),
                "interval_error_pct": error_pct(analytic),
                "interval_stated_bound_pct": round(
                    analytic.extra.get("interval_error_bound_pct", 0.0), 1
                ),
                "interval_detail_fraction": round(
                    analytic.extra.get("sample_detail_fraction", 1.0), 3
                ),
            }

    def stats(tier):
        errors = [entry[f"{tier}_error_pct"] for entry in points.values()]
        return {
            f"{tier}_seconds": round(seconds[tier], 3),
            f"{tier}_speedup": round(seconds["exact"] / seconds[tier], 2)
            if seconds[tier] else 0.0,
            f"{tier}_max_ipc_error_pct": max(errors),
            f"{tier}_mean_ipc_error_pct": round(
                sum(errors) / len(errors), 2
            ),
        }

    section = {
        "scale": FIDELITY_BENCH["scale"],
        "max_instructions": FIDELITY_BENCH["max_instructions"],
        "sampling": sampling.spec(),
        "interval": interval.spec(),
        "exact_seconds": round(seconds["exact"], 3),
    }
    section.update(stats("sampled"))
    section.update(stats("interval"))
    section["points"] = points
    return section


def aggregate_speedup(throughput: dict, tiers: dict) -> dict:
    """Combined-layer speedup vs the seed commit's exact simulator.

    The tier speedups in ``tiers`` are measured against *today's* exact
    mode, which already contains the event-kernel and replay-facts wins;
    the seed exact simulator was slower by the per-core throughput ratios.
    The aggregate composes both layers — (seed-vs-now throughput, geometric
    mean over core kinds) x (exact-vs-interval wall-clock at bench scale) —
    and reports each factor so the composition is checkable.
    """
    seed_tp = SEED_BASELINE["throughput_insts_per_sec"]
    ratios = [
        throughput[kind]["insts_per_sec"] / seed_tp[kind]
        for kind in seed_tp
        if throughput.get(kind, {}).get("insts_per_sec")
    ]
    kernel = 1.0
    for ratio in ratios:
        kernel *= ratio
    kernel **= 1.0 / len(ratios) if ratios else 1.0
    sampled = tiers.get("sampled_speedup", 0.0)
    interval = tiers.get("interval_speedup", 0.0)
    return {
        "kernel_layer_geomean": round(kernel, 2),
        "sampled_tier": sampled,
        "interval_tier": interval,
        "sampled_vs_seed_exact": round(kernel * sampled, 1),
        "interval_vs_seed_exact": round(kernel * interval, 1),
        "note": (
            "tier speedups are measured against today's exact mode; "
            "multiplying by the kernel-layer geomean gives the wall-clock "
            "ratio vs the seed commit's exact simulator at bench scale"
        ),
    }


def run_check(args) -> int:
    """The ``--check`` regression guard (and ``--update`` re-baseline)."""
    output = Path(args.output)
    recorded = {}
    if output.exists():
        recorded = json.loads(output.read_text())
    fresh = measure_throughput(repeats=2 if args.quick else 3)
    seed_tp = SEED_BASELINE["throughput_insts_per_sec"]
    recorded_tp = recorded.get("throughput", {})
    for kind, entry in fresh.items():
        rate = entry["insts_per_sec"]
        deltas = []
        if seed_tp.get(kind):
            deltas.append(f"{rate / seed_tp[kind]:.2f}x seed")
        baseline = recorded_tp.get(kind, {}).get("insts_per_sec")
        if baseline:
            deltas.append(f"{rate / baseline:.2f}x recorded")
        print(
            f"{kind}: {rate} insts/s"
            + (f" ({', '.join(deltas)})" if deltas else "")
        )

    if args.update:
        if not recorded:
            print(
                f"{output} does not exist; run the full benchmark first",
                file=sys.stderr,
            )
            return 1
        recorded["throughput"] = fresh
        seed_tp = SEED_BASELINE["throughput_insts_per_sec"]
        recorded.setdefault("speedup_vs_seed", {})["throughput"] = {
            kind: round(entry["insts_per_sec"] / seed_tp[kind], 2)
            for kind, entry in fresh.items()
            if seed_tp.get(kind)
        }
        output.write_text(json.dumps(recorded, indent=2) + "\n")
        print(f"re-baselined throughput in {output}")
        return 0

    problems = check_throughput(fresh, recorded_tp)
    if problems:
        print(
            f"\nFAIL: throughput regressed past the {CHECK_FLOOR} floor "
            f"vs {output}:",
            file=sys.stderr,
        )
        for line in problems:
            print(f"  {line}", file=sys.stderr)
        print(
            "  (after an accepted perf change, re-baseline with "
            "--check --update)",
            file=sys.stderr,
        )
        return 1

    obs_overhead = measure_obs_overhead(fresh, repeats=2 if args.quick else 3)
    for kind, entry in obs_overhead.items():
        print(
            f"{kind}: observer cost {entry['observer_cost_pct']:.1f}% "
            f"(observed {entry['observed_insts_per_sec']} insts/s)"
        )
    obs_problems = check_obs_overhead(obs_overhead) + check_obs_cost(
        obs_overhead
    )
    if obs_problems:
        print(
            "\nFAIL: observability contract violated "
            f"(hooks-off floor {OBS_OVERHEAD_FLOOR} vs seed, observer cost "
            f"budget {OBS_COST_BUDGET_PCT}%):",
            file=sys.stderr,
        )
        for line in obs_problems:
            print(f"  {line}", file=sys.stderr)
        return 1

    print(
        f"OK: no core regressed past the {CHECK_FLOOR} floor; observer "
        f"cost within the {OBS_COST_BUDGET_PCT}% budget"
    )
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", type=int, default=4,
                        help="workers for the warm parallel sweep (default 4)")
    parser.add_argument("--output", default="BENCH_SPEED.json",
                        help="where to write the JSON report")
    parser.add_argument("--check", action="store_true",
                        help="measure throughput only and exit non-zero on a "
                             f">{round((1 - CHECK_FLOOR) * 100)}%% per-core "
                             "regression vs the recorded report")
    parser.add_argument("--update", action="store_true",
                        help="with --check: accept the fresh throughput "
                             "numbers and rewrite the recorded baseline")
    parser.add_argument("--quick", action="store_true",
                        help="with --check: fewer repeat passes (CI budget)")
    args = parser.parse_args(argv)

    if args.check or args.update:
        return run_check(args)

    throughput = measure_throughput()
    obs_overhead = measure_obs_overhead(throughput)
    sweep = measure_sweep(args.jobs)
    tiers = measure_fidelity_tiers()

    seed_tp = SEED_BASELINE["throughput_insts_per_sec"]
    notes = []
    if (os.cpu_count() or 1) < args.jobs:
        notes.append(
            f"host exposes {os.cpu_count()} CPU(s) < --jobs {args.jobs}: "
            "workers time-slice one core, so the parallel sweep pays pool "
            "overhead without parallel speedup; on a multi-core host the "
            "sweep points fan out across cores"
        )
    report = {
        "host": {
            "cpu_count": os.cpu_count(),
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "suite": {"benchmarks": list(QUICK), "max_instructions": 60_000},
        "throughput": throughput,
        "obs_overhead": obs_overhead,
        "f9_quick_sweep": sweep,
        "fidelity_tiers": tiers,
        "seed_baseline": SEED_BASELINE,
        "speedup_vs_seed": {
            "throughput": {
                kind: round(entry["insts_per_sec"] / seed_tp[kind], 2)
                for kind, entry in throughput.items()
                if seed_tp.get(kind)
            },
            "f9_warm_serial": round(
                SEED_BASELINE["f9_quick_serial_seconds"]
                / sweep["warm_serial_seconds"], 2,
            ),
            "f9_warm_parallel": round(
                SEED_BASELINE["f9_quick_serial_seconds"]
                / sweep["warm_parallel_seconds"], 2,
            ),
            "aggregate": aggregate_speedup(throughput, tiers),
        },
        "notes": notes,
    }
    Path(args.output).write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))

    regressions = check_obs_overhead(obs_overhead) + check_obs_cost(
        obs_overhead
    )
    if regressions:
        print(
            "\nFAIL: observability contract violated (hooks-off floor "
            f"{OBS_OVERHEAD_FLOOR} vs the seed baseline, observer cost "
            f"budget {OBS_COST_BUDGET_PCT}%):",
            file=sys.stderr,
        )
        for line in regressions:
            print(f"  {line}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
