#!/usr/bin/env python
"""Simulator speed microbenchmark: core throughput and sweep wall-clock.

Measures, on the quick four-benchmark suite:

* **per-core throughput** — simulated instructions per wall-clock second for
  each timing-core kind (out-of-order, in-order, dependence-steering, braid)
  with phase one (workload preparation) excluded, i.e. the hot-loop speed of
  ``simulate`` alone;
* **F9 sweep wall-clock** — the Figure 9 BEU sweep end to end under three
  regimes: cold serial (no artifact cache), warm serial (persistent cache
  populated), and warm parallel (``--jobs`` workers).  Every measurement uses
  a fresh :class:`ExperimentContext` so in-memory memoization cannot hide
  phase-one cost;
* **interval sampling** — the quick suite at the long-trace bench scale
  (scale 64, 2.5M-instruction cap) on all four core kinds, exact versus
  interval-sampled (stride 16): wall-clock speedup and the worst/mean
  absolute IPC error of the sampled estimate.  Phase one is excluded from
  both sides, so the ratio is the timing-loop speedup the sampler delivers.

Results land in ``BENCH_SPEED.json`` next to this script, alongside the
recorded seed-commit baseline so speedups are visible at a glance::

    PYTHONPATH=src python bench_speed.py [--jobs 4] [--output BENCH_SPEED.json]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import tempfile
import time
from pathlib import Path

from repro.harness.artifacts import ArtifactCache
from repro.harness.context import ExperimentContext
from repro.harness.experiments import fig9_braid_beus
from repro.obs import Observer
from repro.sim.config import braid_config, depsteer_config, inorder_config, ooo_config
from repro.sim.run import simulate
from repro.sim.sampling import SamplingConfig

QUICK = ("gcc", "mcf", "swim", "equake")

#: Measured at the seed commit on the reference container (1 CPU), same
#: quick suite and max_instructions — the baseline the acceptance criteria
#: compare against.
SEED_BASELINE = {
    "throughput_insts_per_sec": {
        "ooo": 37071,
        "inorder": 29281,
        "depsteer": 48377,
        "braid": 29624,
    },
    "f9_quick_serial_seconds": 4.74,
}

CORE_CONFIGS = {
    "ooo": (ooo_config(8), False),
    "inorder": (inorder_config(8), False),
    "depsteer": (depsteer_config(8), False),
    "braid": (braid_config(8), True),
}


def measure_throughput() -> dict:
    """Simulated instructions/second per core kind, phase one excluded."""
    ctx = ExperimentContext(
        benchmarks=QUICK, jobs=1, cache=ArtifactCache(enabled=False)
    )
    workloads = {
        braided: [ctx.workload(name, braided=braided) for name in QUICK]
        for braided in (False, True)
    }
    throughput = {}
    for kind, (config, braided) in CORE_CONFIGS.items():
        instructions = 0
        started = time.perf_counter()
        for workload in workloads[braided]:
            instructions += simulate(workload, config).instructions
        elapsed = time.perf_counter() - started
        throughput[kind] = {
            "instructions": instructions,
            "seconds": round(elapsed, 3),
            "insts_per_sec": round(instructions / elapsed) if elapsed else 0,
        }
    return throughput


#: Hooks-off throughput may not regress below this fraction of the seed
#: baseline: the observability layer's zero-overhead-when-off contract.
OBS_OVERHEAD_FLOOR = 0.97


def measure_obs_overhead(hooks_off: dict) -> dict:
    """Observer-attached throughput vs the hooks-off numbers just taken.

    ``hooks_off`` is :func:`measure_throughput`'s result — those runs have no
    hooks installed, so they double as the zero-overhead side of the contract.
    The guard compares them against the recorded seed baseline; the observed
    column quantifies what attaching a full Observer costs when you opt in.
    """
    ctx = ExperimentContext(
        benchmarks=QUICK, jobs=1, cache=ArtifactCache(enabled=False)
    )
    workloads = {
        braided: [ctx.workload(name, braided=braided) for name in QUICK]
        for braided in (False, True)
    }
    seed_tp = SEED_BASELINE["throughput_insts_per_sec"]
    section = {}
    for kind, (config, braided) in CORE_CONFIGS.items():
        instructions = 0
        started = time.perf_counter()
        for workload in workloads[braided]:
            observe = Observer(trace=True, cpi=True, metrics=True)
            instructions += simulate(
                workload, config, observe=observe
            ).instructions
        elapsed = time.perf_counter() - started
        observed = instructions / elapsed if elapsed else 0.0
        plain = hooks_off[kind]["insts_per_sec"]
        section[kind] = {
            "hooks_off_insts_per_sec": plain,
            "observed_insts_per_sec": round(observed),
            "observer_cost_pct": round(100 * (1 - observed / plain), 1)
            if plain else 0.0,
            "hooks_off_vs_seed": round(plain / seed_tp[kind], 3),
        }
    return section


def check_obs_overhead(section: dict) -> list:
    """Cores whose hooks-off throughput regressed past the floor."""
    return [
        f"{kind}: hooks-off throughput is "
        f"{entry['hooks_off_vs_seed']:.3f}x the seed baseline "
        f"({entry['hooks_off_insts_per_sec']} vs "
        f"{SEED_BASELINE['throughput_insts_per_sec'][kind]} insts/s, "
        f"floor {OBS_OVERHEAD_FLOOR})"
        for kind, entry in section.items()
        if entry["hooks_off_vs_seed"] < OBS_OVERHEAD_FLOOR
    ]


def time_f9(jobs: int, cache: ArtifactCache) -> float:
    """Wall-clock of the full Figure 9 quick sweep with a fresh context."""
    ctx = ExperimentContext(benchmarks=QUICK, jobs=jobs, cache=cache)
    started = time.perf_counter()
    fig9_braid_beus(ctx)
    return time.perf_counter() - started


def measure_sweep(jobs: int) -> dict:
    with tempfile.TemporaryDirectory(prefix="repro-bench-cache-") as tmp:
        cold = time_f9(1, ArtifactCache(enabled=False))
        # Populate the cache, then measure warm regimes on fresh contexts.
        time_f9(1, ArtifactCache(root=Path(tmp)))
        warm_serial = time_f9(1, ArtifactCache(root=Path(tmp)))
        warm_parallel = time_f9(jobs, ArtifactCache(root=Path(tmp)))
    return {
        "jobs": jobs,
        "cold_serial_seconds": round(cold, 3),
        "warm_serial_seconds": round(warm_serial, 3),
        "warm_parallel_seconds": round(warm_parallel, 3),
    }


#: Frozen long-trace configuration for the sampling benchmark: the scale is
#: large enough that anchored interval sampling has hundreds of outer-loop
#: iterations to stratify, which is where both its speedup and its accuracy
#: come from (error shrinks as (N - n)/N * cv/sqrt(n)).
SAMPLING_BENCH = {
    "scale": 64.0,
    "max_instructions": 2_500_000,
    "sampling": SamplingConfig(stride=16),
}


def measure_sampling() -> dict:
    """Exact vs interval-sampled timing at the long-trace bench scale."""
    sampling = SAMPLING_BENCH["sampling"]
    ctx = ExperimentContext(
        benchmarks=QUICK,
        scale=SAMPLING_BENCH["scale"],
        max_instructions=SAMPLING_BENCH["max_instructions"],
        jobs=1,
        cache=ArtifactCache.from_env(),
    )
    workloads = {
        braided: {name: ctx.workload(name, braided=braided) for name in QUICK}
        for braided in (False, True)
    }
    points = {}
    exact_seconds = sampled_seconds = 0.0
    for kind, (config, braided) in CORE_CONFIGS.items():
        for name in QUICK:
            workload = workloads[braided][name]
            started = time.perf_counter()
            exact = simulate(workload, config)
            exact_seconds += time.perf_counter() - started
            started = time.perf_counter()
            sampled = simulate(workload, config, sampling=sampling)
            sampled_seconds += time.perf_counter() - started
            error = abs(sampled.ipc - exact.ipc) / exact.ipc if exact.ipc else 0.0
            points[f"{name}/{kind}"] = {
                "exact_ipc": round(exact.ipc, 4),
                "sampled_ipc": round(sampled.ipc, 4),
                "ipc_error_pct": round(100 * error, 2),
                "detail_fraction": round(
                    sampled.extra.get("sample_detail_fraction", 1.0), 3
                ),
            }
    errors = [entry["ipc_error_pct"] for entry in points.values()]
    return {
        "scale": SAMPLING_BENCH["scale"],
        "max_instructions": SAMPLING_BENCH["max_instructions"],
        "sampling": sampling.spec(),
        "exact_seconds": round(exact_seconds, 3),
        "sampled_seconds": round(sampled_seconds, 3),
        "speedup": round(exact_seconds / sampled_seconds, 2)
        if sampled_seconds else 0.0,
        "max_ipc_error_pct": max(errors),
        "mean_ipc_error_pct": round(sum(errors) / len(errors), 2),
        "points": points,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", type=int, default=4,
                        help="workers for the warm parallel sweep (default 4)")
    parser.add_argument("--output", default="BENCH_SPEED.json",
                        help="where to write the JSON report")
    args = parser.parse_args(argv)

    throughput = measure_throughput()
    obs_overhead = measure_obs_overhead(throughput)
    sweep = measure_sweep(args.jobs)
    sampling = measure_sampling()

    seed_tp = SEED_BASELINE["throughput_insts_per_sec"]
    notes = []
    if (os.cpu_count() or 1) < args.jobs:
        notes.append(
            f"host exposes {os.cpu_count()} CPU(s) < --jobs {args.jobs}: "
            "workers time-slice one core, so the parallel sweep pays pool "
            "overhead without parallel speedup; on a multi-core host the "
            "sweep points fan out across cores"
        )
    report = {
        "host": {
            "cpu_count": os.cpu_count(),
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "suite": {"benchmarks": list(QUICK), "max_instructions": 60_000},
        "throughput": throughput,
        "obs_overhead": obs_overhead,
        "f9_quick_sweep": sweep,
        "interval_sampling": sampling,
        "seed_baseline": SEED_BASELINE,
        "speedup_vs_seed": {
            "throughput": {
                kind: round(entry["insts_per_sec"] / seed_tp[kind], 2)
                for kind, entry in throughput.items()
            },
            "f9_warm_serial": round(
                SEED_BASELINE["f9_quick_serial_seconds"]
                / sweep["warm_serial_seconds"], 2,
            ),
            "f9_warm_parallel": round(
                SEED_BASELINE["f9_quick_serial_seconds"]
                / sweep["warm_parallel_seconds"], 2,
            ),
        },
        "notes": notes,
    }
    Path(args.output).write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))

    regressions = check_obs_overhead(obs_overhead)
    if regressions:
        print(
            "\nFAIL: observability-off throughput regressed past the "
            f"{OBS_OVERHEAD_FLOOR} floor vs the seed baseline:",
            file=sys.stderr,
        )
        for line in regressions:
            print(f"  {line}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
