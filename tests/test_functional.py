"""Unit tests for the functional executor."""

import pytest

from repro.isa import assemble
from repro.isa.instruction import BraidAnnotation, Instruction
from repro.isa.opcodes import opcode_by_name, to_unsigned
from repro.isa.program import BasicBlock, Program
from repro.isa.registers import Space, int_reg
from repro.sim.functional import (
    INSTRUCTION_BYTES,
    ArchState,
    ExecutionError,
    FunctionalExecutor,
    ProgramLayout,
    execute,
)


class TestStraightLine:
    def test_arithmetic(self):
        program = assemble(
            """
            addq r31, #6, r1
            addq r31, #7, r2
            mulq r1, r2, r3
            """
        )
        state, stats = execute(program)
        assert state.int_regs[3] == 42
        assert stats.dynamic_instructions == 3
        assert stats.completed

    def test_memory_round_trip(self):
        program = assemble(
            """
            addq r31, #4096, r1
            addq r31, #99, r2
            stq r2, 8(r1)
            ldq r3, 8(r1)
            """
        )
        state, _ = execute(program)
        assert state.int_regs[3] == 99
        assert state.memory[4096 + 8] == 99

    def test_uninitialized_memory_reads_zero(self):
        program = assemble("addq r31, #4096, r1\nldq r2, 0(r1)")
        state, _ = execute(program)
        assert state.int_regs[2] == 0

    def test_word_addressing_ignores_low_bits(self):
        state = ArchState()
        state.store(0x1004, 7)
        assert state.load(0x1000, fp=False) == 7

    def test_fp_flow(self):
        program = assemble(
            """
            addq r31, #3, r1
            itoft r1, f1
            addt f1, f1, f2
            addq r31, #4096, r2
            stt f2, 0(r2)
            """
        )
        state, _ = execute(program)
        assert state.fp_regs[2] == 6.0
        assert state.memory[4096] == 6.0


class TestControlFlow:
    def test_loop_runs_to_completion(self, small_program):
        state, stats = execute(small_program)
        assert stats.completed
        assert state.int_regs[2] == 5  # loop counter reached n
        assert stats.block_counts[1] == 5  # LOOP executed 5 times

    def test_branch_statistics(self, small_program):
        _, stats = execute(small_program)
        assert stats.dynamic_branches == 5
        assert stats.taken_branches == 4  # last iteration falls through

    def test_instruction_cap_stops_execution(self):
        program = assemble(
            ".block SPIN\n addq r1, r2, r3\n br SPIN"
        )
        _, stats = execute(program, max_instructions=100)
        assert not stats.completed
        assert stats.dynamic_instructions == 100


class TestTrace:
    def test_trace_sequence_numbers_are_dense(self, small_program):
        trace = list(FunctionalExecutor(small_program).trace())
        assert [d.seq for d in trace] == list(range(len(trace)))

    def test_branch_outcomes_recorded(self, small_program):
        trace = list(FunctionalExecutor(small_program).trace())
        branches = [d for d in trace if d.is_branch]
        assert all(d.taken is not None for d in branches)
        assert branches[-1].taken is False

    def test_memory_addresses_recorded(self, small_program):
        trace = list(FunctionalExecutor(small_program).trace())
        stores = [d for d in trace if d.is_store]
        assert stores and all(d.mem_addr is not None for d in stores)

    def test_next_pc_of_taken_branch_is_target_block(self, small_program):
        executor = FunctionalExecutor(small_program)
        layout = executor.layout
        for dyn in executor.trace():
            if dyn.is_branch and dyn.taken:
                assert dyn.next_pc == layout.block_start[dyn.inst.target]


class TestLayout:
    def test_addresses_are_contiguous(self, small_program):
        layout = ProgramLayout(small_program)
        addresses = [
            layout.address(inst) for inst in small_program.instructions()
        ]
        assert addresses == sorted(addresses)
        deltas = {b - a for a, b in zip(addresses, addresses[1:])}
        assert deltas == {INSTRUCTION_BYTES}

    def test_block_starts_match_first_instruction(self, small_program):
        layout = ProgramLayout(small_program)
        for block in small_program.blocks:
            assert layout.block_start[block.index] == layout.address(
                block.instructions[0]
            )


class TestInternalSpace:
    def _internal_program(self, read_before_write: bool) -> Program:
        addq = opcode_by_name("addq")
        write = Instruction(
            opcode=addq, dest=int_reg(2), srcs=(int_reg(31), int_reg(31)),
            annot=BraidAnnotation(
                braid_id=0, start=True, src_spaces=(Space.EXTERNAL,) * 2,
                dest_internal=True, dest_external=False,
            ),
        )
        read = Instruction(
            opcode=addq, dest=int_reg(5), srcs=(int_reg(2), int_reg(31)),
            annot=BraidAnnotation(
                braid_id=0 if not read_before_write else 1,
                start=read_before_write,
                src_spaces=(Space.INTERNAL, Space.EXTERNAL),
            ),
        )
        block = BasicBlock(0, [read] if read_before_write else [write, read])
        return Program(name="internal", blocks=[block])

    def test_internal_value_flows_within_braid(self):
        state, _ = execute(self._internal_program(read_before_write=False))
        assert state.int_regs[5] == 0

    def test_reading_dead_internal_value_raises(self):
        with pytest.raises(ExecutionError):
            execute(self._internal_program(read_before_write=True))

    def test_strict_internal_can_be_disabled(self):
        program = self._internal_program(read_before_write=True)
        with pytest.raises(ExecutionError):
            # Still fails: the value was never written at all.
            execute(program, strict_internal=False)

    def test_zero_register_write_discarded(self):
        program = assemble("addq r1, r2, r31")
        state, _ = execute(program)
        assert state.int_regs[31] == 0

    def test_snapshot_is_hashable_and_stable(self, small_program):
        a, _ = execute(small_program)
        b, _ = execute(small_program)
        assert a.snapshot() == b.snapshot()
        hash(a.snapshot())


class TestCmovSemantics:
    def test_cmov_in_context(self):
        program = assemble(
            """
            addq r31, #1, r1
            addq r31, #5, r3
            cmovne r1, #9, r3
            cmoveq r1, #7, r3
            """
        )
        state, _ = execute(program)
        assert state.int_regs[3] == 9  # cmovne fired, cmoveq kept value
