"""Tests for the dynamic energy estimation (paper section 5.1)."""

import pytest

from repro.analysis.energy import (
    compare_energy,
    energy_per_instruction,
    estimate_energy,
)
from repro.core import braidify
from repro.sim import (
    SimResult,
    braid_config,
    ooo_config,
    prepare_workload,
    simulate,
)
from repro.workloads import build_program


@pytest.fixture(scope="module")
def runs():
    program = build_program("gcc")
    compilation = braidify(program)
    plain = prepare_workload(program)
    braided = prepare_workload(compilation.translated)
    ooo = simulate(plain, ooo_config(8))
    braid = simulate(braided, braid_config(8))
    return {
        "ooo": (ooo_config(8), ooo),
        "braid": (braid_config(8), braid),
    }


class TestActivityCounters:
    def test_rf_activity_recorded(self, runs):
        _, result = runs["ooo"]
        assert result.extra["rf_reads"] > 0
        assert result.extra["rf_writes"] > 0

    def test_braid_internal_activity_recorded(self, runs):
        _, result = runs["braid"]
        assert result.extra["internal_rf_reads"] > 0
        assert result.extra["internal_rf_writes"] > 0
        assert result.extra["busybit_sets"] > 0

    def test_braid_external_writes_below_ooo(self, runs):
        # Most braid values die internally: far fewer external RF writes.
        _, ooo = runs["ooo"]
        _, braid = runs["braid"]
        assert braid.extra["rf_writes"] < 0.6 * ooo.extra["rf_writes"]

    def test_braid_bypass_traffic_below_ooo(self, runs):
        _, ooo = runs["ooo"]
        _, braid = runs["braid"]
        assert braid.extra["bypass_forwards"] < ooo.extra["bypass_forwards"]


class TestEnergyModel:
    def test_breakdown_fields(self, runs):
        config, result = runs["ooo"]
        breakdown = estimate_energy(config, result)
        assert breakdown.total == pytest.approx(
            breakdown.regfile + breakdown.scheduler + breakdown.bypass
        )
        assert set(breakdown.as_dict()) == {
            "regfile", "scheduler", "bypass", "total",
        }

    def test_braid_scheduler_energy_tiny(self, runs):
        ooo = estimate_energy(*runs["ooo"])
        braid = estimate_energy(*runs["braid"])
        # Broadcast wakeup (2 x 256 comparators per completion) vs checking
        # two window entries: orders of magnitude apart.
        assert braid.scheduler < ooo.scheduler / 20

    def test_braid_total_energy_below_ooo(self, runs):
        ooo = estimate_energy(*runs["ooo"])
        braid = estimate_energy(*runs["braid"])
        assert energy_per_instruction(braid) < 0.5 * energy_per_instruction(ooo)

    def test_compare_energy_ratios(self, runs):
        ooo = estimate_energy(*runs["ooo"])
        braid = estimate_energy(*runs["braid"])
        ratios = compare_energy(braid, ooo)
        assert ratios["scheduler"] < 0.05
        assert ratios["total"] < 1.0
        assert 0.0 < ratios["per_instruction"] < 1.0

    def test_zero_instruction_guard(self, runs):
        config, result = runs["ooo"]
        breakdown = estimate_energy(config, result)
        object.__setattr__(breakdown, "_instructions", 0.0)
        assert energy_per_instruction(breakdown) == 0.0


class TestSampledGuard:
    def test_sampled_result_rejected(self, runs):
        config, exact = runs["ooo"]
        sampled = SimResult(
            benchmark=exact.benchmark,
            machine=exact.machine,
            cycles=exact.cycles,
            instructions=exact.instructions,
            issued=exact.issued // 10,  # window-only counter
            sampled=True,
            sample_measured_instructions=exact.instructions // 10,
        )
        with pytest.raises(ValueError, match="interval-sampled"):
            estimate_energy(config, sampled)

    def test_exact_result_still_accepted(self, runs):
        config, result = runs["ooo"]
        assert estimate_energy(config, result).total > 0
