"""Failure paths of the ``validate`` runner, driven through the CLI.

``repro.validate.runner`` is the machinery every other safety net hangs
off, so its *failure* behaviour gets the same scrutiny as its clean
behaviour: a lockstep divergence mid-sweep, an invariant violation
mid-run, and a miscompiling translator must each surface as a FAIL line
and a non-zero exit code — never a crash, never a silent pass.
"""

from __future__ import annotations

import copy

import pytest

from repro.harness.__main__ import main
from repro.sim.run import build_core
from repro.validate.fuzzing import fuzz_translator

CLEAN_ARGS = [
    "validate", "--benchmarks", "gcc", "--cores", "ooo",
    "--no-cache", "--fuzz", "0",
]


def _tampering_build_core(offset):
    """A ``build_core`` whose core replays a subtly corrupted trace."""

    def sabotaged(workload, config):
        tampered = copy.deepcopy(workload)
        tampered.trace[offset].pc += 4
        return build_core(tampered, config)

    return sabotaged


class TestDivergencePaths:
    def test_oracle_divergence_fails_the_sweep(self, capsys, monkeypatch):
        monkeypatch.setattr(
            "repro.validate.runner.build_core", _tampering_build_core(25)
        )
        code = main(list(CLEAN_ARGS))
        out = capsys.readouterr().out
        assert code == 1
        assert "FAIL" in out
        assert "pc" in out  # names the diverging field
        assert "VALIDATION FAILED" in out

    def test_divergence_does_not_abort_remaining_cells(
        self, capsys, monkeypatch
    ):
        calls = []
        real = build_core

        def flaky(workload, config):
            calls.append(config.name)
            if len(calls) == 1:  # only the first cell is corrupted
                return _tampering_build_core(25)(workload, config)
            return real(workload, config)

        monkeypatch.setattr("repro.validate.runner.build_core", flaky)
        code = main([
            "validate", "--benchmarks", "gcc", "--cores", "ooo,inorder",
            "--no-cache", "--fuzz", "0",
        ])
        out = capsys.readouterr().out
        assert code == 1
        assert "1/2 lockstep runs clean" in out

    def test_invariant_violation_mid_run_is_reported(
        self, capsys, monkeypatch
    ):
        real = build_core

        def corrupting(workload, config):
            core = real(workload, config)
            original = core.retire_stage
            state = {"armed": True}

            def retire(cycle):
                original(cycle)
                if state["armed"] and core._retired_count > 50:
                    state["armed"] = False
                    core._ready_unissued += 1

            core.retire_stage = retire
            return core

        monkeypatch.setattr("repro.validate.runner.build_core", corrupting)
        code = main(list(CLEAN_ARGS) + ["--invariants"])
        out = capsys.readouterr().out
        assert code == 1
        assert "_ready_unissued" in out
        assert "VALIDATION FAILED" in out


class TestFuzzPaths:
    def test_fuzz_defects_fail_the_run(self, capsys, monkeypatch):
        def dropping_translate(program, internal_limit=8):
            class _Identity:
                def __init__(self, translated):
                    self.translated = translated

            broken = copy.deepcopy(program)
            del broken.blocks[1].instructions[0]
            return _Identity(broken)

        def broken_fuzz(samples, seed):
            return fuzz_translator(
                samples=3, seed=seed, translate=dropping_translate
            )

        monkeypatch.setattr(
            "repro.validate.runner.fuzz_translator", broken_fuzz
        )
        code = main([
            "validate", "--benchmarks", "gcc", "--cores", "ooo",
            "--no-cache", "--fuzz", "3",
        ])
        out = capsys.readouterr().out
        assert code == 1
        assert "translator fuzzing: FAIL" in out
        # The lockstep sweep itself was clean; only the fuzzer failed.
        assert "1/1 lockstep runs clean" in out


class TestCleanPath:
    def test_clean_sweep_exits_zero(self, capsys):
        code = main(list(CLEAN_ARGS))
        out = capsys.readouterr().out
        assert code == 0
        assert "VALIDATION PASSED" in out
