"""Width-scaling sanity: the Figure 13 trends hold on individual benchmarks."""

import pytest

from repro.core import braidify
from repro.sim import (
    braid_config,
    ooo_config,
    prepare_workload,
    simulate,
)
from repro.workloads import build_program


@pytest.fixture(scope="module")
def workloads():
    program = build_program("crafty")
    compilation = braidify(program)
    return (
        prepare_workload(program, perfect=True, max_instructions=6000),
        prepare_workload(compilation.translated, perfect=True,
                         max_instructions=6000),
    )


class TestOutOfOrderScaling:
    def test_wider_is_monotonically_not_slower(self, workloads):
        plain, _ = workloads
        ipcs = [simulate(plain, ooo_config(width)).ipc for width in (4, 8, 16)]
        assert ipcs[0] <= ipcs[1] * 1.02
        assert ipcs[1] <= ipcs[2] * 1.02

    def test_ipc_never_exceeds_width(self, workloads):
        plain, _ = workloads
        for width in (4, 8, 16):
            assert simulate(plain, ooo_config(width)).ipc <= width


class TestBraidScaling:
    def test_braid_scales_with_width(self, workloads):
        _, braided = workloads
        narrow = simulate(braided, braid_config(4))
        wide = simulate(braided, braid_config(16))
        assert wide.ipc >= narrow.ipc

    def test_braid_config_width_derives_beus(self):
        assert braid_config(4).clusters == 4
        assert braid_config(16).clusters == 16

    def test_braid_competitive_at_every_width(self, workloads):
        plain, braided = workloads
        for width in (4, 8, 16):
            ooo = simulate(plain, ooo_config(width))
            braid = simulate(braided, braid_config(width))
            assert braid.ipc > 0.5 * ooo.ipc
