"""Unit tests for register files, bypass, FUs, busy bits, checkpoints, LSQ."""

import pytest

from repro.uarch.busybits import BusyBitVector
from repro.uarch.bypass import BypassNetwork
from repro.uarch.checkpoint import CheckpointManager
from repro.uarch.funit import FunctionalUnitPool
from repro.uarch.lsq import LoadStoreQueue
from repro.uarch.regfile import PortMeter, RegFileSpec, RegisterFileModel


class TestPortMeter:
    def test_grants_up_to_capacity(self):
        meter = PortMeter(2)
        assert meter.acquire(cycle=0)
        assert meter.acquire(cycle=0)
        assert not meter.acquire(cycle=0)

    def test_resets_each_cycle(self):
        meter = PortMeter(1)
        assert meter.acquire(cycle=0)
        assert meter.acquire(cycle=1)

    def test_all_or_nothing(self):
        meter = PortMeter(3)
        assert meter.acquire(cycle=0, count=2)
        assert not meter.acquire(cycle=0, count=2)
        assert meter.available(0) == 1

    def test_counts_denials(self):
        meter = PortMeter(1)
        meter.acquire(0)
        meter.acquire(0)
        assert meter.total_denials == 1

    def test_zero_ports_rejected(self):
        with pytest.raises(ValueError):
            PortMeter(0)


class TestRegisterFileModel:
    def test_entry_accounting(self):
        rf = RegFileSpec(entries=2, read_ports=4, write_ports=2).build()
        assert rf.allocate() and rf.allocate()
        assert not rf.allocate()
        assert rf.alloc_stalls == 1
        rf.release()
        assert rf.allocate()

    def test_release_underflow(self):
        rf = RegisterFileModel(4, 2, 1)
        with pytest.raises(RuntimeError):
            rf.release()


class TestBypass:
    def test_coverage_window(self):
        bypass = BypassNetwork(levels=3, width=8)
        assert bypass.covers(cycle=5, produce_cycle=5)
        assert bypass.covers(cycle=8, produce_cycle=5)
        assert not bypass.covers(cycle=9, produce_cycle=5)
        assert not bypass.covers(cycle=4, produce_cycle=5)

    def test_zero_levels_never_cover(self):
        assert not BypassNetwork(0, 8).covers(0, 0)

    def test_bandwidth_limit(self):
        bypass = BypassNetwork(levels=1, width=2)
        assert bypass.acquire(0, 2)
        assert not bypass.acquire(0, 1)
        assert bypass.acquire(1, 1)
        assert bypass.total_denials == 1


class TestFunctionalUnits:
    def test_issue_limit_per_cycle(self):
        pool = FunctionalUnitPool(2)
        assert pool.issue(0) and pool.issue(0)
        assert not pool.issue(0)
        assert pool.issue(1)  # fully pipelined

    def test_available(self):
        pool = FunctionalUnitPool(3)
        pool.issue(7)
        assert pool.available(7) == 2


class TestBusyBits:
    def test_set_and_clear(self):
        bits = BusyBitVector(8)
        assert bits.mark_busy(1)
        assert not bits.is_ready(1)
        bits.mark_ready(1)
        assert bits.is_ready(1)

    def test_capacity(self):
        bits = BusyBitVector(2)
        assert bits.mark_busy(1) and bits.mark_busy(2)
        assert not bits.mark_busy(3)
        assert bits.mark_busy(2)  # already tracked
        bits.mark_ready(1)
        assert bits.mark_busy(3)

    def test_snapshot(self):
        bits = BusyBitVector(4)
        bits.mark_busy(9)
        assert bits.snapshot() == {9: True}


class TestCheckpoints:
    def test_capacity_and_stalls(self):
        manager = CheckpointManager(capacity=2, state_words_per_checkpoint=64)
        assert manager.take(1) and manager.take(2)
        assert not manager.take(3)
        assert manager.stalls == 1

    def test_release_older(self):
        manager = CheckpointManager(4, 64)
        manager.take(1)
        manager.take(5)
        manager.release_older_than(1)
        assert manager.occupancy == 1

    def test_restore_squashes_younger(self):
        manager = CheckpointManager(4, 64)
        for seq in (1, 5, 9):
            manager.take(seq)
        checkpoint = manager.restore(5)
        assert checkpoint is not None and checkpoint.seq == 5
        assert manager.occupancy == 1  # only seq 1 survives

    def test_state_accounting(self):
        manager = CheckpointManager(4, 10)
        manager.take(1)
        manager.take(2)
        assert manager.total_state_words() == 20


class TestLSQ:
    def test_independent_load_uses_cache_latency(self):
        lsq = LoadStoreQueue()
        assert lsq.load_latency(seq=5, word=0x100, cycle=0, cache_latency=9) == 9

    def test_conflicting_load_waits_for_store(self):
        lsq = LoadStoreQueue(forward_latency=3)
        lsq.store_dispatched(seq=1, word=0x100)
        assert lsq.load_latency(seq=2, word=0x100, cycle=0, cache_latency=9) is None
        lsq.store_executed(seq=1, cycle=4)
        assert lsq.load_latency(seq=2, word=0x100, cycle=3, cache_latency=9) is None
        assert lsq.load_latency(seq=2, word=0x100, cycle=4, cache_latency=9) == 3

    def test_only_older_stores_conflict(self):
        lsq = LoadStoreQueue()
        lsq.store_dispatched(seq=10, word=0x100)
        assert lsq.load_latency(seq=5, word=0x100, cycle=0, cache_latency=9) == 9

    def test_youngest_older_store_wins(self):
        lsq = LoadStoreQueue()
        lsq.store_dispatched(seq=1, word=0x100)
        lsq.store_dispatched(seq=3, word=0x100)
        conflict = lsq.load_conflict(seq=5, word=0x100)
        assert conflict.seq == 3

    def test_retired_store_no_longer_conflicts(self):
        lsq = LoadStoreQueue()
        lsq.store_dispatched(seq=1, word=0x100)
        lsq.store_retired(seq=1)
        assert lsq.load_latency(seq=2, word=0x100, cycle=0, cache_latency=9) == 9
        assert lsq.occupancy == 0

    def test_forward_statistics(self):
        lsq = LoadStoreQueue()
        lsq.store_dispatched(seq=1, word=0x100)
        lsq.store_executed(seq=1, cycle=0)
        lsq.load_latency(seq=2, word=0x100, cycle=1, cache_latency=9)
        assert lsq.stats.forwards == 1
