"""End-to-end observability: watchdog heartbeats, CLI, run-log tolerance.

The watchdog half pins the hung-vs-slow contract: a worker that misses
its wall-clock deadline but is *demonstrably progressing* (fresh
heartbeat, advancing counters) gets its deadline extended, while a
silent or stalled worker is killed with the heartbeat evidence in the
error text.  The CLI half drives ``status --json``, ``status --follow``,
``events``, and ``metrics`` through ``main()`` against a really-served
store.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.harness.parallel import run_tasks_hardened
from repro.obs.metrics import parse_prometheus
from repro.obs.runlog import RunLog
from repro.service import JobStore
from repro.service.cli import main
from repro.service.telemetry import (
    ProgressPublisher,
    progress_probe,
    read_progress,
)

from tests.test_parallel_hardened import needs_fork
from tests.test_service_supervisor import batch_config, submit


# Worker functions live at module level so the fork workers can reach
# them; heartbeat state crosses processes through the progress dir.

def _slow_but_beating(payload):
    """Outlives the deadline, but heartbeats with advancing progress."""
    directory, task_id, duration = payload
    publisher = ProgressPublisher(Path(directory), task_id, interval=0.0)
    started = time.monotonic()
    step = 0
    while time.monotonic() - started < duration:
        step += 1
        publisher.publish(step, 1000, step, force=True)
        time.sleep(0.02)
    return "finished"


def _beating_but_stalled(payload):
    """Heartbeats forever without ever advancing — wedged, not slow."""
    directory, task_id = payload
    publisher = ProgressPublisher(Path(directory), task_id, interval=0.0)
    while True:
        publisher.publish(5, 1000, 5, force=True)
        time.sleep(0.05)


def _silent_hang(payload):
    time.sleep(600)


def _beat_then_die(payload):
    directory, task_id = payload
    publisher = ProgressPublisher(Path(directory), task_id, interval=0.0)
    for step in range(50):
        publisher.publish(step * 10, 1000, step * 7, force=True)
    os._exit(9)


@needs_fork
class TestWatchdogHeartbeats:
    def test_slow_but_progressing_survives_the_deadline(self, tmp_path):
        outcomes = run_tasks_hardened(
            _slow_but_beating,
            [("slow", (str(tmp_path), "slow", 1.2))],
            jobs=2, timeout=0.4, max_attempts=1,
            progress_probe=progress_probe(tmp_path),
            hang_grace=5.0, extension_cap=20.0,
        )
        outcome = outcomes[0]
        assert outcome.ok and outcome.result == "finished"

    def test_stalled_heartbeat_is_still_killed(self, tmp_path):
        outcomes = run_tasks_hardened(
            _beating_but_stalled,
            [("stalled", (str(tmp_path), "stalled"))],
            jobs=2, timeout=0.4, max_attempts=1,
            progress_probe=progress_probe(tmp_path),
            hang_grace=5.0, extension_cap=20.0,
        )
        outcome = outcomes[0]
        assert outcome.status == "quarantined"
        assert "wall-clock timeout" in outcome.error
        # The kill message carries the heartbeat evidence.
        assert "retired 5/1000 instructions" in outcome.error

    def test_silent_hang_reports_no_heartbeat(self, tmp_path):
        outcomes = run_tasks_hardened(
            _silent_hang, [("hung", None)],
            jobs=2, timeout=0.5, max_attempts=1,
            progress_probe=progress_probe(tmp_path),
            hang_grace=2.0,
        )
        outcome = outcomes[0]
        assert outcome.status == "quarantined"
        assert "wall-clock timeout" in outcome.error
        assert "no heartbeat ever published" in outcome.error

    def test_extension_cap_bounds_total_wall_clock(self, tmp_path):
        # cap 1.0 means no extension budget at all: even a healthy
        # heartbeat cannot stretch the deadline.
        started = time.monotonic()
        outcomes = run_tasks_hardened(
            _slow_but_beating,
            [("slow", (str(tmp_path), "slow", 30.0))],
            jobs=2, timeout=0.4, max_attempts=1,
            progress_probe=progress_probe(tmp_path),
            hang_grace=5.0, extension_cap=1.0,
        )
        assert time.monotonic() - started < 10.0
        assert "wall-clock timeout" in outcomes[0].error

    def test_heartbeat_file_survives_worker_sigkill(self, tmp_path):
        """Atomic-rename publication: a killed worker leaves the last
        complete heartbeat, never a torn one."""
        outcomes = run_tasks_hardened(
            _beat_then_die, [("doomed", (str(tmp_path), "doomed"))],
            jobs=2, timeout=30.0, max_attempts=1,
        )
        assert "worker died" in outcomes[0].error
        beat = read_progress(tmp_path, "doomed")
        assert beat is not None, "heartbeat file torn or missing"
        assert beat["instructions"] == 490
        assert beat["job"] == "doomed"


class TestServeHeartbeats:
    def test_serve_leaves_final_heartbeat_and_restores_env(self, tmp_path):
        before = os.environ.get("REPRO_PROGRESS_DIR")
        store = JobStore(tmp_path / "store")
        job = submit(store, "simulate",
                     {"benchmark": "gcc", "core": "braid"})
        from repro.service.supervisor import serve

        serve(store, batch_config(heartbeat=0.01))
        beat = store.progress(job)
        assert beat is not None
        assert beat["instructions"] == beat["instructions_total"] > 0
        assert os.environ.get("REPRO_PROGRESS_DIR") == before
        store.close()

    def test_heartbeat_zero_disables_progress_files(self, tmp_path):
        store = JobStore(tmp_path / "store")
        job = submit(store, "simulate",
                     {"benchmark": "gcc", "core": "braid"})
        from repro.service.supervisor import serve

        serve(store, batch_config(heartbeat=0.0))
        assert store.progress(job) is None
        # Metrics and health still publish: observability stays on.
        assert store.metrics_path.exists()
        assert store.health_path.exists()
        store.close()


@pytest.fixture
def served_store(tmp_path):
    """A store with one completed job and one permanent failure."""
    store = JobStore(tmp_path / "store")
    done = submit(store, "simulate", {"benchmark": "gcc", "core": "braid"})
    # Bypasses normalize_params: the executor hits a missing sizing key,
    # a deterministic task bug, so the job fails permanently.
    from repro.service import JobRequest

    bad, _ = store.submit(JobRequest(
        kind="simulate", params={"benchmark": "gcc", "core": "braid"},
    ))
    from repro.service.supervisor import serve

    serve(store, batch_config(heartbeat=0.01))
    store.close()
    return {"root": str(tmp_path / "store"), "done": done, "bad": bad}


class TestCli:
    def test_status_json_document(self, served_store, capsys):
        assert main(["status", "--store", served_store["root"],
                     "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["counters"]["completed"] == 1
        assert doc["counters"]["failed"] == 1
        assert doc["jobs"][served_store["done"]]["status"] == "done"
        assert doc["health"]["round"] == 1

    def test_status_job_json_includes_timeline_and_result(
            self, served_store, capsys):
        assert main(["status", "--store", served_store["root"],
                     "--job", served_store["done"], "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["status"] == "done"
        assert doc["timeline"]["queue_wait"] >= 0.0
        assert doc["timeline"]["run_time"] > 0.0
        assert doc["result"]["cycles"] > 0

    def test_events_timeline_for_one_job(self, served_store, capsys):
        assert main(["events", served_store["done"],
                     "--store", served_store["root"]]) == 0
        out = capsys.readouterr().out
        assert "submit" in out and "start" in out and "done" in out
        assert "queue wait:" in out
        assert "run time:" in out

    def test_events_json_whole_stream(self, served_store, capsys):
        assert main(["events", "--store", served_store["root"],
                     "--json"]) == 0
        events = json.loads(capsys.readouterr().out)
        names = [record["event"] for record in events]
        assert names.count("submit") == 2
        assert "drain" in names
        assert all("ts" in record for record in events)

    def test_events_unknown_job_errors(self, served_store):
        with pytest.raises(SystemExit):
            main(["events", "j999999-ffffffff",
                  "--store", served_store["root"]])

    def test_metrics_exposition_parses(self, served_store, capsys):
        assert main(["metrics", "--store", served_store["root"]]) == 0
        samples = parse_prometheus(capsys.readouterr().out)
        assert samples["repro_service_completed"] == 1.0
        assert samples['repro_run_ms{stat="weight"}'] == 2.0

    def test_metrics_json_includes_health(self, served_store, capsys):
        assert main(["metrics", "--store", served_store["root"],
                     "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["metrics"]["repro_service_completed"] == 1.0
        assert doc["health"]["counters"]["completed"] == 1
        assert doc["source"].endswith("metrics.prom")

    def test_metrics_renders_live_from_cold_store(self, tmp_path, capsys):
        store = JobStore(tmp_path / "cold")
        submit(store, "simulate", {"benchmark": "gcc", "core": "braid"})
        store.close()
        assert main(["metrics", "--store", str(tmp_path / "cold"),
                     "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["source"] == "rendered"
        assert doc["metrics"]["repro_service_submitted"] == 1.0

    def test_status_follow_bounded_run(self, served_store, capsys):
        assert main(["status", "--store", served_store["root"],
                     "--follow", "--follow-for", "0.05",
                     "--interval", "0.01"]) == 0
        out = capsys.readouterr().out
        assert served_store["done"] in out
        assert "1 done" in out and "1 failed" in out
        assert "supervisor:" in out


class TestRunLogTolerance:
    def test_torn_and_damaged_lines_skipped_and_counted(self, tmp_path):
        log = RunLog(tmp_path / "runlog.jsonl")
        log.log(event="one")
        log.log(event="two")
        with open(log.path, "ab") as handle:
            handle.write(b'{"event": "torn-by-sigki')
        events = log.read()
        assert [event["event"] for event in events] == ["one", "two"]
        assert log.skipped == 1

    def test_raw_byte_damage_does_not_break_read(self, tmp_path):
        log = RunLog(tmp_path / "runlog.jsonl")
        log.log(event="one")
        with open(log.path, "ab") as handle:
            handle.write(b"\x00\xff\xfe broken bytes\n")
        log.log(event="two")
        events = log.read()
        assert [event["event"] for event in events] == ["one", "two"]
        assert log.skipped == 1

    def test_skipped_resets_per_read(self, tmp_path):
        log = RunLog(tmp_path / "runlog.jsonl")
        log.log(event="one")
        with open(log.path, "ab") as handle:
            handle.write(b"not json\n")
        log.read()
        log.read()
        assert log.skipped == 1

    def test_non_dict_lines_counted(self, tmp_path):
        log = RunLog(tmp_path / "runlog.jsonl")
        with open(tmp_path / "runlog.jsonl", "w", encoding="utf-8") as handle:
            handle.write("[1, 2]\n42\n")
        assert log.read() == []
        assert log.skipped == 2
