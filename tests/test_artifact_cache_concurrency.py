"""ArtifactCache under concurrency and corruption (repro.harness.artifacts).

The service uses one cache directory as a shared result store, so two
properties matter beyond the single-process happy path: LRU eviction
racing a writer republishing the same slot must never destroy the fresh
entry, and a corrupt entry must be quarantined (inspectable, bounded)
rather than silently deleted.  The multi-process stress test drives
both from many writers at once.
"""

from __future__ import annotations

import multiprocessing
import os
import time

import pytest

from repro.harness.artifacts import _QUARANTINE_KEEP, ArtifactCache


def _has_fork() -> bool:
    try:
        multiprocessing.get_context("fork")
    except ValueError:
        return False
    return True


needs_fork = pytest.mark.skipif(
    not _has_fork(), reason="requires the fork start method"
)


def key_for(index: int) -> tuple:
    return ("stress", 1, index)


def _hammer(args):
    """One worker: interleaved puts, gets, and evictions."""
    root, worker, rounds, limit = args
    cache = ArtifactCache(root=root, enabled=True, limit_bytes=limit)
    for i in range(rounds):
        index = (worker * rounds + i) % 8
        cache.put(key_for(index), {"index": index, "payload": "x" * 2048})
        value = cache.get(key_for(index))
        if value is not None and value["index"] != index:
            return f"worker {worker}: wrong payload for slot {index}"
        cache.enforce_limit(limit)
    return None


class TestEvictionRace:
    def test_eviction_reverifies_mtime_before_unlink(
        self, tmp_path, monkeypatch
    ):
        cache = ArtifactCache(root=tmp_path, enabled=True)
        cache.put(key_for(0), "old-cold")
        cache.put(key_for(1), "hot")
        old = time.time() - 3600
        os.utime(cache.path_for(key_for(0)), (old, old))
        stale_scan = cache.entries()
        # Between the scan and the unlink, a concurrent writer
        # republishes the cold slot (fresh mtime via os.replace).
        cache.put(key_for(0), "republished-fresh")
        monkeypatch.setattr(cache, "entries", lambda: stale_scan)
        evicted = cache.enforce_limit(limit_bytes=1)
        # The republished entry was skipped, not destroyed.
        assert cache.get(key_for(0)) == "republished-fresh"
        assert evicted >= 1  # the genuinely-cold entry still went
        assert cache.evictions == evicted

    def test_eviction_tolerates_entries_already_removed(
        self, tmp_path, monkeypatch
    ):
        cache = ArtifactCache(root=tmp_path, enabled=True)
        cache.put(key_for(0), "a")
        cache.put(key_for(1), "b")
        stale_scan = cache.entries()
        cache.path_for(key_for(0)).unlink()  # concurrent evictor won
        monkeypatch.setattr(cache, "entries", lambda: stale_scan)
        evicted = cache.enforce_limit(limit_bytes=1)
        assert evicted >= 0  # no exception is the contract

    def test_eviction_is_lru_by_touch(self, tmp_path):
        cache = ArtifactCache(root=tmp_path, enabled=True)
        for index in range(3):
            cache.put(key_for(index), "v" * 512)
            stamp = time.time() - 1000 + index
            os.utime(cache.path_for(key_for(index)), (stamp, stamp))
        cache.get(key_for(0))  # touch: now the hottest
        entry_size = cache.path_for(key_for(0)).stat().st_size
        cache.enforce_limit(limit_bytes=entry_size)
        assert cache.get(key_for(0)) is not None
        assert cache.get(key_for(1)) is None


class TestQuarantine:
    def _corrupt(self, cache, index):
        path = cache.path_for(key_for(index))
        path.write_bytes(b"\x80\x04 definitely not a pickle")
        return path

    def test_corrupt_entry_is_quarantined_not_deleted(self, tmp_path):
        cache = ArtifactCache(root=tmp_path, enabled=True)
        cache.put(key_for(0), "fine")
        path = self._corrupt(cache, 0)
        assert cache.get(key_for(0)) is None
        assert not path.exists()
        moved = tmp_path / "quarantine" / path.name
        assert moved.exists()  # bytes kept for post-mortem
        assert cache.corruptions == 1 and cache.quarantined == 1
        # The slot healed: a re-put then reads back.
        cache.put(key_for(0), "healed")
        assert cache.get(key_for(0)) == "healed"

    def test_quarantine_directory_is_bounded(self, tmp_path):
        cache = ArtifactCache(root=tmp_path, enabled=True)
        for index in range(_QUARANTINE_KEEP + 5):
            cache.put(key_for(index), "v")
            self._corrupt(cache, index)
            assert cache.get(key_for(index)) is None
        kept = list((tmp_path / "quarantine").glob("*.pkl"))
        assert len(kept) <= _QUARANTINE_KEEP

    def test_quarantined_entries_do_not_count_as_cache_entries(
        self, tmp_path
    ):
        cache = ArtifactCache(root=tmp_path, enabled=True)
        cache.put(key_for(0), "fine")
        self._corrupt(cache, 0)
        cache.get(key_for(0))
        stats = cache.stats()
        assert stats["entries"] == 0
        assert stats["quarantined"] == 1 and stats["evictions"] == 0

    def test_stats_and_metrics_expose_the_counters(self, tmp_path):
        from repro.obs.metrics import MetricsRegistry

        cache = ArtifactCache(root=tmp_path, enabled=True)
        cache.put(key_for(0), "v")
        cache.get(key_for(0))
        cache.get(key_for(1))
        registry = MetricsRegistry()
        cache.publish_metrics(registry, prefix="cache")
        assert registry.counters["cache.hits"] == 1
        assert registry.counters["cache.misses"] == 1
        for name in ("corruptions", "evictions", "quarantined",
                     "tmp_swept"):
            assert registry.counters[f"cache.{name}"] == 0


@needs_fork
class TestMultiProcessStress:
    def test_concurrent_put_get_evict_never_corrupts(self, tmp_path):
        workers = 4
        rounds = 40
        limit = 8 * 1024  # small enough that eviction fires constantly
        ctx = multiprocessing.get_context("fork")
        with ctx.Pool(workers) as pool:
            failures = pool.map(
                _hammer,
                [(tmp_path, worker, rounds, limit)
                 for worker in range(workers)],
            )
        assert [f for f in failures if f] == []
        # Whatever survived the stampede still loads cleanly.
        survivor = ArtifactCache(root=tmp_path, enabled=True)
        for index in range(8):
            value = survivor.get(key_for(index))
            assert value is None or value["index"] == index
        assert survivor.corruptions == 0
