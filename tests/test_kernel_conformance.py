"""Kernel-contract conformance: every registered paradigm, one suite.

The composable pipeline kernel (``TimingCore`` + the core registry)
promises that a new paradigm is one component file plus one
``register_core`` call — validation, fault injection, observability, and
both timing kernels apply with zero per-layer edits.  This suite *is*
that promise, executable: every test parametrizes over
:func:`repro.sim.registry.core_registry`, so a core that registers is
automatically held to

* ticked-vs-event kernel bit-identity (plain and observer-attached),
* resumable drain / fast-forward / re-run window equivalence,
* the lockstep architectural oracle (exact and sampled),
* a smoke fault injection on every structure it declares, classified
  into the four-way outcome taxonomy,
* the analysis-side declarations (storage bits, comparator and wakeup
  formulas) agreeing with its declared fault structures,

plus the loud-failure contracts of the registry and the injector table,
and the ``IntervalConfig`` spec round-trip edge cases.
"""

from __future__ import annotations

import dataclasses
import math
import random

import pytest

from repro.analysis.complexity import STATE_BIT_WEIGHTS, storage_bits
from repro.faults import (
    FaultOutcome,
    FaultSession,
    InjectorError,
    injectors_for,
    run_injection,
    structures_for,
)
from repro.harness.artifacts import ArtifactCache
from repro.harness.context import ExperimentContext
from repro.obs.observer import Observer
from repro.sim.config import CoreKind
from repro.sim.core import TimingCore
from repro.sim.interval import IntervalConfig
from repro.sim.registry import (
    CoreDescriptor,
    CoreRegistryError,
    core_registry,
    descriptor_for,
    descriptor_for_key,
    register_core,
)
from repro.sim.run import build_core, simulate
from repro.sim.sampling import SamplingConfig
from repro.validate.runner import run_validation

REGISTRY = core_registry()
CORE_KEYS = list(REGISTRY)

MAX_CYCLES = 1_000_000


@pytest.fixture(scope="module")
def ctx():
    return ExperimentContext(
        benchmarks=("gcc",),
        max_instructions=8_000,
        jobs=1,
        cache=ArtifactCache(enabled=False),
    )


def _workload(ctx, descriptor):
    return ctx.workload("gcc", braided=descriptor.braided)


def fingerprint(result):
    return (
        result.cycles,
        result.instructions,
        result.issued,
        dataclasses.asdict(result.stalls),
        sorted(result.extra.items()),
    )


# ---------------------------------------------------------------------------
# registry contract
# ---------------------------------------------------------------------------
class TestRegistryContract:
    def test_all_builtin_paradigms_registered(self):
        assert CORE_KEYS == ["ooo", "inorder", "depsteer", "braid", "blockooo"]
        assert {d.kind for d in REGISTRY.values()} == set(CoreKind)

    def test_descriptor_lookups_agree(self):
        for key, descriptor in REGISTRY.items():
            assert descriptor_for(descriptor.kind) is descriptor
            assert descriptor_for_key(key) is descriptor

    def test_unknown_key_fails_loudly(self):
        with pytest.raises(CoreRegistryError, match="vliw"):
            descriptor_for_key("vliw")

    def test_duplicate_kind_rejected(self):
        class Impostor(TimingCore):
            pass

        original = REGISTRY["ooo"]
        with pytest.raises(CoreRegistryError, match="already registered"):
            register_core(CoreDescriptor(
                kind=original.kind,
                key="ooo2",
                core_class=Impostor,
                config_factory=original.config_factory,
            ))
        # the failed registration must not have clobbered the real one
        assert descriptor_for(original.kind) is original

    def test_structure_without_injector_rejected(self, monkeypatch):
        """The silent-AVF-zero guard: declaring a fault structure with no
        matching injector must fail at registration, not classify
        everything as masked at campaign time."""
        import repro.sim.registry as registry_module

        original = REGISTRY["ooo"]

        class Unwired(TimingCore):
            fault_structures = ("scheduler", "magic")
            fault_injectors = dict(original.core_class.fault_injectors)

        pruned = dict(registry_module._REGISTRY)
        del pruned[original.kind]
        monkeypatch.setattr(registry_module, "_REGISTRY", pruned)
        with pytest.raises(CoreRegistryError, match="magic"):
            register_core(CoreDescriptor(
                kind=original.kind,
                key="unwired",
                core_class=Unwired,
                config_factory=original.config_factory,
            ))

    def test_config_factory_matches_kind(self):
        for key, descriptor in REGISTRY.items():
            config = descriptor.config_factory(8)
            assert config.kind is descriptor.kind, key


# ---------------------------------------------------------------------------
# analysis-side declarations
# ---------------------------------------------------------------------------
class TestDeclarations:
    @pytest.mark.parametrize("key", CORE_KEYS)
    def test_state_bits_cover_declared_structures(self, key):
        descriptor = REGISTRY[key]
        config = descriptor.config_factory(8)
        paradigm_bits = descriptor.core_class.fault_state_bits(
            config, STATE_BIT_WEIGHTS
        )
        assert set(paradigm_bits) == set(descriptor.core_class.fault_structures)
        assert all(bits > 0 for bits in paradigm_bits.values())

    @pytest.mark.parametrize("key", CORE_KEYS)
    def test_complexity_formulas_are_sane(self, key):
        descriptor = REGISTRY[key]
        config = descriptor.config_factory(8)
        assert descriptor.core_class.scheduler_comparators(config) >= 0
        assert descriptor.core_class.wakeup_energy_entries(config) > 0

    @pytest.mark.parametrize("key", CORE_KEYS)
    def test_every_declared_structure_is_injectable_and_weighted(self, key):
        descriptor = REGISTRY[key]
        config = descriptor.config_factory(8)
        injectors = injectors_for(config.kind)
        bits = storage_bits(config)
        for structure in structures_for(config.kind):
            assert structure in injectors, (key, structure)
            assert bits.get(structure, 0) > 0, (key, structure)


# ---------------------------------------------------------------------------
# kernel equivalence: the event kernel is a pure speed layer
# ---------------------------------------------------------------------------
class TestKernelEquivalence:
    @pytest.mark.parametrize("key", CORE_KEYS)
    def test_event_kernel_matches_ticked(self, key, ctx, monkeypatch):
        descriptor = REGISTRY[key]
        workload = _workload(ctx, descriptor)
        config = descriptor.config_factory(8)
        fast = fingerprint(build_core(workload, config).run())
        with monkeypatch.context() as patched:
            patched.setattr(TimingCore, "event_kernel", False)
            slow = fingerprint(build_core(workload, config).run())
        assert fast == slow, f"event kernel diverged on {key}"

    @pytest.mark.parametrize("key", CORE_KEYS)
    def test_hooked_twin_matches_plain(self, key, ctx):
        """Attaching an observer must not change a single counter."""
        descriptor = REGISTRY[key]
        workload = _workload(ctx, descriptor)
        config = descriptor.config_factory(8)
        plain = fingerprint(build_core(workload, config).run())
        core = build_core(workload, config)
        observer = Observer(cpi=True, metrics=True)
        observer.attach(core)
        result = core.run()
        observer.finalize(result)
        assert fingerprint(result) == plain, f"observer perturbed {key}"
        assert result.cpi_stack is not None

    @pytest.mark.parametrize("key", CORE_KEYS)
    def test_resume_windows_match_ticked(self, key, ctx, monkeypatch):
        """Drain / fast-forward / re-run seams agree across kernels."""
        descriptor = REGISTRY[key]
        workload = _workload(ctx, descriptor)
        config = descriptor.config_factory(8)
        total = len(workload.trace)
        mid = total // 2

        def windowed_run():
            core = build_core(workload, config)
            core._fetch_limit = 200
            cycle = core._run_until(200, 0, MAX_CYCLES)
            cycle = core.drain_in_flight(cycle)
            core.fast_forward(mid, cycle)
            origin = core._retired_count - mid
            core._fetch_limit = total
            cycle = core._run_until(
                origin + min(total, mid + 400), cycle, MAX_CYCLES
            )
            cycle = core.drain_in_flight(cycle)
            return (
                cycle,
                core._retired_count - origin,
                dataclasses.asdict(core.stalls),
            )

        fast = windowed_run()
        with monkeypatch.context() as patched:
            patched.setattr(TimingCore, "event_kernel", False)
            slow = windowed_run()
        assert fast == slow, f"windowed kernel diverged on {key}"

    @pytest.mark.parametrize("key", CORE_KEYS)
    def test_certified_idleness_entry_point(self, key, ctx):
        """``_skip_idle`` on a drained core never skips past real work."""
        descriptor = REGISTRY[key]
        workload = _workload(ctx, descriptor)
        core = build_core(workload, descriptor.config_factory(8))
        result = core.run()
        # fully drained: nothing in flight, so any horizon is certified
        cycle = result.cycles + 1
        assert core._skip_idle(cycle) >= cycle


# ---------------------------------------------------------------------------
# lockstep oracle and sampling
# ---------------------------------------------------------------------------
class TestOracleConformance:
    @pytest.mark.parametrize("key", CORE_KEYS)
    def test_lockstep_validation_passes(self, key, ctx):
        report = run_validation(
            ctx, ("gcc",), cores=(key,),
            sampling=SamplingConfig(stride=4), fuzz_samples=0,
        )
        assert report.passed, report.render()
        assert len(report.outcomes) == 2  # exact + sampled


# ---------------------------------------------------------------------------
# fault-injection conformance
# ---------------------------------------------------------------------------
class TestFaultConformance:
    @pytest.mark.parametrize("key", CORE_KEYS)
    def test_smoke_injection_every_declared_structure(self, key, ctx):
        descriptor = REGISTRY[key]
        workload = _workload(ctx, descriptor)
        config = descriptor.config_factory(8)
        baseline = simulate(workload, config).cycles
        for structure in structures_for(config.kind):
            result = run_injection(workload, config, structure, 7, baseline)
            assert isinstance(result.outcome, FaultOutcome), (key, structure)

    @pytest.mark.parametrize("key", CORE_KEYS)
    def test_foreign_structure_rejected_at_attach(self, key, ctx):
        descriptor = REGISTRY[key]
        config = descriptor.config_factory(8)
        own = set(structures_for(config.kind))
        foreign = [
            structure
            for other in REGISTRY.values()
            for structure in other.core_class.fault_structures
            if structure not in own
        ]
        if not foreign:
            pytest.skip(f"{key} declares every known structure")
        workload = _workload(ctx, descriptor)
        core = build_core(workload, config)
        session = FaultSession(foreign[0], 0, random.Random(0))
        with pytest.raises(InjectorError, match="does not exist"):
            session.attach(core)


# ---------------------------------------------------------------------------
# IntervalConfig spec round-trip
# ---------------------------------------------------------------------------
class TestIntervalSpec:
    def test_round_trip(self):
        config = IntervalConfig(
            windows=8, window=250, warmup=64, seed=3, error_bound_pct=12.5
        )
        assert IntervalConfig.parse(config.spec()) == config

    def test_whitespace_tolerated(self):
        config = IntervalConfig.parse("  windows = 4 ,  window = 100  ")
        assert config.windows == 4 and config.window == 100

    def test_unknown_key_names_the_key(self):
        with pytest.raises(ValueError, match="unknown key 'stride'"):
            IntervalConfig.parse("windows=4,stride=16")

    def test_duplicate_key_rejected(self):
        with pytest.raises(ValueError, match="duplicate key 'windows'"):
            IntervalConfig.parse("windows=4,windows=8")

    @pytest.mark.parametrize("raw", ("inf", "nan", "1e400", "-1", "0"))
    def test_non_finite_or_non_positive_bound_rejected(self, raw):
        with pytest.raises(ValueError, match="error bound"):
            IntervalConfig.parse(f"bound={raw}")

    @pytest.mark.parametrize(
        "spec, field",
        (
            ("windows=1", "windows"),
            ("window=0", "window"),
            ("warmup=-1", "warmup"),
            ("seed=-2", "seed"),
        ),
    )
    def test_out_of_range_values_name_the_field(self, spec, field):
        with pytest.raises(ValueError, match=field):
            IntervalConfig.parse(spec)

    def test_non_numeric_value_names_the_field(self):
        with pytest.raises(ValueError, match="windows"):
            IntervalConfig.parse("windows=lots")

    @pytest.mark.parametrize("text", ("", "default", "on", "1"))
    def test_default_forms(self, text):
        assert IntervalConfig.parse(text) == IntervalConfig()
