"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core import braidify
from repro.harness import ExperimentContext
from repro.isa import assemble
from repro.workloads import build_program, kernel


@pytest.fixture(scope="session")
def gcc_life():
    """The paper's Figure 2 kernel."""
    return kernel("gcc_life")


@pytest.fixture(scope="session")
def gcc_life_compiled(gcc_life):
    return braidify(gcc_life)


@pytest.fixture(scope="session")
def small_program():
    """A tiny two-block loop used by unit tests."""
    return assemble(
        """
        .program tiny
        .block ENTRY
            addq r31, #5, r1
            addq r31, #0, r2
        .block LOOP
            addq r2, r1, r3
            stq  r3, 0(r1)
            addqi r2, #1, r2
            cmplt r2, r1, r4
            bne  r4, LOOP
        .block DONE
            nop
        """
    )


@pytest.fixture(scope="session")
def gcc_program():
    """The synthetic gcc benchmark (small but full-featured)."""
    return build_program("gcc")


@pytest.fixture(scope="session")
def quick_context():
    """Experiment context over two fast benchmarks (hermetic: in-process,
    no persistent artifact cache)."""
    from repro.harness import ArtifactCache

    return ExperimentContext(
        benchmarks=("gcc", "mcf"),
        max_instructions=20_000,
        jobs=1,
        cache=ArtifactCache(enabled=False),
    )
