"""Unified retry policy (repro.service.retry).

The policy is shared by the hardened task runner and the service
supervisor, so its classification and backoff contracts are pinned
here once: which failures are worth retrying, that backoff grows
exponentially under a cap, and that jitter is deterministic (same
task, same attempt, same seed -> same delay — bit-identical reruns
are the chaos harness's whole proof strategy).
"""

from __future__ import annotations

import pytest

from repro.service.retry import (
    PERMANENT,
    RETRYABLE,
    RetryPolicy,
    classify_exception,
    classify_failure,
)


class TestClassification:
    @pytest.mark.parametrize("message", [
        "worker died mid-task (exit code -9)",
        "wall-clock timeout after 120.0s",
        "result delivery failed: inbox unreachable",
        "result store write failed for job j000001 under /tmp/x",
        "OSError: [Errno 28] No space left on device",
        "TimeoutError: deadline exceeded",
        "BrokenProcessPool: a worker terminated abruptly",
    ])
    def test_infrastructure_failures_are_retryable(self, message):
        assert classify_failure(message) == RETRYABLE

    @pytest.mark.parametrize("message", [
        "ValueError: boom on 1",
        "KeyError: 'width'",
        "ServiceError: unknown job kind 'x'",
        "ZeroDivisionError: division by zero",
        "something with no exception prefix at all",
    ])
    def test_task_errors_are_permanent(self, message):
        assert classify_failure(message) == PERMANENT

    def test_exception_classification_walks_the_mro(self):
        # FileNotFoundError subclasses OSError: retryable via the MRO
        # even though its own name is not in the table.
        assert classify_exception(FileNotFoundError("gone")) == RETRYABLE
        assert classify_exception(ValueError("bad")) == PERMANENT

    def test_policy_should_retry_respects_budget(self):
        policy = RetryPolicy(max_attempts=3)
        infra = "worker died mid-task"
        assert policy.should_retry(infra, attempt=1)
        assert policy.should_retry(infra, attempt=2)
        assert not policy.should_retry(infra, attempt=3)
        assert not policy.should_retry("ValueError: nope", attempt=1)


class TestBackoff:
    def test_delay_doubles_under_the_cap(self):
        policy = RetryPolicy(backoff=1.0, backoff_cap=100.0, seed=0)
        d1 = policy.delay("t", 1)
        d2 = policy.delay("t", 2)
        d3 = policy.delay("t", 3)
        # Jitter spans [0.5x, 1.5x), so consecutive delays cannot be
        # compared directly — compare against the jitter-free base.
        assert 0.5 <= d1 < 1.5
        assert 1.0 <= d2 < 3.0
        assert 2.0 <= d3 < 6.0

    def test_delay_is_capped(self):
        policy = RetryPolicy(backoff=1.0, backoff_cap=2.0)
        assert policy.delay("t", 10) <= 2.0

    def test_jitter_is_deterministic_and_process_salt_free(self):
        policy = RetryPolicy(seed=7)
        assert policy.delay("task-a", 2) == policy.delay("task-a", 2)
        # Different tasks/attempts de-synchronize (thundering herd).
        assert policy.delay("task-a", 2) != policy.delay("task-b", 2)
        assert policy.jitter_fraction("x", 1) != policy.jitter_fraction(
            "x", 2
        )

    def test_seed_changes_the_schedule(self):
        assert RetryPolicy(seed=0).delay("t", 1) != RetryPolicy(
            seed=1
        ).delay("t", 1)

    @pytest.mark.parametrize("kwargs", [
        {"max_attempts": 0},
        {"backoff": -1.0},
        {"backoff_cap": -0.5},
        {"deadline": 0.0},
    ])
    def test_invalid_policies_are_rejected(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)
