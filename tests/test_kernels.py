"""Semantic tests for the hand-written kernels (the programs other tests
parametrize over must themselves compute the right answers)."""

import pytest

from repro.core import braidify
from repro.sim import execute, observably_equivalent
from repro.workloads import KERNEL_NAMES, all_kernels, kernel


class TestSuiteSurface:
    def test_kernel_names_cover_sources(self):
        assert set(KERNEL_NAMES) == {
            "gcc_life", "daxpy", "dot_product", "pointer_chase", "checksum",
            "matmul", "stencil", "histogram",
        }

    def test_all_kernels_builds_everything(self):
        kernels = all_kernels()
        assert set(kernels) == set(KERNEL_NAMES)
        for program in kernels.values():
            program.validate()

    def test_unknown_kernel(self):
        with pytest.raises(KeyError):
            kernel("raytracer")


class TestSemantics:
    def test_daxpy_computes_axpy(self):
        state, stats = execute(kernel("daxpy"))
        assert stats.completed
        # x[] and y[] start as zeros: y stays zero but every slot written.
        assert all(state.memory[65536 + 8 * i] == 0.0 for i in range(4))

    def test_matmul_fills_c_tile(self):
        state, stats = execute(kernel("matmul"))
        assert stats.completed
        # 8x8 output tile fully written (zeros in = zeros out).
        writes = [addr for addr in state.memory if 49152 <= addr < 49152 + 512]
        assert len(writes) == 64

    def test_stencil_writes_interior_points(self):
        state, stats = execute(kernel("stencil"))
        assert stats.completed
        writes = [addr for addr in state.memory if 40960 <= addr < 40960 + 1024]
        assert len(writes) == 125  # i in [1, 126)

    def test_histogram_counts_sum_to_samples(self):
        state, stats = execute(kernel("histogram"))
        assert stats.completed
        counts = sum(
            value for addr, value in state.memory.items()
            if 32768 <= addr < 32768 + 512
        )
        assert counts == 200
        assert state.memory[32768 + 512] == 200

    def test_pointer_chase_visits_cells(self):
        state, stats = execute(kernel("pointer_chase"))
        assert stats.completed
        assert state.memory[32768 + 8] > 0  # accumulated offsets

    def test_checksum_produces_nonzero_digest(self):
        state, stats = execute(kernel("checksum"))
        assert stats.completed
        assert state.memory[32768] != 0

    def test_gcc_life_stores_flags(self):
        state, stats = execute(kernel("gcc_life"))
        assert stats.completed


class TestTranslation:
    @pytest.mark.parametrize("name", ("matmul", "stencil", "histogram"))
    def test_new_kernels_braid_equivalently(self, name):
        program = kernel(name)
        compilation = braidify(program)
        assert observably_equivalent(program, compilation.translated)

    def test_stencil_loads_share_one_braid(self):
        # The three neighbouring loads feed one weighted sum: a classic
        # multi-load braid like the paper's Figure 2.
        compilation = braidify(kernel("stencil"))
        sweep = compilation.translated.block_by_label("SWEEP")
        translation = next(
            t for t in compilation.report.blocks
            if t.original.label == "SWEEP"
        )
        biggest = max(translation.braids, key=lambda braid: braid.size)
        assert biggest.size >= 10

    def test_histogram_read_modify_write_order_survives(self):
        # ldq/addqi/stq to the same bin must stay ordered.
        compilation = braidify(kernel("histogram"))
        loop = compilation.translated.block_by_label("LOOP")
        names = [inst.opcode.name for inst in loop.instructions]
        assert names.index("ldq") < names.index("stq")
