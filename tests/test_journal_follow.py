"""Incremental journal tailing (repro.service.journal.JournalFollower).

The follower powers ``status --follow`` and ``events`` against a *live*
journal, so it must never block on, choke on, or mis-deliver the states
a concurrent fsync-append writer (or its death) can leave behind: torn
tails, damaged middles, and wholesale file replacement.  The truncation
test mirrors the store's torn-tail property test — every byte offset of
the final record is a valid file state.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.service.journal import JournalError, JournalFollower, JsonlJournal


def make_journal(path, n=3, kind="service-journal", version=1):
    journal = JsonlJournal(path, kind=kind, version=version)
    for index in range(n):
        journal.append({"event": "submit", "seq": index})
    return journal


class TestIncremental:
    def test_first_poll_delivers_everything(self, tmp_path):
        journal = make_journal(tmp_path / "j.jsonl", n=3)
        follower = journal.follow()
        records = follower.poll()
        assert [r["seq"] for r in records] == [0, 1, 2]
        journal.close()

    def test_later_polls_deliver_only_new_records(self, tmp_path):
        journal = make_journal(tmp_path / "j.jsonl", n=2)
        follower = journal.follow()
        follower.poll()
        assert follower.poll() == []
        journal.append({"event": "start", "seq": 2})
        records = follower.poll()
        assert len(records) == 1 and records[0]["seq"] == 2
        journal.close()

    def test_missing_file_is_quietly_empty(self, tmp_path):
        follower = JournalFollower(tmp_path / "absent.jsonl")
        assert follower.poll() == []

    def test_offset_counts_bytes_not_records(self, tmp_path):
        journal = make_journal(tmp_path / "j.jsonl", n=2)
        follower = journal.follow()
        follower.poll()
        assert follower.offset == os.path.getsize(journal.path)
        journal.close()


class TestTornTail:
    def test_torn_tail_stays_unconsumed_until_complete(self, tmp_path):
        journal = make_journal(tmp_path / "j.jsonl", n=1)
        journal.close()
        follower = JournalFollower(tmp_path / "j.jsonl")
        assert len(follower.poll()) == 1
        # A writer mid-append: half a record, no newline yet.
        line = json.dumps({"event": "done", "seq": 9}) + "\n"
        with open(tmp_path / "j.jsonl", "ab") as handle:
            handle.write(line[: len(line) // 2].encode())
        assert follower.poll() == []
        assert follower.skipped == 0
        with open(tmp_path / "j.jsonl", "ab") as handle:
            handle.write(line[len(line) // 2:].encode())
        records = follower.poll()
        assert len(records) == 1 and records[0]["seq"] == 9

    def test_truncate_at_every_byte_never_raises(self, tmp_path):
        """Every prefix of a journal is a pollable file state."""
        source = tmp_path / "full.jsonl"
        journal = make_journal(source, n=3)
        journal.close()
        blob = source.read_bytes()
        header_len = blob.index(b"\n") + 1
        target = tmp_path / "j.jsonl"
        for cut in range(len(blob) + 1):
            target.write_bytes(blob[:cut])
            follower = JournalFollower(target)
            records = follower.poll()
            # Only whole records, in order, never an exception.
            assert [r["seq"] for r in records] == list(range(len(records)))
            if cut < header_len:
                assert records == []
            assert follower.skipped == 0

    def test_header_mid_write_is_not_yet_followable(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_bytes(b'{"kind": "service-jour')
        follower = JournalFollower(path, kind="service-journal", version=1)
        assert follower.poll() == []
        assert follower.rotations == 0


class TestDamage:
    def test_damaged_middle_is_skipped_and_counted(self, tmp_path):
        journal = make_journal(tmp_path / "j.jsonl", n=1)
        journal.close()
        with open(tmp_path / "j.jsonl", "ab") as handle:
            handle.write(b"\x00\xff garbage \x00\n")
        journal = JsonlJournal(
            tmp_path / "j.jsonl", kind="service-journal", version=1
        )
        journal.append({"event": "done", "seq": 1})
        journal.close()
        follower = JournalFollower(tmp_path / "j.jsonl")
        records = follower.poll()
        assert [r["seq"] for r in records] == [0, 1]
        assert follower.skipped == 1

    def test_non_dict_line_is_counted_not_delivered(self, tmp_path):
        journal = make_journal(tmp_path / "j.jsonl", n=1)
        journal.close()
        with open(tmp_path / "j.jsonl", "ab") as handle:
            handle.write(b'[1, 2, 3]\n')
        follower = JournalFollower(tmp_path / "j.jsonl")
        assert len(follower.poll()) == 1
        assert follower.skipped == 1


class TestRotation:
    def test_replaced_file_resets_to_new_beginning(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = make_journal(path, n=2)
        journal.close()
        follower = JournalFollower(path)
        assert len(follower.poll()) == 2
        # Operator deletes the store and starts over: same path, same
        # header bytes, brand-new file.
        os.unlink(path)
        journal = JsonlJournal(path, kind="service-journal", version=1)
        journal.append({"event": "submit", "seq": 100})
        records = follower.poll()
        assert [r["seq"] for r in records] == [100]
        assert follower.rotations == 1
        journal.close()

    def test_truncated_in_place_resets(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = make_journal(path, n=3)
        journal.close()
        follower = JournalFollower(path)
        assert len(follower.poll()) == 3
        blob = path.read_bytes()
        header_len = blob.index(b"\n") + 1
        first_record_end = blob.index(b"\n", header_len) + 1
        path.write_bytes(blob[:first_record_end])
        records = follower.poll()
        assert [r["seq"] for r in records] == [0]
        assert follower.rotations == 1

    def test_kind_mismatch_raises_loudly(self, tmp_path):
        journal = make_journal(tmp_path / "j.jsonl", kind="campaign")
        journal.close()
        follower = JournalFollower(
            tmp_path / "j.jsonl", kind="service-journal", version=1
        )
        with pytest.raises(JournalError, match="refusing to follow"):
            follower.poll()

    def test_version_mismatch_raises_loudly(self, tmp_path):
        journal = make_journal(tmp_path / "j.jsonl", version=99)
        journal.close()
        follower = JournalFollower(
            tmp_path / "j.jsonl", kind="service-journal", version=1
        )
        with pytest.raises(JournalError, match="format version"):
            follower.poll()

    def test_rotation_to_wrong_kind_raises(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = make_journal(path, n=1)
        journal.close()
        follower = JournalFollower(path, kind="service-journal", version=1)
        follower.poll()
        os.unlink(path)
        other = JsonlJournal(path, kind="campaign", version=1)
        other.close()
        with pytest.raises(JournalError):
            follower.poll()
