"""Additional ExperimentContext coverage: variants, limits, suites."""

import pytest

from repro.harness import ExperimentContext
from repro.sim import braid_config, ooo_config


class TestVariantIsolation:
    def test_internal_limit_workloads_are_distinct(self):
        ctx = ExperimentContext(benchmarks=("gcc",), max_instructions=5000)
        default = ctx.workload("gcc", braided=True)
        tight = ctx.workload("gcc", braided=True, internal_limit=2)
        assert default is not tight
        # Same dynamic behaviour, different binaries.
        assert len(default) == len(tight)

    def test_braided_workload_uses_translated_program(self):
        ctx = ExperimentContext(benchmarks=("gcc",), max_instructions=5000)
        braided = ctx.workload("gcc", braided=True)
        assert any(
            d.inst.annot.start for d in braided.trace
        )
        plain = ctx.workload("gcc")
        assert not any(d.inst.annot.braid_id is not None for d in plain.trace)

    def test_max_instructions_cap_applies(self):
        ctx = ExperimentContext(benchmarks=("gcc",), max_instructions=1000)
        assert len(ctx.workload("gcc")) == 1000

    def test_scale_threads_through_to_programs(self):
        short_ctx = ExperimentContext(benchmarks=("gcc",), scale=1.0,
                                      max_instructions=100_000)
        long_ctx = ExperimentContext(benchmarks=("gcc",), scale=2.0,
                                     max_instructions=100_000)
        assert len(long_ctx.workload("gcc")) > len(short_ctx.workload("gcc"))


class TestRunVariants:
    def test_braided_and_plain_runs_differ(self):
        ctx = ExperimentContext(benchmarks=("gcc",), max_instructions=5000)
        plain = ctx.run("gcc", ooo_config(8))
        braided = ctx.run("gcc", braid_config(8), braided=True)
        assert plain.machine != braided.machine
        assert plain.instructions == braided.instructions

    def test_perfect_run_is_at_least_as_fast(self):
        ctx = ExperimentContext(benchmarks=("mcf",), max_instructions=5000)
        real = ctx.run("mcf", ooo_config(8))
        ideal = ctx.run("mcf", ooo_config(8), perfect=True)
        assert ideal.cycles <= real.cycles
