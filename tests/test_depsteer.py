"""Unit tests for the FIFO dependence-steering core's steering heuristic."""

from dataclasses import replace

import pytest

from repro.isa import assemble
from repro.sim import depsteer_config, ooo_config, prepare_workload, simulate
from repro.sim.run import build_core


def workload_of(source: str):
    return prepare_workload(assemble(source), perfect=True)


class TestSteering:
    def test_chain_stays_in_one_fifo(self):
        source = "addq r31, #1, r1\n" + "addq r1, r1, r1\n" * 6
        core = build_core(workload_of(source), depsteer_config(8))
        core.dispatch_stage(0)  # nothing fetched yet
        core.run()
        clusters = set()
        # Replay: every chained instruction should have landed in the same
        # FIFO as its producer at dispatch (the producer was at the tail).
        # We can't observe history after the run, so check the weaker global
        # fact: the chain used very few clusters.
        # (Re-run with instrumentation.)
        core = build_core(workload_of(source), depsteer_config(8))
        trace_clusters = []
        original_accept = core.accept

        def spy(winst, cycle):
            ok = original_accept(winst, cycle)
            if ok:
                trace_clusters.append(winst.cluster)
            return ok

        core.accept = spy
        core.run()
        chain_clusters = set(trace_clusters[1:])  # skip the seed constant
        assert len(chain_clusters) <= 2

    def test_independent_work_spreads_across_fifos(self):
        source = "\n".join(
            f"addq r31, #{i}, r{1 + (i % 24)}" for i in range(24)
        )
        core = build_core(workload_of(source), depsteer_config(8))
        clusters = []
        original_accept = core.accept

        def spy(winst, cycle):
            ok = original_accept(winst, cycle)
            if ok:
                clusters.append(winst.cluster)
            return ok

        core.accept = spy
        core.run()
        assert len(set(clusters)) >= 4

    def test_dispatch_stalls_when_no_fifo_fits(self):
        # More live chains than FIFOs: rule 2 runs out of empty FIFOs.
        config = replace(depsteer_config(8), clusters=2, name="dep-2fifo")
        source = "\n".join(
            "addq r31, #1, r{0}\nmulq r{0}, r{0}, r{0}".format(1 + i)
            for i in range(8)
        )
        result = simulate(workload_of(source), config)
        assert result.stalls.structure_full > 0

    def test_head_blocking_hurts_vs_ooo(self):
        # A stalled chain head blocks younger independent instructions that
        # were steered behind it.
        source = (
            "addq r31, #3, r1\n"
            "mulq r1, r1, r1\n"
            "mulq r1, r1, r1\n"
            "addq r1, r31, r2\n"   # tail of the chain fifo
            "addq r2, r31, r3\n"
            + "addq r3, r3, r3\n" * 20
        )
        dep = simulate(workload_of(source), depsteer_config(8))
        ooo = simulate(workload_of(source), ooo_config(8))
        assert dep.cycles >= ooo.cycles


class TestComparison:
    def test_depsteer_between_inorder_and_ooo_on_benchmarks(self):
        from repro.sim import inorder_config
        from repro.workloads import build_program

        program = build_program("twolf")
        workload = prepare_workload(program)
        dep = simulate(workload, depsteer_config(8))
        inorder = simulate(workload, inorder_config(8))
        ooo = simulate(workload, ooo_config(8))
        assert inorder.ipc < dep.ipc <= ooo.ipc * 1.05
