"""Property-based tests for the braid compilation pipeline.

Hypothesis drives the synthetic workload generator with random profile
parameters and checks the translator's global invariants on every generated
program:

* observable equivalence (memory state, control path, dynamic length);
* partition soundness (every instruction in exactly one braid, braids
  contiguous, braids never cross block boundaries);
* the internal working-set bound (never more than the internal register
  limit simultaneously live, by construction of the allocator).
"""

from dataclasses import replace

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import braidify
from repro.isa.registers import NUM_INTERNAL_REGS, Space
from repro.sim import observably_equivalent
from repro.workloads.generator import generate
from repro.workloads.profiles import BenchmarkProfile


@st.composite
def profiles(draw):
    return BenchmarkProfile(
        name="hypo",
        suite=draw(st.sampled_from(["int", "fp"])),
        ops_per_block=draw(st.floats(0.5, 4.0)),
        op_size_mean=draw(st.floats(1.0, 10.0)),
        fanout2_prob=draw(st.floats(0.0, 0.5)),
        join_prob=draw(st.floats(0.0, 0.4)),
        load_prob=draw(st.floats(0.0, 0.8)),
        store_prob=draw(st.floats(0.0, 0.8)),
        mul_prob=draw(st.floats(0.0, 0.2)),
        div_prob=draw(st.floats(0.0, 0.1)),
        regions=draw(st.integers(1, 3)),
        body_blocks=draw(st.integers(1, 4)),
        diamond_prob=draw(st.floats(0.0, 0.8)),
        branch_bias=draw(st.floats(0.0, 1.0)),
        branch_noise=draw(st.floats(0.0, 1.0)),
        accum_prob=draw(st.floats(0.0, 0.5)),
        inner_trips=draw(st.integers(1, 6)),
        outer_trips=draw(st.integers(1, 2)),
        array_words=draw(st.sampled_from([64, 256, 1024])),
        fp_fraction=draw(st.floats(0.0, 1.0)),
        single_filler=draw(st.floats(0.0, 1.5)),
        seed=draw(st.integers(0, 10_000)),
    )


_SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@_SETTINGS
@given(profiles())
def test_translation_preserves_observable_behaviour(profile):
    program = generate(profile)
    compilation = braidify(program)
    assert observably_equivalent(
        program, compilation.translated, max_instructions=30_000
    )


@_SETTINGS
@given(profiles())
def test_partition_covers_every_instruction_exactly_once(profile):
    program = generate(profile)
    compilation = braidify(program)
    for translation in compilation.report.blocks:
        positions = sorted(
            p for braid in translation.braids for p in braid.positions
        )
        assert positions == list(range(len(translation.original.instructions)))


@_SETTINGS
@given(profiles())
def test_braid_bits_are_consistent(profile):
    program = generate(profile)
    compilation = braidify(program)
    for block in compilation.translated.blocks:
        current = None
        for inst in block.instructions:
            if inst.annot.start:
                current = inst.annot.braid_id
            assert inst.annot.braid_id == current
            # A value is never steered to both files under this allocator.
            assert not (inst.annot.dest_internal and inst.annot.dest_external)
            if inst.annot.dest_internal:
                assert inst.dest.index < NUM_INTERNAL_REGS
            for position in range(len(inst.srcs)):
                if inst.annot.src_space(position) is Space.INTERNAL:
                    assert inst.srcs[position].index < NUM_INTERNAL_REGS
        if block.instructions:
            assert block.instructions[0].annot.start


@_SETTINGS
@given(profiles(), st.sampled_from([2, 4, 8]))
def test_internal_limit_respected(profile, limit):
    program = generate(profile)
    compilation = braidify(program, internal_limit=limit)
    # The allocator raises RegAllocError if the pressure-splitting pass ever
    # under-delivers, so reaching here proves the bound; spot-check slots.
    for block in compilation.translated.blocks:
        for inst in block.instructions:
            if inst.annot.dest_internal:
                assert inst.dest.index < limit
    assert observably_equivalent(
        program, compilation.translated, max_instructions=30_000
    )


@_SETTINGS
@given(profiles())
def test_generated_programs_execute_and_terminate(profile):
    program = generate(profile)
    program.validate()
    from repro.sim import execute

    _, stats = execute(program, max_instructions=100_000)
    assert stats.completed
    assert stats.dynamic_instructions > 0
